//! Brent-style virtualization: `p` physical cells simulate `N` virtual cells.
//!
//! The paper (Section 1): *"in many PRAM algorithms, the number P of
//! processing elements is expressed in terms of the problem size n, i.e.
//! P = P(n), while a particular GCA architecture has a fixed number p of
//! cells. Here, Brent's theorem can be applied, stating that each cell shall
//! sequentially simulate P(n)/p processing elements round robin."*
//!
//! [`BrentSchedule`] owns the round-robin assignment arithmetic, and
//! [`step_virtualized`] executes one synchronous GCA generation as
//! `⌈N/p⌉` micro-rounds of at most `p` cell evaluations. Because the field
//! is double-buffered, the virtualized execution is **observably identical**
//! to the fully parallel one — only the cost accounting changes (the
//! returned report counts micro-rounds, which is the simulated wall time).

use crate::{Access, CellField, GcaError, GcaRule, Reads, StepCtx};

/// Round-robin assignment of `N` virtual cells onto `p` physical cells.
///
/// Virtual cell `v` is simulated by physical cell `v mod p` during
/// micro-round `v / p` — the classic interleaved schedule, which keeps every
/// physical cell busy until the final partial round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BrentSchedule {
    virtual_cells: usize,
    physical_cells: usize,
}

impl BrentSchedule {
    /// Creates a schedule. `physical_cells` must be nonzero.
    pub fn new(virtual_cells: usize, physical_cells: usize) -> Self {
        assert!(physical_cells > 0, "need at least one physical cell");
        BrentSchedule {
            virtual_cells,
            physical_cells,
        }
    }

    /// Number of virtual cells `N`.
    pub fn virtual_cells(&self) -> usize {
        self.virtual_cells
    }

    /// Number of physical cells `p`.
    pub fn physical_cells(&self) -> usize {
        self.physical_cells
    }

    /// `⌈N/p⌉` — micro-rounds per generation, i.e. the slowdown factor of
    /// Brent's theorem.
    pub fn rounds(&self) -> usize {
        self.virtual_cells.div_ceil(self.physical_cells)
    }

    /// Which `(physical cell, micro-round)` simulates virtual cell `v`.
    pub fn assignment(&self, v: usize) -> (usize, usize) {
        debug_assert!(v < self.virtual_cells);
        (v % self.physical_cells, v / self.physical_cells)
    }

    /// The virtual cells evaluated in a given micro-round, in order.
    pub fn round_members(&self, round: usize) -> std::ops::Range<usize> {
        let start = round * self.physical_cells;
        let end = ((round + 1) * self.physical_cells).min(self.virtual_cells);
        start..end.max(start)
    }

    /// The virtual cells simulated by one physical cell, in order.
    pub fn cells_of(&self, physical: usize) -> impl Iterator<Item = usize> + '_ {
        debug_assert!(physical < self.physical_cells);
        (physical..self.virtual_cells).step_by(self.physical_cells)
    }
}

/// Cost report of a virtualized generation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VirtualizedReport {
    /// The control context of the generation.
    pub ctx: StepCtx,
    /// Micro-rounds executed (`⌈N/p⌉`).
    pub rounds: usize,
    /// Virtual cells that performed a calculation.
    pub active_cells: usize,
    /// Global reads issued.
    pub total_reads: u64,
    /// Per-micro-round maximum congestion: within a round only `p` reads can
    /// be in flight, so congestion is bounded by `p` regardless of the
    /// algorithm's full-parallel congestion.
    pub round_max_congestion: Vec<u32>,
}

impl VirtualizedReport {
    /// Largest per-round congestion over the generation.
    pub fn max_congestion(&self) -> u32 {
        self.round_max_congestion.iter().copied().max().unwrap_or(0)
    }
}

/// Executes one synchronous generation under Brent virtualization.
///
/// Semantically equivalent to [`crate::Engine::step`]; differs only in cost
/// accounting (micro-rounds, per-round congestion).
pub fn step_virtualized<R: GcaRule>(
    field: &mut CellField<R::State>,
    rule: &R,
    schedule: &BrentSchedule,
    generation: u64,
    phase: u32,
    subgeneration: u32,
) -> Result<VirtualizedReport, GcaError> {
    assert_eq!(
        schedule.virtual_cells(),
        field.len(),
        "schedule covers {} virtual cells but the field has {}",
        schedule.virtual_cells(),
        field.len()
    );
    let ctx = StepCtx {
        generation,
        phase,
        subgeneration,
    };
    let shape = *field.shape();
    let (prev, next) = field.buffers();

    let mut active = 0usize;
    let mut total_reads = 0u64;
    let mut round_max_congestion = Vec::with_capacity(schedule.rounds());

    for round in 0..schedule.rounds() {
        let members = schedule.round_members(round);
        let mut round_reads = vec![0u32; 0];
        // Lazily sized: only allocate the congestion counter if some cell
        // in this round actually reads.
        let mut round_max = 0u32;
        for v in members {
            let own = &prev[v];
            let acc = rule.access(&ctx, &shape, v, own);
            let reads = resolve(acc, prev, v, &ctx)?;
            next[v] = rule.evolve(&ctx, &shape, v, own, reads);
            if rule.is_active(&ctx, &shape, v, own) {
                active += 1;
            }
            total_reads += acc.arity() as u64;
            for t in acc.targets() {
                if round_reads.is_empty() {
                    round_reads = vec![0u32; prev.len()];
                }
                round_reads[t] += 1;
                round_max = round_max.max(round_reads[t]);
            }
        }
        round_max_congestion.push(round_max);
    }

    field.commit();
    Ok(VirtualizedReport {
        ctx,
        rounds: schedule.rounds(),
        active_cells: active,
        total_reads,
        round_max_congestion,
    })
}

#[inline]
fn resolve<'a, S>(
    acc: Access,
    prev: &'a [S],
    cell: usize,
    ctx: &StepCtx,
) -> Result<Reads<'a, S>, GcaError> {
    let fetch = |t: usize| -> Result<&'a S, GcaError> {
        prev.get(t).ok_or(GcaError::PointerOutOfRange {
            cell,
            target: t,
            len: prev.len(),
            generation: ctx.generation,
        })
    };
    Ok(match acc {
        Access::None => Reads::none(),
        Access::One(t) => Reads::one(fetch(t)?),
        Access::Two(t, u) => Reads::two(fetch(t)?, fetch(u)?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Engine, FieldShape};

    struct Rotate;

    impl GcaRule for Rotate {
        type State = u32;

        fn access(&self, _c: &StepCtx, shape: &FieldShape, i: usize, _o: &u32) -> Access {
            Access::One((i + 1) % shape.len())
        }

        fn evolve(
            &self,
            _c: &StepCtx,
            _s: &FieldShape,
            _i: usize,
            _o: &u32,
            r: Reads<'_, u32>,
        ) -> u32 {
            *r.expect_first("rotate")
        }
    }

    #[test]
    fn schedule_arithmetic() {
        let s = BrentSchedule::new(10, 4);
        assert_eq!(s.rounds(), 3);
        assert_eq!(s.assignment(0), (0, 0));
        assert_eq!(s.assignment(5), (1, 1));
        assert_eq!(s.assignment(9), (1, 2));
        assert_eq!(s.round_members(0), 0..4);
        assert_eq!(s.round_members(2), 8..10);
        assert_eq!(s.cells_of(1).collect::<Vec<_>>(), vec![1, 5, 9]);
    }

    #[test]
    fn schedule_exact_division() {
        let s = BrentSchedule::new(8, 4);
        assert_eq!(s.rounds(), 2);
        assert_eq!(s.round_members(1), 4..8);
    }

    #[test]
    fn schedule_more_physical_than_virtual() {
        let s = BrentSchedule::new(3, 8);
        assert_eq!(s.rounds(), 1);
        assert_eq!(s.round_members(0), 0..3);
    }

    #[test]
    #[should_panic(expected = "at least one physical cell")]
    fn schedule_rejects_zero_physical() {
        let _ = BrentSchedule::new(4, 0);
    }

    #[test]
    fn virtualized_step_matches_engine() {
        let shape = FieldShape::new(1, 13).unwrap();
        let init: Vec<u32> = (0..13).map(|i| i * 7).collect();

        let mut direct = CellField::from_states(shape, init.clone()).unwrap();
        let mut engine = Engine::sequential();
        engine.step(&mut direct, &Rotate, 0, 0).unwrap();

        for p in [1usize, 2, 3, 13, 20] {
            let mut virt = CellField::from_states(shape, init.clone()).unwrap();
            let sched = BrentSchedule::new(13, p);
            let rep = step_virtualized(&mut virt, &Rotate, &sched, 0, 0, 0).unwrap();
            assert_eq!(virt.states(), direct.states(), "p = {p}");
            assert_eq!(rep.rounds, 13usize.div_ceil(p));
            assert_eq!(rep.total_reads, 13);
            assert_eq!(rep.active_cells, 13);
        }
    }

    #[test]
    fn round_congestion_bounded_by_p() {
        // All cells read cell 0 -> full-parallel congestion = N, but with p
        // physical cells each round sees at most p concurrent reads.
        struct ReadZero;
        impl GcaRule for ReadZero {
            type State = u32;
            fn access(&self, _c: &StepCtx, _s: &FieldShape, _i: usize, _o: &u32) -> Access {
                Access::One(0)
            }
            fn evolve(
                &self,
                _c: &StepCtx,
                _s: &FieldShape,
                _i: usize,
                _o: &u32,
                r: Reads<'_, u32>,
            ) -> u32 {
                *r.expect_first("read-zero")
            }
        }
        let shape = FieldShape::new(1, 12).unwrap();
        let mut f = CellField::new(shape, 1u32);
        let sched = BrentSchedule::new(12, 3);
        let rep = step_virtualized(&mut f, &ReadZero, &sched, 0, 0, 0).unwrap();
        assert_eq!(rep.rounds, 4);
        assert_eq!(rep.max_congestion(), 3);
        assert!(rep.round_max_congestion.iter().all(|&c| c <= 3));
    }

    #[test]
    #[should_panic(expected = "schedule covers")]
    fn mismatched_schedule_panics() {
        let shape = FieldShape::new(1, 4).unwrap();
        let mut f = CellField::new(shape, 0u32);
        let sched = BrentSchedule::new(5, 2);
        let _ = step_virtualized(&mut f, &Rotate, &sched, 0, 0, 0);
    }
}
