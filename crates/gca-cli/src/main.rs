//! `gca-cc` — run the workspace's connected-components machines on an
//! edge-list file or a generated workload.
//!
//! ```text
//! gca-cc gnp:64:300 --machine gca --metrics
//! gca-cc mygraph.txt --machine pram --labels --json
//! ```

mod args;
mod report;

use args::{parse, Args, InputSpec, USAGE};
use gca_graphs::{generators, io, AdjacencyMatrix};
use std::io::Read;
use std::process::ExitCode;

fn load_graph(input: &InputSpec) -> Result<AdjacencyMatrix, String> {
    match input {
        InputSpec::File(path) => {
            let text = if path == "-" {
                let mut buf = String::new();
                std::io::stdin()
                    .read_to_string(&mut buf)
                    .map_err(|e| format!("reading stdin: {e}"))?;
                buf
            } else {
                std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?
            };
            io::from_edge_list(&text).map_err(|e| format!("parsing {path}: {e}"))
        }
        InputSpec::Gnp { n, p_milli, seed } => {
            Ok(generators::gnp(*n, f64::from(*p_milli) / 1000.0, *seed))
        }
        InputSpec::Forest { n, k, seed } => {
            if *k == 0 || *k > *n {
                return Err(format!("forest needs 1 <= k <= n, got k={k}, n={n}"));
            }
            Ok(generators::random_forest(*n, *k, *seed))
        }
        InputSpec::Family { family, n } => Ok(match family.as_str() {
            "path" => generators::path(*n),
            "ring" => generators::ring(*n),
            "star" => generators::star(*n),
            "complete" => generators::complete(*n),
            "empty" => generators::empty(*n),
            other => return Err(format!("unknown family '{other}'")),
        }),
    }
}

/// Recovery gave up: the policy's budget ran out before the run
/// completed (every attempt was *detected* — the state never lied).
const EXIT_RECOVERY_EXHAUSTED: u8 = 3;
/// The worst outcome: an injected fault escaped every detector and the
/// final labels diverge from the union-find reference.
const EXIT_UNDETECTED_DIVERGENCE: u8 = 4;

fn run(args: &Args) -> Result<(String, ExitCode), String> {
    let graph = load_graph(&args.input)?;
    let outcome = report::execute(args.machine, &graph, &args.engine, &args.recovery)
        .map_err(|e| e.to_string())?;
    let mut out = if args.json {
        report::render_json(&outcome, &graph, args)
    } else {
        report::render_text(&outcome, &graph, args)
    };
    let exhausted = outcome.recovery.as_ref().is_some_and(|r| !r.completed());
    let diverged = outcome.diverged == Some(true);
    if args.verify && !exhausted && !diverged {
        gca_graphs::verify::verify_components(&graph.to_adjacency_list(), &outcome.labels)
            .map_err(|e| format!("verification FAILED: {e}"))?;
        if !args.json {
            out.push_str("verification: ok (no crossing edges, canonical, connected classes)\n");
        }
    }
    let code = if exhausted {
        ExitCode::from(EXIT_RECOVERY_EXHAUSTED)
    } else if diverged {
        ExitCode::from(EXIT_UNDETECTED_DIVERGENCE)
    } else {
        ExitCode::SUCCESS
    };
    Ok((out, code))
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse(&argv) {
        Ok(a) => a,
        Err(e) if e.0 == "help" => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok((out, code)) => {
            print!("{out}");
            code
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
