//! `gca-cc` — run the workspace's connected-components machines on an
//! edge-list file or a generated workload.
//!
//! ```text
//! gca-cc gnp:64:300 --machine gca --metrics
//! gca-cc mygraph.txt --machine pram --labels --json
//! ```

mod args;
mod report;

use args::{parse, Args, InputSpec, USAGE};
use gca_graphs::{generators, io, AdjacencyMatrix};
use std::io::Read;
use std::process::ExitCode;

fn load_graph(input: &InputSpec) -> Result<AdjacencyMatrix, String> {
    match input {
        InputSpec::File(path) => {
            let text = if path == "-" {
                let mut buf = String::new();
                std::io::stdin()
                    .read_to_string(&mut buf)
                    .map_err(|e| format!("reading stdin: {e}"))?;
                buf
            } else {
                std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?
            };
            io::from_edge_list(&text).map_err(|e| format!("parsing {path}: {e}"))
        }
        InputSpec::Gnp { n, p_milli, seed } => {
            Ok(generators::gnp(*n, f64::from(*p_milli) / 1000.0, *seed))
        }
        InputSpec::Forest { n, k, seed } => {
            if *k == 0 || *k > *n {
                return Err(format!("forest needs 1 <= k <= n, got k={k}, n={n}"));
            }
            Ok(generators::random_forest(*n, *k, *seed))
        }
        InputSpec::Family { family, n } => Ok(match family.as_str() {
            "path" => generators::path(*n),
            "ring" => generators::ring(*n),
            "star" => generators::star(*n),
            "complete" => generators::complete(*n),
            "empty" => generators::empty(*n),
            other => return Err(format!("unknown family '{other}'")),
        }),
    }
}

fn run(args: &Args) -> Result<String, String> {
    let graph = load_graph(&args.input)?;
    let outcome =
        report::execute(args.machine, &graph, &args.engine).map_err(|e| e.to_string())?;
    let mut out = if args.json {
        report::render_json(&outcome, &graph, args)
    } else {
        report::render_text(&outcome, &graph, args)
    };
    if args.verify {
        gca_graphs::verify::verify_components(&graph.to_adjacency_list(), &outcome.labels)
            .map_err(|e| format!("verification FAILED: {e}"))?;
        if !args.json {
            out.push_str("verification: ok (no crossing edges, canonical, connected classes)\n");
        }
    }
    Ok(out)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse(&argv) {
        Ok(a) => a,
        Err(e) if e.0 == "help" => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
