//! Machine dispatch and report rendering for `gca-cc`.

use crate::args::{Args, EngineOpts, MachineKind};
use gca_engine::metrics::MetricsLog;
use gca_engine::{Engine, Instrumentation};
use gca_graphs::connectivity::union_find_components_dense;
use gca_graphs::{AdjacencyMatrix, Labeling};
use gca_hirschberg::variants::{low_congestion, n_cells, two_handed};
use gca_hirschberg::HirschbergGca;
use gca_pram::hirschberg_ref;
use std::fmt::Write as _;

/// What a machine run produced.
pub struct Outcome {
    /// Machine used.
    pub machine: MachineKind,
    /// Component labeling.
    pub labels: Labeling,
    /// Synchronous steps (GCA generations or PRAM steps), if applicable.
    pub steps: Option<u64>,
    /// PRAM work, if applicable.
    pub work: Option<u64>,
    /// Worst observed congestion, if instrumented.
    pub max_congestion: Option<u32>,
    /// Per-generation metrics, when the machine records them.
    pub metrics: Option<MetricsLog>,
    /// Engine configuration, for machines that honor the engine knobs.
    pub engine: Option<String>,
    /// Wall-clock milliseconds of the run.
    pub wall_ms: f64,
}

/// Runs the selected machine.
pub fn execute(
    machine: MachineKind,
    graph: &AdjacencyMatrix,
    opts: &EngineOpts,
) -> Result<Outcome, Box<dyn std::error::Error>> {
    let start = std::time::Instant::now();
    let mut outcome = match machine {
        MachineKind::Gca => {
            let mut engine = Engine::new()
                .with_backend(opts.backend)
                .with_domain_policy(opts.domain);
            if opts.validate {
                engine = engine.with_instrumentation(Instrumentation::Validate);
            }
            let mut gca = HirschbergGca::new()
                .with_engine(engine)
                .convergence(opts.convergence)
                .exec(opts.exec);
            if matches!(opts.exec, gca_hirschberg::ExecPath::FusedSwar(_)) {
                // Install the symbolically derived schedule (the oracle the
                // SWAR driver consults for sub-generation skipping; equal to
                // the structural bound for the shipped rule, and
                // cross-checked dynamically under --validate).
                gca = gca.with_swar_schedule(gca_analysis::swar_schedule(graph.n()));
            }
            let run = gca.run(graph)?;
            Outcome {
                machine,
                labels: run.labels,
                steps: Some(run.generations),
                work: None,
                max_congestion: Some(run.metrics.max_congestion()),
                metrics: Some(run.metrics),
                engine: Some(opts.describe()),
                wall_ms: 0.0,
            }
        }
        MachineKind::NCells => {
            let run = n_cells::run(graph)?;
            Outcome {
                machine,
                labels: run.labels,
                steps: Some(run.generations),
                work: None,
                max_congestion: Some(run.metrics.max_congestion()),
                metrics: Some(run.metrics),
                engine: None,
                wall_ms: 0.0,
            }
        }
        MachineKind::LowCongestion => {
            let run = low_congestion::run(graph)?;
            Outcome {
                machine,
                labels: run.labels,
                steps: Some(run.generations),
                work: None,
                max_congestion: Some(run.metrics.max_congestion()),
                metrics: Some(run.metrics),
                engine: None,
                wall_ms: 0.0,
            }
        }
        MachineKind::TwoHanded => {
            let run = two_handed::run(graph)?;
            Outcome {
                machine,
                labels: run.labels,
                steps: Some(run.generations),
                work: None,
                max_congestion: Some(run.metrics.max_congestion()),
                metrics: Some(run.metrics),
                engine: None,
                wall_ms: 0.0,
            }
        }
        MachineKind::Closure => {
            let run = gca_algorithms::transitive_closure::run(graph)?;
            Outcome {
                machine,
                labels: run.labels,
                steps: Some(run.generations),
                work: None,
                max_congestion: Some(run.max_congestion),
                metrics: None,
                engine: None,
                wall_ms: 0.0,
            }
        }
        MachineKind::Emulated => {
            let n = graph.n();
            let labels = gca_emu::hirschberg_program::connected_components(graph)?;
            Outcome {
                machine,
                labels,
                steps: Some(gca_emu::hirschberg_program::emulated_generations(n)),
                work: None,
                max_congestion: None,
                metrics: None,
                engine: None,
                wall_ms: 0.0,
            }
        }
        MachineKind::Pram => {
            let run = hirschberg_ref::connected_components(graph)?;
            Outcome {
                machine,
                labels: run.labels,
                steps: Some(run.time),
                work: Some(run.work),
                max_congestion: Some(run.max_congestion),
                metrics: None,
                engine: None,
                wall_ms: 0.0,
            }
        }
        MachineKind::Sequential => Outcome {
            machine,
            labels: union_find_components_dense(graph),
            steps: None,
            work: None,
            max_congestion: None,
            metrics: None,
            engine: None,
            wall_ms: 0.0,
        },
    };
    outcome.wall_ms = start.elapsed().as_secs_f64() * 1e3;
    Ok(outcome)
}

/// Renders the human-readable report.
pub fn render_text(outcome: &Outcome, graph: &AdjacencyMatrix, args: &Args) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "graph: {} nodes, {} edges",
        graph.n(),
        graph.edge_count()
    );
    let _ = writeln!(out, "machine: {}", outcome.machine.name());
    if let Some(engine) = &outcome.engine {
        let _ = writeln!(out, "engine: {engine}");
    }
    let _ = writeln!(out, "components: {}", outcome.labels.component_count());
    if let Some(steps) = outcome.steps {
        let _ = writeln!(out, "synchronous steps: {steps}");
    }
    if let Some(work) = outcome.work {
        let _ = writeln!(out, "work: {work}");
    }
    if let Some(d) = outcome.max_congestion {
        let _ = writeln!(out, "max congestion: {d}");
    }
    let _ = writeln!(out, "wall time: {:.3} ms", outcome.wall_ms);

    if args.labels {
        let _ = writeln!(out, "labels:");
        for (node, label) in outcome.labels.as_slice().iter().enumerate() {
            let _ = writeln!(out, "  {node} {label}");
        }
    }

    if args.metrics {
        match &outcome.metrics {
            Some(log) => {
                let _ = writeln!(out, "per-generation metrics (phase sub active reads maxd):");
                for m in log.entries() {
                    let _ = writeln!(
                        out,
                        "  {:>3} {:>3} {:>8} {:>8} {:>5}",
                        m.ctx.phase, m.ctx.subgeneration, m.active_cells, m.total_reads,
                        m.max_congestion
                    );
                }
            }
            None => {
                let _ = writeln!(out, "(per-generation metrics not available for this machine)");
            }
        }
    }
    out
}

/// Renders the JSON report.
pub fn render_json(outcome: &Outcome, graph: &AdjacencyMatrix, args: &Args) -> String {
    let mut root = serde_json::json!({
        "machine": outcome.machine.name(),
        "nodes": graph.n(),
        "edges": graph.edge_count(),
        "components": outcome.labels.component_count(),
        "steps": outcome.steps,
        "work": outcome.work,
        "max_congestion": outcome.max_congestion,
        "engine": outcome.engine,
        "wall_ms": outcome.wall_ms,
    });
    if args.labels {
        root["labels"] = serde_json::json!(outcome.labels.as_slice());
    }
    if args.metrics {
        if let Some(log) = &outcome.metrics {
            let rows: Vec<serde_json::Value> = log
                .entries()
                .iter()
                .map(|m| {
                    serde_json::json!({
                        "phase": m.ctx.phase,
                        "subgeneration": m.ctx.subgeneration,
                        "active": m.active_cells,
                        "reads": m.total_reads,
                        "max_congestion": m.max_congestion,
                    })
                })
                .collect();
            root["metrics"] = serde_json::json!(rows);
        }
    }
    format!("{}\n", serde_json::to_string_pretty(&root).expect("serializable"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::InputSpec;
    use gca_graphs::generators;

    fn args_for(machine: MachineKind) -> Args {
        Args {
            machine,
            input: InputSpec::Family { family: "ring".into(), n: 8 },
            labels: true,
            json: false,
            metrics: true,
            verify: false,
            engine: EngineOpts::default(),
        }
    }

    #[test]
    fn all_machines_execute_and_agree() {
        let g = generators::gnp(12, 0.25, 3);
        let expected = union_find_components_dense(&g);
        for machine in [
            MachineKind::Gca,
            MachineKind::NCells,
            MachineKind::LowCongestion,
            MachineKind::TwoHanded,
            MachineKind::Closure,
            MachineKind::Emulated,
            MachineKind::Pram,
            MachineKind::Sequential,
        ] {
            let outcome = execute(machine, &g, &EngineOpts::default()).unwrap();
            assert_eq!(
                outcome.labels.as_slice(),
                expected.as_slice(),
                "{machine:?}"
            );
        }
    }

    #[test]
    fn engine_knobs_do_not_change_labels() {
        use gca_engine::{Backend, DomainPolicy};
        use gca_hirschberg::{Convergence, ExecPath};
        let g = generators::gnp(10, 0.3, 5);
        let reference = execute(MachineKind::Gca, &g, &EngineOpts::default()).unwrap();
        let opts = EngineOpts {
            backend: Backend::Parallel,
            domain: DomainPolicy::Dense,
            convergence: Convergence::Detect,
            exec: ExecPath::Generic,
            ..EngineOpts::default()
        };
        let tuned = execute(MachineKind::Gca, &g, &opts).unwrap();
        assert_eq!(tuned.labels.as_slice(), reference.labels.as_slice());
        assert!(tuned.steps.unwrap() <= reference.steps.unwrap());
        assert_eq!(
            tuned.engine.as_deref(),
            Some("backend=parallel domain=dense convergence=detect exec=generic")
        );
    }

    #[test]
    fn fused_exec_matches_generic_via_cli_path() {
        use gca_hirschberg::ExecPath;
        let g = generators::gnp(14, 0.2, 9);
        let generic = execute(MachineKind::Gca, &g, &EngineOpts::default()).unwrap();
        let opts = EngineOpts {
            exec: ExecPath::Fused,
            ..EngineOpts::default()
        };
        let fused = execute(MachineKind::Gca, &g, &opts).unwrap();
        assert_eq!(fused.labels.as_slice(), generic.labels.as_slice());
        assert_eq!(fused.steps, generic.steps);
        assert_eq!(fused.max_congestion, generic.max_congestion);
        assert_eq!(
            fused.metrics.as_ref().unwrap().entries(),
            generic.metrics.as_ref().unwrap().entries()
        );
        assert_eq!(
            fused.engine.as_deref(),
            Some("backend=sequential domain=hinted convergence=fixed exec=fused")
        );
    }

    #[test]
    fn fused_swar_exec_matches_generic_via_cli_path() {
        // The CLI path additionally installs the symbolically derived
        // schedule — this covers the oracle wiring end to end.
        use gca_hirschberg::ExecPath;
        let g = generators::gnp(17, 0.2, 5);
        let generic = execute(MachineKind::Gca, &g, &EngineOpts::default()).unwrap();
        let opts = EngineOpts {
            exec: ExecPath::fused_swar(),
            ..EngineOpts::default()
        };
        let swar = execute(MachineKind::Gca, &g, &opts).unwrap();
        assert_eq!(swar.labels.as_slice(), generic.labels.as_slice());
        assert_eq!(swar.steps, generic.steps);
        assert_eq!(
            swar.metrics.as_ref().unwrap().entries(),
            generic.metrics.as_ref().unwrap().entries()
        );
        assert_eq!(
            swar.engine.as_deref(),
            Some("backend=sequential domain=hinted convergence=fixed exec=fused-swar")
        );
    }

    #[test]
    fn validate_knob_is_bit_identical_on_both_exec_paths() {
        use gca_hirschberg::{ExecPath, FusedParallel};
        let g = generators::gnp(16, 0.3, 11);
        let reference = execute(MachineKind::Gca, &g, &EngineOpts::default()).unwrap();
        for exec in [
            ExecPath::Generic,
            ExecPath::Fused,
            // threshold 0 forces the row-partitioned path even at n = 16.
            ExecPath::FusedParallel(FusedParallel { workers: 2, threshold: Some(0) }),
            ExecPath::fused_swar(),
        ] {
            let opts = EngineOpts {
                exec,
                validate: true,
                ..EngineOpts::default()
            };
            let validated = execute(MachineKind::Gca, &g, &opts).unwrap();
            assert_eq!(validated.labels.as_slice(), reference.labels.as_slice());
            assert_eq!(
                validated.metrics.as_ref().unwrap().entries(),
                reference.metrics.as_ref().unwrap().entries()
            );
            assert!(validated.engine.as_deref().unwrap().ends_with("validate=on"));
        }
    }

    #[test]
    fn fused_par_exec_matches_generic_via_cli_path() {
        use gca_hirschberg::{ExecPath, FusedParallel};
        let g = generators::gnp(18, 0.25, 13);
        let generic = execute(MachineKind::Gca, &g, &EngineOpts::default()).unwrap();
        let opts = EngineOpts {
            exec: ExecPath::FusedParallel(FusedParallel { workers: 3, threshold: Some(0) }),
            ..EngineOpts::default()
        };
        let par = execute(MachineKind::Gca, &g, &opts).unwrap();
        assert_eq!(par.labels.as_slice(), generic.labels.as_slice());
        assert_eq!(par.steps, generic.steps);
        assert_eq!(
            par.metrics.as_ref().unwrap().entries(),
            generic.metrics.as_ref().unwrap().entries()
        );
        assert_eq!(
            par.engine.as_deref(),
            Some("backend=sequential domain=hinted convergence=fixed exec=fused-par workers=3")
        );
    }

    #[test]
    fn text_report_contains_summary() {
        let g = generators::ring(8);
        let outcome = execute(MachineKind::Gca, &g, &EngineOpts::default()).unwrap();
        let text = render_text(&outcome, &g, &args_for(MachineKind::Gca));
        assert!(text.contains("graph: 8 nodes, 8 edges"));
        assert!(text.contains("components: 1"));
        assert!(text.contains("engine: backend=sequential domain=hinted convergence=fixed"));
        assert!(text.contains("per-generation metrics"));
        assert!(text.contains("labels:"));
    }

    #[test]
    fn json_report_is_valid() {
        let g = generators::ring(6);
        let outcome = execute(MachineKind::Pram, &g, &EngineOpts::default()).unwrap();
        let json = render_json(&outcome, &g, &args_for(MachineKind::Pram));
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed["machine"], "pram");
        assert_eq!(parsed["components"], 1);
        assert!(parsed["work"].as_u64().unwrap() > 0);
    }

    #[test]
    fn sequential_has_no_step_counter() {
        let g = generators::path(5);
        let outcome = execute(MachineKind::Sequential, &g, &EngineOpts::default()).unwrap();
        assert!(outcome.steps.is_none());
        let text = render_text(
            &outcome,
            &g,
            &Args {
                machine: MachineKind::Sequential,
                input: InputSpec::Family { family: "path".into(), n: 5 },
                labels: false,
                json: false,
                metrics: true,
                verify: false,
                engine: EngineOpts::default(),
            },
        );
        assert!(text.contains("not available"));
    }
}
