//! Machine dispatch and report rendering for `gca-cc`.

use crate::args::{Args, EngineOpts, MachineKind, RecoveryOpts};
use gca_engine::metrics::MetricsLog;
use gca_engine::recovery::{RecoveryOutcome, RecoveryPolicy, RecoveryReport, Supervisor};
use gca_engine::{Engine, Instrumentation};
use gca_graphs::connectivity::union_find_components_dense;
use gca_graphs::{AdjacencyMatrix, Labeling};
use gca_hirschberg::complexity::total_generations;
use gca_hirschberg::variants::{low_congestion, n_cells, two_handed};
use gca_hirschberg::{HirschbergGca, Machine, SupervisedMachine};
use gca_pram::hirschberg_ref;
use std::fmt::Write as _;

/// What a machine run produced.
pub struct Outcome {
    /// Machine used.
    pub machine: MachineKind,
    /// Component labeling.
    pub labels: Labeling,
    /// Synchronous steps (GCA generations or PRAM steps), if applicable.
    pub steps: Option<u64>,
    /// PRAM work, if applicable.
    pub work: Option<u64>,
    /// Worst observed congestion, if instrumented.
    pub max_congestion: Option<u32>,
    /// Per-generation metrics, when the machine records them.
    pub metrics: Option<MetricsLog>,
    /// Engine configuration, for machines that honor the engine knobs.
    pub engine: Option<String>,
    /// Recovery report of a supervised run (`--inject` / `--recover`).
    pub recovery: Option<RecoveryReport>,
    /// Whether an injected fault escaped every detector: set only when
    /// `--inject` is active and the run completed — `true` means the
    /// final labels differ from the union-find reference without any
    /// detection, the worst outcome a campaign can observe.
    pub diverged: Option<bool>,
    /// Wall-clock milliseconds of the run.
    pub wall_ms: f64,
}

/// Runs the selected machine.
pub fn execute(
    machine: MachineKind,
    graph: &AdjacencyMatrix,
    opts: &EngineOpts,
    recovery: &RecoveryOpts,
) -> Result<Outcome, Box<dyn std::error::Error>> {
    let start = std::time::Instant::now();
    let mut outcome = match machine {
        // The supervised arm: fault injection and/or recovery requested.
        // An empty field has no generations to supervise, so n = 0 falls
        // through to the plain runner.
        MachineKind::Gca if recovery.supervised() && graph.n() > 0 => {
            supervised_gca(graph, opts, recovery)?
        }
        MachineKind::Gca => {
            let mut engine = Engine::new()
                .with_backend(opts.backend)
                .with_domain_policy(opts.domain);
            if opts.validate {
                engine = engine.with_instrumentation(Instrumentation::Validate);
            }
            let mut gca = HirschbergGca::new()
                .with_engine(engine)
                .convergence(opts.convergence)
                .exec(opts.exec);
            if matches!(opts.exec, gca_hirschberg::ExecPath::FusedSwar(_)) {
                // Install the symbolically derived schedule (the oracle the
                // SWAR driver consults for sub-generation skipping; equal to
                // the structural bound for the shipped rule, and
                // cross-checked dynamically under --validate).
                gca = gca.with_swar_schedule(gca_analysis::swar_schedule(graph.n()));
            }
            let run = gca.run(graph)?;
            Outcome {
                machine,
                labels: run.labels,
                steps: Some(run.generations),
                work: None,
                max_congestion: Some(run.metrics.max_congestion()),
                metrics: Some(run.metrics),
                engine: Some(opts.describe()),
                recovery: None,
                diverged: None,
                wall_ms: 0.0,
            }
        }
        MachineKind::NCells => {
            let run = n_cells::run(graph)?;
            Outcome {
                machine,
                labels: run.labels,
                steps: Some(run.generations),
                work: None,
                max_congestion: Some(run.metrics.max_congestion()),
                metrics: Some(run.metrics),
                engine: None,
                recovery: None,
                diverged: None,
                wall_ms: 0.0,
            }
        }
        MachineKind::LowCongestion => {
            let run = low_congestion::run(graph)?;
            Outcome {
                machine,
                labels: run.labels,
                steps: Some(run.generations),
                work: None,
                max_congestion: Some(run.metrics.max_congestion()),
                metrics: Some(run.metrics),
                engine: None,
                recovery: None,
                diverged: None,
                wall_ms: 0.0,
            }
        }
        MachineKind::TwoHanded => {
            let run = two_handed::run(graph)?;
            Outcome {
                machine,
                labels: run.labels,
                steps: Some(run.generations),
                work: None,
                max_congestion: Some(run.metrics.max_congestion()),
                metrics: Some(run.metrics),
                engine: None,
                recovery: None,
                diverged: None,
                wall_ms: 0.0,
            }
        }
        MachineKind::Closure => {
            let run = gca_algorithms::transitive_closure::run(graph)?;
            Outcome {
                machine,
                labels: run.labels,
                steps: Some(run.generations),
                work: None,
                max_congestion: Some(run.max_congestion),
                metrics: None,
                engine: None,
                recovery: None,
                diverged: None,
                wall_ms: 0.0,
            }
        }
        MachineKind::Emulated => {
            let n = graph.n();
            let labels = gca_emu::hirschberg_program::connected_components(graph)?;
            Outcome {
                machine,
                labels,
                steps: Some(gca_emu::hirschberg_program::emulated_generations(n)),
                work: None,
                max_congestion: None,
                metrics: None,
                engine: None,
                recovery: None,
                diverged: None,
                wall_ms: 0.0,
            }
        }
        MachineKind::Pram => {
            let run = hirschberg_ref::connected_components(graph)?;
            Outcome {
                machine,
                labels: run.labels,
                steps: Some(run.time),
                work: Some(run.work),
                max_congestion: Some(run.max_congestion),
                metrics: None,
                engine: None,
                recovery: None,
                diverged: None,
                wall_ms: 0.0,
            }
        }
        MachineKind::Sequential => Outcome {
            machine,
            labels: union_find_components_dense(graph),
            steps: None,
            work: None,
            max_congestion: None,
            metrics: None,
            engine: None,
            recovery: None,
            diverged: None,
            wall_ms: 0.0,
        },
    };
    outcome.wall_ms = start.elapsed().as_secs_f64() * 1e3;
    Ok(outcome)
}

/// Runs the main GCA machine under the checkpointing supervisor,
/// optionally with a planted fault. The machine mirrors the plain arm's
/// configuration (backend, domain, exec path, SWAR schedule, sanitizer);
/// the fault spec is resolved against the run geometry, the supervisor
/// drives iteration-granular checkpoints per the policy, and — whenever
/// a fault is armed — the final labels are cross-checked against the
/// union-find reference so a corruption that slips past every detector
/// is still caught at the exit.
fn supervised_gca(
    graph: &AdjacencyMatrix,
    opts: &EngineOpts,
    recovery: &RecoveryOpts,
) -> Result<Outcome, Box<dyn std::error::Error>> {
    let mut engine = Engine::new()
        .with_backend(opts.backend)
        .with_domain_policy(opts.domain);
    if opts.validate {
        engine = engine.with_instrumentation(Instrumentation::Validate);
    }
    let mut machine = Machine::with_engine(graph, engine)?
        .with_convergence(opts.convergence)
        .with_exec(opts.exec);
    if matches!(opts.exec, gca_hirschberg::ExecPath::FusedSwar(_)) {
        machine = machine.with_swar_schedule(gca_analysis::swar_schedule(graph.n()));
    }
    if let Some(spec) = recovery.inject {
        let plan = spec.resolve(
            machine.field().len(),
            total_generations(graph.n()),
            machine.exec_level(),
        );
        machine.set_fault_plan(Some(plan));
    }

    let mut sm = SupervisedMachine::from_machine(machine, graph);
    let policy = recovery.recover.unwrap_or(RecoveryPolicy::Fail);
    let report = Supervisor::new(policy)
        .with_cadence(recovery.checkpoint_every)
        .run(&mut sm);
    let machine = sm.into_machine();

    let (labels, diverged) = if report.completed() {
        let labels = machine.labels()?;
        let diverged = recovery.inject.map(|_| {
            labels.as_slice() != union_find_components_dense(graph).as_slice()
        });
        (labels, diverged)
    } else {
        // Exhausted: the final state is untrusted — render an empty
        // labeling and let the exit path carry the terminal error.
        (Labeling::empty(), None)
    };
    Ok(Outcome {
        machine: MachineKind::Gca,
        labels,
        steps: Some(machine.generations()),
        work: None,
        max_congestion: Some(machine.metrics().max_congestion()),
        metrics: Some(machine.metrics().clone()),
        engine: Some(opts.describe()),
        recovery: Some(report),
        diverged,
        wall_ms: 0.0,
    })
}

/// Renders the human-readable report.
pub fn render_text(outcome: &Outcome, graph: &AdjacencyMatrix, args: &Args) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "graph: {} nodes, {} edges",
        graph.n(),
        graph.edge_count()
    );
    let _ = writeln!(out, "machine: {}", outcome.machine.name());
    if let Some(engine) = &outcome.engine {
        let _ = writeln!(out, "engine: {engine}");
    }
    let _ = writeln!(out, "components: {}", outcome.labels.component_count());
    if let Some(steps) = outcome.steps {
        let _ = writeln!(out, "synchronous steps: {steps}");
    }
    if let Some(work) = outcome.work {
        let _ = writeln!(out, "work: {work}");
    }
    if let Some(d) = outcome.max_congestion {
        let _ = writeln!(out, "max congestion: {d}");
    }
    let _ = writeln!(out, "wall time: {:.3} ms", outcome.wall_ms);
    if let Some(report) = &outcome.recovery {
        let _ = writeln!(out, "recovery: {report}");
        if report.checkpoints_taken > 0 {
            let _ = writeln!(
                out,
                "checkpoints: {} taken, {} restored{}",
                report.checkpoints_taken,
                report.checkpoints_restored,
                match report.restored_generation {
                    Some(g) => format!(" (last restored at generation {g})"),
                    None => String::new(),
                }
            );
        }
    }
    if let Some(diverged) = outcome.diverged {
        let _ = writeln!(
            out,
            "fault containment: {}",
            if diverged {
                "DIVERGED — the injected fault escaped every detector"
            } else {
                "labels match the union-find reference"
            }
        );
    }

    if args.labels {
        let _ = writeln!(out, "labels:");
        for (node, label) in outcome.labels.as_slice().iter().enumerate() {
            let _ = writeln!(out, "  {node} {label}");
        }
    }

    if args.metrics {
        match &outcome.metrics {
            Some(log) => {
                let _ = writeln!(out, "per-generation metrics (phase sub active reads maxd):");
                for m in log.entries() {
                    let _ = writeln!(
                        out,
                        "  {:>3} {:>3} {:>8} {:>8} {:>5}",
                        m.ctx.phase, m.ctx.subgeneration, m.active_cells, m.total_reads,
                        m.max_congestion
                    );
                }
            }
            None => {
                let _ = writeln!(out, "(per-generation metrics not available for this machine)");
            }
        }
    }
    out
}

/// Renders the JSON report.
pub fn render_json(outcome: &Outcome, graph: &AdjacencyMatrix, args: &Args) -> String {
    let mut root = serde_json::json!({
        "machine": outcome.machine.name(),
        "nodes": graph.n(),
        "edges": graph.edge_count(),
        "components": outcome.labels.component_count(),
        "steps": outcome.steps,
        "work": outcome.work,
        "max_congestion": outcome.max_congestion,
        "engine": outcome.engine,
        "wall_ms": outcome.wall_ms,
    });
    if let Some(report) = &outcome.recovery {
        let attempts: Vec<serde_json::Value> = report
            .attempts
            .iter()
            .map(|a| {
                serde_json::json!({
                    "unit": a.unit,
                    "generation": a.generation,
                    "rung": a.rung,
                    "detector": a.detector,
                    "error": a.error.to_string(),
                })
            })
            .collect();
        root["recovery"] = serde_json::json!({
            "outcome": match &report.outcome {
                RecoveryOutcome::Clean => "clean".to_string(),
                RecoveryOutcome::Recovered => "recovered".to_string(),
                RecoveryOutcome::Exhausted(e) => format!("exhausted: {e}"),
            },
            "attempts": attempts,
            "checkpoints_taken": report.checkpoints_taken,
            "checkpoints_restored": report.checkpoints_restored,
            "restored_generation": report.restored_generation,
            "initial_rung": report.initial_rung,
            "final_rung": report.final_rung,
            "degradations": report.degradations,
        });
    }
    if let Some(diverged) = outcome.diverged {
        root["diverged"] = serde_json::json!(diverged);
    }
    if args.labels {
        root["labels"] = serde_json::json!(outcome.labels.as_slice());
    }
    if args.metrics {
        if let Some(log) = &outcome.metrics {
            let rows: Vec<serde_json::Value> = log
                .entries()
                .iter()
                .map(|m| {
                    serde_json::json!({
                        "phase": m.ctx.phase,
                        "subgeneration": m.ctx.subgeneration,
                        "active": m.active_cells,
                        "reads": m.total_reads,
                        "max_congestion": m.max_congestion,
                    })
                })
                .collect();
            root["metrics"] = serde_json::json!(rows);
        }
    }
    format!("{}\n", serde_json::to_string_pretty(&root).expect("serializable"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::InputSpec;
    use gca_graphs::generators;

    fn args_for(machine: MachineKind) -> Args {
        Args {
            machine,
            input: InputSpec::Family { family: "ring".into(), n: 8 },
            labels: true,
            json: false,
            metrics: true,
            verify: false,
            engine: EngineOpts::default(),
            recovery: RecoveryOpts::default(),
        }
    }

    #[test]
    fn all_machines_execute_and_agree() {
        let g = generators::gnp(12, 0.25, 3);
        let expected = union_find_components_dense(&g);
        for machine in [
            MachineKind::Gca,
            MachineKind::NCells,
            MachineKind::LowCongestion,
            MachineKind::TwoHanded,
            MachineKind::Closure,
            MachineKind::Emulated,
            MachineKind::Pram,
            MachineKind::Sequential,
        ] {
            let outcome = execute(machine, &g, &EngineOpts::default(), &RecoveryOpts::default()).unwrap();
            assert_eq!(
                outcome.labels.as_slice(),
                expected.as_slice(),
                "{machine:?}"
            );
        }
    }

    #[test]
    fn engine_knobs_do_not_change_labels() {
        use gca_engine::{Backend, DomainPolicy};
        use gca_hirschberg::{Convergence, ExecPath};
        let g = generators::gnp(10, 0.3, 5);
        let reference = execute(MachineKind::Gca, &g, &EngineOpts::default(), &RecoveryOpts::default()).unwrap();
        let opts = EngineOpts {
            backend: Backend::Parallel,
            domain: DomainPolicy::Dense,
            convergence: Convergence::Detect,
            exec: ExecPath::Generic,
            ..EngineOpts::default()
        };
        let tuned = execute(MachineKind::Gca, &g, &opts, &RecoveryOpts::default()).unwrap();
        assert_eq!(tuned.labels.as_slice(), reference.labels.as_slice());
        assert!(tuned.steps.unwrap() <= reference.steps.unwrap());
        assert_eq!(
            tuned.engine.as_deref(),
            Some("backend=parallel domain=dense convergence=detect exec=generic")
        );
    }

    #[test]
    fn fused_exec_matches_generic_via_cli_path() {
        use gca_hirschberg::ExecPath;
        let g = generators::gnp(14, 0.2, 9);
        let generic = execute(MachineKind::Gca, &g, &EngineOpts::default(), &RecoveryOpts::default()).unwrap();
        let opts = EngineOpts {
            exec: ExecPath::Fused,
            ..EngineOpts::default()
        };
        let fused = execute(MachineKind::Gca, &g, &opts, &RecoveryOpts::default()).unwrap();
        assert_eq!(fused.labels.as_slice(), generic.labels.as_slice());
        assert_eq!(fused.steps, generic.steps);
        assert_eq!(fused.max_congestion, generic.max_congestion);
        assert_eq!(
            fused.metrics.as_ref().unwrap().entries(),
            generic.metrics.as_ref().unwrap().entries()
        );
        assert_eq!(
            fused.engine.as_deref(),
            Some("backend=sequential domain=hinted convergence=fixed exec=fused")
        );
    }

    #[test]
    fn fused_swar_exec_matches_generic_via_cli_path() {
        // The CLI path additionally installs the symbolically derived
        // schedule — this covers the oracle wiring end to end.
        use gca_hirschberg::ExecPath;
        let g = generators::gnp(17, 0.2, 5);
        let generic = execute(MachineKind::Gca, &g, &EngineOpts::default(), &RecoveryOpts::default()).unwrap();
        let opts = EngineOpts {
            exec: ExecPath::fused_swar(),
            ..EngineOpts::default()
        };
        let swar = execute(MachineKind::Gca, &g, &opts, &RecoveryOpts::default()).unwrap();
        assert_eq!(swar.labels.as_slice(), generic.labels.as_slice());
        assert_eq!(swar.steps, generic.steps);
        assert_eq!(
            swar.metrics.as_ref().unwrap().entries(),
            generic.metrics.as_ref().unwrap().entries()
        );
        assert_eq!(
            swar.engine.as_deref(),
            Some("backend=sequential domain=hinted convergence=fixed exec=fused-swar")
        );
    }

    #[test]
    fn validate_knob_is_bit_identical_on_both_exec_paths() {
        use gca_hirschberg::{ExecPath, FusedParallel};
        let g = generators::gnp(16, 0.3, 11);
        let reference = execute(MachineKind::Gca, &g, &EngineOpts::default(), &RecoveryOpts::default()).unwrap();
        for exec in [
            ExecPath::Generic,
            ExecPath::Fused,
            // threshold 0 forces the row-partitioned path even at n = 16.
            ExecPath::FusedParallel(FusedParallel { workers: 2, threshold: Some(0) }),
            ExecPath::fused_swar(),
        ] {
            let opts = EngineOpts {
                exec,
                validate: true,
                ..EngineOpts::default()
            };
            let validated = execute(MachineKind::Gca, &g, &opts, &RecoveryOpts::default()).unwrap();
            assert_eq!(validated.labels.as_slice(), reference.labels.as_slice());
            assert_eq!(
                validated.metrics.as_ref().unwrap().entries(),
                reference.metrics.as_ref().unwrap().entries()
            );
            assert!(validated.engine.as_deref().unwrap().ends_with("validate=on"));
        }
    }

    #[test]
    fn fused_par_exec_matches_generic_via_cli_path() {
        use gca_hirschberg::{ExecPath, FusedParallel};
        let g = generators::gnp(18, 0.25, 13);
        let generic = execute(MachineKind::Gca, &g, &EngineOpts::default(), &RecoveryOpts::default()).unwrap();
        let opts = EngineOpts {
            exec: ExecPath::FusedParallel(FusedParallel { workers: 3, threshold: Some(0) }),
            ..EngineOpts::default()
        };
        let par = execute(MachineKind::Gca, &g, &opts, &RecoveryOpts::default()).unwrap();
        assert_eq!(par.labels.as_slice(), generic.labels.as_slice());
        assert_eq!(par.steps, generic.steps);
        assert_eq!(
            par.metrics.as_ref().unwrap().entries(),
            generic.metrics.as_ref().unwrap().entries()
        );
        assert_eq!(
            par.engine.as_deref(),
            Some("backend=sequential domain=hinted convergence=fixed exec=fused-par workers=3")
        );
    }

    fn transient_flip(generation: u64, cell: usize) -> RecoveryOpts {
        use gca_engine::faults::{FaultAddr, FaultKind, FaultSpec};
        RecoveryOpts {
            inject: Some(FaultSpec {
                kind: FaultKind::BitFlip { bit: 0 },
                addr: FaultAddr::Explicit { generation, cell, bit: 0 },
                sticky: false,
            }),
            recover: Some(RecoveryPolicy::Retry { max_attempts: 3 }),
            checkpoint_every: 1,
        }
    }

    #[test]
    fn supervised_recovery_restores_the_reference_labeling() {
        use gca_hirschberg::ExecPath;
        let g = generators::path(24);
        let reference =
            execute(MachineKind::Gca, &g, &EngineOpts::default(), &RecoveryOpts::default())
                .unwrap();
        let opts = EngineOpts {
            exec: ExecPath::Fused,
            validate: true,
            ..EngineOpts::default()
        };
        // Mid-second-iteration label flip: detected by the differential
        // replay, repaired from the iteration-boundary checkpoint.
        let outcome = execute(MachineKind::Gca, &g, &opts, &transient_flip(27, 5)).unwrap();
        let report = outcome.recovery.as_ref().unwrap();
        assert!(matches!(report.outcome, RecoveryOutcome::Recovered), "{report}");
        assert_eq!(report.first_detector(), Some("differential-replay"));
        assert!(report.checkpoints_restored >= 1);
        assert_eq!(outcome.diverged, Some(false));
        assert_eq!(outcome.labels.as_slice(), reference.labels.as_slice());
        assert_eq!(
            outcome.metrics.as_ref().unwrap().entries(),
            reference.metrics.as_ref().unwrap().entries(),
            "recovered metrics must be bit-identical to a clean run"
        );
    }

    #[test]
    fn supervised_fail_policy_reports_exhaustion() {
        use gca_hirschberg::ExecPath;
        let g = generators::path(24);
        let opts = EngineOpts {
            exec: ExecPath::Fused,
            validate: true,
            ..EngineOpts::default()
        };
        let rec = RecoveryOpts {
            recover: Some(RecoveryPolicy::Fail),
            ..transient_flip(27, 5)
        };
        let outcome = execute(MachineKind::Gca, &g, &opts, &rec).unwrap();
        let report = outcome.recovery.as_ref().unwrap();
        assert!(!report.completed(), "{report}");
        assert_eq!(report.checkpoints_restored, 0);
        assert_eq!(outcome.diverged, None);
    }

    #[test]
    fn undetected_final_generation_flip_sets_the_divergence_flag() {
        use gca_hirschberg::ExecPath;
        let g = generators::path(24);
        // No sanitizer: a flip of node 1's label cell (row 1, column 0)
        // on the last committed generation reaches the output unseen —
        // only the union-find cross-check catches it.
        let opts = EngineOpts {
            exec: ExecPath::Fused,
            ..EngineOpts::default()
        };
        let last = total_generations(24) - 1;
        let outcome = execute(MachineKind::Gca, &g, &opts, &transient_flip(last, 24)).unwrap();
        let report = outcome.recovery.as_ref().unwrap();
        assert!(matches!(report.outcome, RecoveryOutcome::Clean), "{report}");
        assert_eq!(outcome.diverged, Some(true));
    }

    #[test]
    fn json_report_embeds_the_recovery_report() {
        use gca_hirschberg::ExecPath;
        let g = generators::path(24);
        let opts = EngineOpts {
            exec: ExecPath::Fused,
            validate: true,
            ..EngineOpts::default()
        };
        let outcome = execute(MachineKind::Gca, &g, &opts, &transient_flip(27, 5)).unwrap();
        let mut args = args_for(MachineKind::Gca);
        args.json = true;
        let json = render_json(&outcome, &g, &args);
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v["recovery"]["outcome"], "recovered");
        assert_eq!(v["recovery"]["attempts"][0]["detector"], "differential-replay");
        assert_eq!(v["recovery"]["initial_rung"], "fused");
        assert_eq!(v["diverged"], false);
        let text = render_text(&outcome, &g, &args);
        assert!(text.contains("recovery: recovered"), "{text}");
        assert!(text.contains("fault containment: labels match"), "{text}");
    }

    #[test]
    fn text_report_contains_summary() {
        let g = generators::ring(8);
        let outcome = execute(MachineKind::Gca, &g, &EngineOpts::default(), &RecoveryOpts::default()).unwrap();
        let text = render_text(&outcome, &g, &args_for(MachineKind::Gca));
        assert!(text.contains("graph: 8 nodes, 8 edges"));
        assert!(text.contains("components: 1"));
        assert!(text.contains("engine: backend=sequential domain=hinted convergence=fixed"));
        assert!(text.contains("per-generation metrics"));
        assert!(text.contains("labels:"));
    }

    #[test]
    fn json_report_is_valid() {
        let g = generators::ring(6);
        let outcome = execute(MachineKind::Pram, &g, &EngineOpts::default(), &RecoveryOpts::default()).unwrap();
        let json = render_json(&outcome, &g, &args_for(MachineKind::Pram));
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed["machine"], "pram");
        assert_eq!(parsed["components"], 1);
        assert!(parsed["work"].as_u64().unwrap() > 0);
    }

    #[test]
    fn sequential_has_no_step_counter() {
        let g = generators::path(5);
        let outcome = execute(MachineKind::Sequential, &g, &EngineOpts::default(), &RecoveryOpts::default()).unwrap();
        assert!(outcome.steps.is_none());
        let text = render_text(
            &outcome,
            &g,
            &Args {
                machine: MachineKind::Sequential,
                input: InputSpec::Family { family: "path".into(), n: 5 },
                labels: false,
                json: false,
                metrics: true,
                verify: false,
                engine: EngineOpts::default(),
                recovery: RecoveryOpts::default(),
            },
        );
        assert!(text.contains("not available"));
    }
}
