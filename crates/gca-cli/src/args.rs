//! Hand-rolled argument parsing for `gca-cc` (no external CLI dependency).

use gca_engine::faults::FaultSpec;
use gca_engine::recovery::RecoveryPolicy;
use gca_engine::{Backend, DomainPolicy};
use gca_hirschberg::{Convergence, ExecPath, FusedParallel};
use std::fmt;

/// Which machine runs the computation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MachineKind {
    /// The paper's `n²`-cell GCA (default).
    Gca,
    /// The `n`-cell GCA variant.
    NCells,
    /// The low-congestion (tree/replication) GCA variant.
    LowCongestion,
    /// The two-handed GCA variant (n² cells, PRAM-step-count generations).
    TwoHanded,
    /// Connected components via the transitive-closure machine.
    Closure,
    /// Listing 1 on the universal PRAM-on-GCA emulator.
    Emulated,
    /// The PRAM reference algorithm (Listing 1, CROW).
    Pram,
    /// Sequential union-find baseline.
    Sequential,
}

impl MachineKind {
    /// Parses a `--machine` value.
    pub fn parse(s: &str) -> Result<Self, ArgError> {
        match s {
            "gca" => Ok(MachineKind::Gca),
            "ncells" | "n-cells" => Ok(MachineKind::NCells),
            "lowcong" | "low-congestion" => Ok(MachineKind::LowCongestion),
            "twohand" | "two-handed" => Ok(MachineKind::TwoHanded),
            "closure" | "tc" => Ok(MachineKind::Closure),
            "emu" | "emulated" => Ok(MachineKind::Emulated),
            "pram" => Ok(MachineKind::Pram),
            "seq" | "sequential" => Ok(MachineKind::Sequential),
            other => Err(ArgError(format!(
                "unknown machine '{other}' (expected gca|ncells|lowcong|twohand|closure|emu|pram|seq)"
            ))),
        }
    }

    /// Display name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            MachineKind::Gca => "gca",
            MachineKind::NCells => "ncells",
            MachineKind::LowCongestion => "lowcong",
            MachineKind::TwoHanded => "twohand",
            MachineKind::Closure => "closure",
            MachineKind::Emulated => "emu",
            MachineKind::Pram => "pram",
            MachineKind::Sequential => "seq",
        }
    }
}

/// Engine knobs forwarded to the main GCA machine (`--machine gca`); the
/// other machines run their fixed reference configurations and ignore them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct EngineOpts {
    /// Execution backend (`--backend`).
    pub backend: Backend,
    /// Active-domain stepping policy (`--domain`).
    pub domain: DomainPolicy,
    /// Pointer-jump convergence handling (`--convergence`).
    pub convergence: Convergence,
    /// Execution path (`--exec`): generic per-cell dispatch or fused kernels.
    pub exec: ExecPath,
    /// Run under the CROW/domain sanitizer (`--validate`): every generation
    /// is replayed against the read-snapshot and domain contracts, and the
    /// fused kernels are shadowed by the reference engine.
    pub validate: bool,
    /// Live invariant checking (`--invariants`): run the algorithm-level
    /// invariant mirror — every generation replayed against the prover's
    /// Hoare-contract transfer functions (label range, forest canonicity,
    /// partition refinement, depth halving), failing with a typed
    /// `InvariantViolation` on first divergence. The mirror hangs off the
    /// sanitizer, so this implies `--validate`.
    pub invariants: bool,
}

impl EngineOpts {
    /// Parses a `--backend` value.
    pub fn parse_backend(s: &str) -> Result<Backend, ArgError> {
        match s {
            "seq" | "sequential" => Ok(Backend::Sequential),
            "par" | "parallel" => Ok(Backend::Parallel),
            other => Err(ArgError(format!(
                "unknown backend '{other}' (expected seq|par)"
            ))),
        }
    }

    /// Parses a `--domain` value.
    pub fn parse_domain(s: &str) -> Result<DomainPolicy, ArgError> {
        match s {
            "hinted" => Ok(DomainPolicy::Hinted),
            "dense" => Ok(DomainPolicy::Dense),
            other => Err(ArgError(format!(
                "unknown domain policy '{other}' (expected hinted|dense)"
            ))),
        }
    }

    /// Parses a `--convergence` value.
    pub fn parse_convergence(s: &str) -> Result<Convergence, ArgError> {
        match s {
            "fixed" => Ok(Convergence::Fixed),
            "detect" => Ok(Convergence::Detect),
            other => Err(ArgError(format!(
                "unknown convergence mode '{other}' (expected fixed|detect)"
            ))),
        }
    }

    /// Parses an `--exec` value.
    pub fn parse_exec(s: &str) -> Result<ExecPath, ArgError> {
        match s {
            "generic" => Ok(ExecPath::Generic),
            "fused" => Ok(ExecPath::Fused),
            "fused-par" | "fused-parallel" => {
                Ok(ExecPath::FusedParallel(FusedParallel::default()))
            }
            "fused-swar" => Ok(ExecPath::fused_swar()),
            other => Err(ArgError(format!(
                "unknown exec path '{other}' (expected generic|fused|fused-par|fused-swar)"
            ))),
        }
    }

    /// `backend=… domain=… convergence=… exec=…`, as shown in reports
    /// (plus ` validate=on` when the sanitizer is enabled).
    pub fn describe(&self) -> String {
        let mut s = format!(
            "backend={} domain={} convergence={} exec={}",
            match self.backend {
                Backend::Sequential => "sequential",
                Backend::Parallel => "parallel",
            },
            match self.domain {
                DomainPolicy::Hinted => "hinted",
                DomainPolicy::Dense => "dense",
            },
            match self.convergence {
                Convergence::Fixed => "fixed",
                Convergence::Detect => "detect",
            },
            match self.exec {
                ExecPath::Generic => "generic",
                ExecPath::Fused => "fused",
                ExecPath::FusedParallel(_) => "fused-par",
                ExecPath::FusedSwar(_) => "fused-swar",
            }
        );
        let workers = match self.exec {
            ExecPath::FusedParallel(cfg) => Some(cfg.workers),
            ExecPath::FusedSwar(swar) => swar.parallel.map(|cfg| cfg.workers),
            _ => None,
        };
        if let Some(w) = workers.filter(|&w| w != 0) {
            s.push_str(&format!(" workers={w}"));
        }
        if self.validate {
            s.push_str(" validate=on");
        }
        if self.invariants {
            s.push_str(" invariants=on");
        }
        s
    }
}

/// Fault-injection and recovery options (`--machine gca` only). With a
/// fault or a policy set, the run goes through the checkpointing
/// supervisor instead of the plain runner.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveryOpts {
    /// Planted fault (`--inject`), resolved against the run geometry
    /// once the graph is known.
    pub inject: Option<FaultSpec>,
    /// Recovery policy (`--recover`). `--inject` without a policy
    /// supervises fail-fast: the first detection ends the run.
    pub recover: Option<RecoveryPolicy>,
    /// Checkpoint cadence in outer iterations (`--checkpoint-every`).
    pub checkpoint_every: u64,
}

impl Default for RecoveryOpts {
    fn default() -> Self {
        RecoveryOpts {
            inject: None,
            recover: None,
            checkpoint_every: 1,
        }
    }
}

impl RecoveryOpts {
    /// Whether the run must go through the supervisor.
    pub fn supervised(&self) -> bool {
        self.inject.is_some() || self.recover.is_some()
    }

    /// Parses a `--recover` value: `fail | retry[:N] | rollback[:D] |
    /// degrade`.
    pub fn parse_policy(s: &str) -> Result<RecoveryPolicy, ArgError> {
        let (head, arg) = match s.split_once(':') {
            Some((h, a)) => (h, Some(a)),
            None => (s, None),
        };
        let count = |a: &str| -> Result<u32, ArgError> {
            a.parse()
                .map_err(|_| ArgError(format!("bad count '{a}' in --recover '{s}'")))
        };
        match (head, arg) {
            ("fail", None) => Ok(RecoveryPolicy::Fail),
            ("retry", None) => Ok(RecoveryPolicy::Retry { max_attempts: 3 }),
            ("retry", Some(a)) => Ok(RecoveryPolicy::Retry { max_attempts: count(a)? }),
            ("rollback", None) => Ok(RecoveryPolicy::Rollback { to_checkpoint: 1 }),
            ("rollback", Some(a)) => Ok(RecoveryPolicy::Rollback {
                to_checkpoint: count(a)? as usize,
            }),
            ("degrade", None) => Ok(RecoveryPolicy::Degrade),
            _ => Err(ArgError(format!(
                "unknown recovery policy '{s}' (expected fail|retry[:N]|rollback[:D]|degrade)"
            ))),
        }
    }
}

/// Where the input graph comes from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InputSpec {
    /// Read an edge-list file (`-` for stdin).
    File(String),
    /// Generate `gnp:<n>:<p>[:seed]`.
    Gnp { n: usize, p_milli: u32, seed: u64 },
    /// Generate `forest:<n>:<k>[:seed]`.
    Forest { n: usize, k: usize, seed: u64 },
    /// Generate a named family `<family>:<n>` (path, ring, star, complete, empty).
    Family { family: String, n: usize },
}

/// Parsed command line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Args {
    /// Machine selection.
    pub machine: MachineKind,
    /// Input source.
    pub input: InputSpec,
    /// Print per-node labels (not just the summary).
    pub labels: bool,
    /// Emit a JSON report instead of text.
    pub json: bool,
    /// Print per-generation congestion metrics (GCA machines only).
    pub metrics: bool,
    /// Independently verify the labeling against the graph (oracle-free).
    pub verify: bool,
    /// Engine knobs for the main GCA machine.
    pub engine: EngineOpts,
    /// Fault-injection and recovery knobs for the main GCA machine.
    pub recovery: RecoveryOpts,
}

/// A user-facing argument error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

/// The usage string printed on `--help` or argument errors.
pub const USAGE: &str = "\
gca-cc — connected components on a Global Cellular Automaton

USAGE:
  gca-cc [OPTIONS] <INPUT>

INPUT:
  <file>                    edge-list file ('n <count>' header, 'u v' lines; '-' = stdin)
  gnp:<n>:<p%o>[:seed]      random G(n, p) with p in permille (e.g. gnp:64:500)
  forest:<n>:<k>[:seed]     random forest with k trees
  path:<n> ring:<n> star:<n> complete:<n> empty:<n>

OPTIONS:
  --machine <m>      gca (default) | ncells | lowcong | twohand | closure | emu | pram | seq
  --backend <b>      seq (default) | par — engine backend (gca machine only)
  --domain <d>       hinted (default) | dense — active-domain stepping policy (gca machine only)
  --convergence <c>  fixed (default) | detect — pointer-jump convergence early exit (gca machine only)
  --exec <e>         generic (default) | fused | fused-par | fused-swar — per-cell dispatch,
                     fused flat-array kernels, row-partitioned parallel fused kernels, or
                     word-parallel SWAR kernels over the bit-packed adjacency plane with the
                     symbolic-activity generation scheduler (gca machine only)
  --workers <k>      worker count for --exec fused-par / fused-swar (0 or omitted = auto from
                     the machine's thread count; fused-swar runs single-thread unless given)
  --validate         run under the CROW/domain sanitizer: replay every generation against the
                     owner-write / read-snapshot / domain contracts (gca machine only; slower)
  --invariants       run the live invariant mirror: every generation replayed against the
                     prover's Hoare contracts (label range, forest canonicity, partition
                     refinement, depth halving); implies --validate (gca machine only; slower)
  --inject <spec>    plant one deterministic fault and run under the recovery supervisor
                     (gca machine only). Spec grammar:
                       <kind>[@<gen>[.<cell>[.<bit>]]][:seed=<u64>][:sticky]
                     with kind bitflip | torn | drop | stale-occ | dup-row | hist-merge.
                     Detection needs --validate; an undetected label divergence exits 4.
  --recover <p>      recovery policy when a detector fires (implies supervision):
                     fail (default with --inject) | retry[:N] | rollback[:D] | degrade —
                     degrade walks fused-swar -> fused-par -> fused -> generic. Exhausted
                     recovery exits 3; a recovered run exits 0 and prints its report.
  --checkpoint-every <N>
                     checkpoint cadence in outer iterations under supervision (default 1)
  --labels           print every node's component label
  --metrics          print per-generation activity/congestion (GCA machines)
  --verify           independently verify the labeling against the graph
  --json             machine-readable report
  --help             this text
";

fn parse_generator(spec: &str) -> Result<InputSpec, ArgError> {
    let parts: Vec<&str> = spec.split(':').collect();
    let int = |s: &str, what: &str| -> Result<usize, ArgError> {
        s.parse()
            .map_err(|_| ArgError(format!("bad {what} '{s}' in '{spec}'")))
    };
    match parts[0] {
        "gnp" => {
            if parts.len() < 3 || parts.len() > 4 {
                return Err(ArgError(format!("expected gnp:<n>:<permille>[:seed], got '{spec}'")));
            }
            let n = int(parts[1], "n")?;
            let p_milli = int(parts[2], "permille")? as u32;
            if p_milli > 1000 {
                return Err(ArgError(format!("permille {p_milli} exceeds 1000")));
            }
            let seed = if parts.len() == 4 { int(parts[3], "seed")? as u64 } else { 1 };
            Ok(InputSpec::Gnp { n, p_milli, seed })
        }
        "forest" => {
            if parts.len() < 3 || parts.len() > 4 {
                return Err(ArgError(format!("expected forest:<n>:<k>[:seed], got '{spec}'")));
            }
            let n = int(parts[1], "n")?;
            let k = int(parts[2], "k")?;
            let seed = if parts.len() == 4 { int(parts[3], "seed")? as u64 } else { 1 };
            Ok(InputSpec::Forest { n, k, seed })
        }
        family @ ("path" | "ring" | "star" | "complete" | "empty") => {
            if parts.len() != 2 {
                return Err(ArgError(format!("expected {family}:<n>, got '{spec}'")));
            }
            Ok(InputSpec::Family {
                family: family.to_string(),
                n: int(parts[1], "n")?,
            })
        }
        _ => Ok(InputSpec::File(spec.to_string())),
    }
}

/// Parses a full argument vector (without the program name).
pub fn parse(args: &[String]) -> Result<Args, ArgError> {
    let mut machine = MachineKind::Gca;
    let mut input: Option<InputSpec> = None;
    let mut labels = false;
    let mut json = false;
    let mut metrics = false;
    let mut verify = false;
    let mut engine = EngineOpts::default();
    let mut recovery = RecoveryOpts::default();
    let mut cadence: Option<u64> = None;
    let mut workers: Option<usize> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--machine" => {
                let v = it
                    .next()
                    .ok_or_else(|| ArgError("--machine needs a value".into()))?;
                machine = MachineKind::parse(v)?;
            }
            "--backend" => {
                let v = it
                    .next()
                    .ok_or_else(|| ArgError("--backend needs a value".into()))?;
                engine.backend = EngineOpts::parse_backend(v)?;
            }
            "--domain" => {
                let v = it
                    .next()
                    .ok_or_else(|| ArgError("--domain needs a value".into()))?;
                engine.domain = EngineOpts::parse_domain(v)?;
            }
            "--convergence" => {
                let v = it
                    .next()
                    .ok_or_else(|| ArgError("--convergence needs a value".into()))?;
                engine.convergence = EngineOpts::parse_convergence(v)?;
            }
            "--exec" => {
                let v = it
                    .next()
                    .ok_or_else(|| ArgError("--exec needs a value".into()))?;
                engine.exec = EngineOpts::parse_exec(v)?;
            }
            "--workers" => {
                let v = it
                    .next()
                    .ok_or_else(|| ArgError("--workers needs a value".into()))?;
                workers = Some(v.parse().map_err(|_| {
                    ArgError(format!("bad worker count '{v}' (expected an integer)"))
                })?);
            }
            "--inject" => {
                let v = it
                    .next()
                    .ok_or_else(|| ArgError("--inject needs a fault spec".into()))?;
                recovery.inject =
                    Some(FaultSpec::parse(v).map_err(|e| ArgError(e.to_string()))?);
            }
            "--recover" => {
                let v = it
                    .next()
                    .ok_or_else(|| ArgError("--recover needs a policy".into()))?;
                recovery.recover = Some(RecoveryOpts::parse_policy(v)?);
            }
            "--checkpoint-every" => {
                let v = it
                    .next()
                    .ok_or_else(|| ArgError("--checkpoint-every needs a value".into()))?;
                let n: u64 = v.parse().map_err(|_| {
                    ArgError(format!("bad cadence '{v}' (expected an integer >= 1)"))
                })?;
                if n == 0 {
                    return Err(ArgError("--checkpoint-every must be >= 1".into()));
                }
                cadence = Some(n);
            }
            "--validate" => engine.validate = true,
            "--invariants" => {
                engine.invariants = true;
                engine.validate = true;
            }
            "--labels" => labels = true,
            "--json" => json = true,
            "--metrics" => metrics = true,
            "--verify" => verify = true,
            "--help" | "-h" => return Err(ArgError("help".into())),
            other if other.starts_with("--") => {
                return Err(ArgError(format!("unknown option '{other}'")));
            }
            other => {
                if input.is_some() {
                    return Err(ArgError(format!("unexpected extra input '{other}'")));
                }
                input = Some(parse_generator(other)?);
            }
        }
    }

    if let Some(w) = workers {
        match &mut engine.exec {
            ExecPath::FusedParallel(cfg) => cfg.workers = w,
            ExecPath::FusedSwar(swar) => {
                swar.parallel = Some(FusedParallel::with_workers(w));
            }
            _ => {
                return Err(ArgError(
                    "--workers requires --exec fused-par or fused-swar".into(),
                ))
            }
        }
    }

    if let Some(n) = cadence {
        if !recovery.supervised() {
            return Err(ArgError(
                "--checkpoint-every requires --inject or --recover".into(),
            ));
        }
        recovery.checkpoint_every = n;
    }
    if recovery.supervised() && machine != MachineKind::Gca {
        return Err(ArgError(
            "--inject/--recover require --machine gca".into(),
        ));
    }

    Ok(Args {
        machine,
        input: input.ok_or_else(|| ArgError("missing input (see --help)".into()))?,
        labels,
        json,
        metrics,
        verify,
        engine,
        recovery,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gca_hirschberg::FusedSwar;

    fn argv(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_defaults() {
        let a = parse(&argv(&["graph.txt"])).unwrap();
        assert_eq!(a.machine, MachineKind::Gca);
        assert_eq!(a.input, InputSpec::File("graph.txt".into()));
        assert!(!a.labels && !a.json && !a.metrics && !a.verify);
    }

    #[test]
    fn parses_machine_choices() {
        for (s, k) in [
            ("gca", MachineKind::Gca),
            ("ncells", MachineKind::NCells),
            ("lowcong", MachineKind::LowCongestion),
            ("closure", MachineKind::Closure),
            ("pram", MachineKind::Pram),
            ("seq", MachineKind::Sequential),
        ] {
            let a = parse(&argv(&["--machine", s, "empty:4"])).unwrap();
            assert_eq!(a.machine, k, "{s}");
        }
        assert!(MachineKind::parse("bogus").is_err());
    }

    #[test]
    fn parses_generators() {
        assert_eq!(
            parse(&argv(&["gnp:64:500:7"])).unwrap().input,
            InputSpec::Gnp { n: 64, p_milli: 500, seed: 7 }
        );
        assert_eq!(
            parse(&argv(&["gnp:10:250"])).unwrap().input,
            InputSpec::Gnp { n: 10, p_milli: 250, seed: 1 }
        );
        assert_eq!(
            parse(&argv(&["forest:20:3"])).unwrap().input,
            InputSpec::Forest { n: 20, k: 3, seed: 1 }
        );
        assert_eq!(
            parse(&argv(&["ring:9"])).unwrap().input,
            InputSpec::Family { family: "ring".into(), n: 9 }
        );
    }

    #[test]
    fn rejects_malformed_generators() {
        assert!(parse(&argv(&["gnp:64"])).is_err());
        assert!(parse(&argv(&["gnp:64:1500"])).is_err());
        assert!(parse(&argv(&["forest:x:3"])).is_err());
        assert!(parse(&argv(&["ring:9:9"])).is_err());
    }

    #[test]
    fn rejects_bad_options() {
        assert!(parse(&argv(&["--bogus", "empty:2"])).is_err());
        assert!(parse(&argv(&["--machine"])).is_err());
        assert!(parse(&argv(&[])).is_err());
        assert!(parse(&argv(&["a.txt", "b.txt"])).is_err());
    }

    #[test]
    fn flags_toggle() {
        let a = parse(&argv(&["--labels", "--json", "--metrics", "--verify", "empty:3"])).unwrap();
        assert!(a.labels && a.json && a.metrics && a.verify);
    }

    #[test]
    fn engine_knobs_default_and_parse() {
        let a = parse(&argv(&["empty:3"])).unwrap();
        assert_eq!(a.engine, EngineOpts::default());
        assert_eq!(a.engine.backend, Backend::Sequential);
        assert_eq!(a.engine.domain, DomainPolicy::Hinted);
        assert_eq!(a.engine.convergence, Convergence::Fixed);
        assert_eq!(a.engine.exec, ExecPath::Generic);
        assert!(!a.engine.validate);

        let a = parse(&argv(&[
            "--backend", "par", "--domain", "dense", "--convergence", "detect", "--exec",
            "fused", "ring:5",
        ]))
        .unwrap();
        assert_eq!(a.engine.backend, Backend::Parallel);
        assert_eq!(a.engine.domain, DomainPolicy::Dense);
        assert_eq!(a.engine.convergence, Convergence::Detect);
        assert_eq!(a.engine.exec, ExecPath::Fused);
        assert_eq!(
            a.engine.describe(),
            "backend=parallel domain=dense convergence=detect exec=fused"
        );
    }

    #[test]
    fn parses_fused_par_and_workers() {
        let a = parse(&argv(&["--exec", "fused-par", "ring:5"])).unwrap();
        assert_eq!(a.engine.exec, ExecPath::FusedParallel(FusedParallel::default()));
        assert_eq!(
            a.engine.describe(),
            "backend=sequential domain=hinted convergence=fixed exec=fused-par"
        );

        let a = parse(&argv(&["--exec", "fused-par", "--workers", "4", "ring:5"])).unwrap();
        assert_eq!(
            a.engine.exec,
            ExecPath::FusedParallel(FusedParallel::with_workers(4))
        );
        assert_eq!(
            a.engine.describe(),
            "backend=sequential domain=hinted convergence=fixed exec=fused-par workers=4"
        );

        // --workers before --exec works too: patching happens after the loop.
        let a = parse(&argv(&["--workers", "2", "--exec", "fused-par", "ring:5"])).unwrap();
        assert_eq!(
            a.engine.exec,
            ExecPath::FusedParallel(FusedParallel::with_workers(2))
        );
    }

    #[test]
    fn workers_requires_fused_par() {
        assert!(parse(&argv(&["--workers", "4", "ring:5"])).is_err());
        assert!(parse(&argv(&["--exec", "fused", "--workers", "4", "ring:5"])).is_err());
        assert!(parse(&argv(&["--exec", "fused-par", "--workers", "x", "ring:5"])).is_err());
        assert!(parse(&argv(&["--workers"])).is_err());
    }

    #[test]
    fn parses_fused_swar_and_workers() {
        let a = parse(&argv(&["--exec", "fused-swar", "ring:5"])).unwrap();
        assert_eq!(a.engine.exec, ExecPath::fused_swar());
        assert_eq!(
            a.engine.describe(),
            "backend=sequential domain=hinted convergence=fixed exec=fused-swar"
        );

        // --workers composes: SWAR bodies inside each parallel row chunk.
        let a = parse(&argv(&["--exec", "fused-swar", "--workers", "4", "ring:5"])).unwrap();
        assert_eq!(
            a.engine.exec,
            ExecPath::FusedSwar(FusedSwar {
                parallel: Some(FusedParallel::with_workers(4)),
            })
        );
        assert_eq!(
            a.engine.describe(),
            "backend=sequential domain=hinted convergence=fixed exec=fused-swar workers=4"
        );

        // --workers before --exec works too: patching happens after the loop.
        let a = parse(&argv(&["--workers", "2", "--exec", "fused-swar", "ring:5"])).unwrap();
        assert_eq!(
            a.engine.exec,
            ExecPath::FusedSwar(FusedSwar {
                parallel: Some(FusedParallel::with_workers(2)),
            })
        );
    }

    #[test]
    fn validate_flag_toggles_sanitizer() {
        let a = parse(&argv(&["--validate", "ring:5"])).unwrap();
        assert!(a.engine.validate);
        assert_eq!(
            a.engine.describe(),
            "backend=sequential domain=hinted convergence=fixed exec=generic validate=on"
        );
    }

    #[test]
    fn invariants_flag_implies_validate() {
        let a = parse(&argv(&["--invariants", "ring:5"])).unwrap();
        assert!(a.engine.invariants && a.engine.validate);
        assert_eq!(
            a.engine.describe(),
            "backend=sequential domain=hinted convergence=fixed exec=generic \
             validate=on invariants=on"
        );
        // --validate alone does not advertise the invariant tier.
        let a = parse(&argv(&["--validate", "ring:5"])).unwrap();
        assert!(!a.engine.invariants && a.engine.validate);
    }

    #[test]
    fn parses_inject_recover_and_cadence() {
        use gca_engine::faults::{FaultAddr, FaultKind};
        let a = parse(&argv(&[
            "--inject", "bitflip@27.5.2", "--recover", "retry:5", "--checkpoint-every", "2",
            "path:24",
        ]))
        .unwrap();
        assert_eq!(
            a.recovery.inject,
            Some(FaultSpec {
                kind: FaultKind::BitFlip { bit: 2 },
                addr: FaultAddr::Explicit { generation: 27, cell: 5, bit: 2 },
                sticky: false,
            })
        );
        assert_eq!(a.recovery.recover, Some(RecoveryPolicy::Retry { max_attempts: 5 }));
        assert_eq!(a.recovery.checkpoint_every, 2);
        assert!(a.recovery.supervised());

        // Defaults: no supervision, cadence 1.
        let a = parse(&argv(&["path:24"])).unwrap();
        assert_eq!(a.recovery, RecoveryOpts::default());
        assert!(!a.recovery.supervised());
    }

    #[test]
    fn parses_recovery_policies() {
        for (s, p) in [
            ("fail", RecoveryPolicy::Fail),
            ("retry", RecoveryPolicy::Retry { max_attempts: 3 }),
            ("retry:7", RecoveryPolicy::Retry { max_attempts: 7 }),
            ("rollback", RecoveryPolicy::Rollback { to_checkpoint: 1 }),
            ("rollback:2", RecoveryPolicy::Rollback { to_checkpoint: 2 }),
            ("degrade", RecoveryPolicy::Degrade),
        ] {
            assert_eq!(RecoveryOpts::parse_policy(s).unwrap(), p, "{s}");
        }
        assert!(RecoveryOpts::parse_policy("panic").is_err());
        assert!(RecoveryOpts::parse_policy("retry:x").is_err());
        assert!(RecoveryOpts::parse_policy("degrade:1").is_err());
    }

    #[test]
    fn rejects_bad_recovery_flags() {
        // Bad fault spec / missing values.
        assert!(parse(&argv(&["--inject", "meltdown", "path:8"])).is_err());
        assert!(parse(&argv(&["--inject"])).is_err());
        assert!(parse(&argv(&["--recover", "never", "path:8"])).is_err());
        // Cadence needs supervision and must be positive.
        assert!(parse(&argv(&["--checkpoint-every", "2", "path:8"])).is_err());
        assert!(parse(&argv(&[
            "--inject", "torn", "--checkpoint-every", "0", "path:8"
        ]))
        .is_err());
        // Supervision is a gca-machine feature.
        assert!(parse(&argv(&["--machine", "pram", "--inject", "torn", "path:8"])).is_err());
        assert!(parse(&argv(&["--machine", "seq", "--recover", "degrade", "path:8"])).is_err());
    }

    #[test]
    fn engine_knobs_reject_bad_values() {
        assert!(parse(&argv(&["--backend", "gpu", "empty:2"])).is_err());
        assert!(parse(&argv(&["--domain", "sparse", "empty:2"])).is_err());
        assert!(parse(&argv(&["--convergence", "never", "empty:2"])).is_err());
        assert!(parse(&argv(&["--exec", "simd", "empty:2"])).is_err());
        assert!(parse(&argv(&["--backend"])).is_err());
    }
}
