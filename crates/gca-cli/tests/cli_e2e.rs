//! End-to-end tests of the `gca-cc` binary: spawn the real executable and
//! check its output, exit codes and file handling.

use std::io::Write;
use std::process::{Command, Stdio};

fn gca_cc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gca-cc"))
}

#[test]
fn generated_workload_summary() {
    let out = gca_cc()
        .args(["ring:8", "--machine", "gca"])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("graph: 8 nodes, 8 edges"), "{text}");
    assert!(text.contains("components: 1"), "{text}");
    assert!(text.contains("synchronous steps: 52"), "{text}"); // 1 + 3(9+8)
}

#[test]
fn all_machines_accept_the_same_input() {
    for machine in ["gca", "ncells", "lowcong", "twohand", "closure", "emu", "pram", "seq"] {
        let out = gca_cc()
            .args(["gnp:12:400:3", "--machine", machine, "--verify"])
            .output()
            .expect("spawn");
        assert!(
            out.status.success(),
            "machine {machine}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

#[test]
fn json_output_parses() {
    let out = gca_cc()
        .args(["star:6", "--json", "--labels"])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let v: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid JSON");
    assert_eq!(v["components"], 1);
    assert_eq!(v["nodes"], 6);
    assert_eq!(v["labels"], serde_json::json!([0, 0, 0, 0, 0, 0]));
}

#[test]
fn reads_edge_list_from_stdin() {
    let mut child = gca_cc()
        .args(["-", "--labels"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"n 4\n0 1\n2 3\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("components: 2"), "{text}");
    assert!(text.contains("  1 0"), "{text}");
    assert!(text.contains("  3 2"), "{text}");
}

#[test]
fn reads_edge_list_from_file() {
    let dir = std::env::temp_dir().join("gca_cli_e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("graph.txt");
    std::fs::write(&path, "# test\nn 5\n0 4\n1 2\n").unwrap();
    let out = gca_cc()
        .args([path.to_str().unwrap(), "--machine", "pram"])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("components: 3"), "{text}");
}

#[test]
fn bad_arguments_fail_with_usage() {
    let out = gca_cc().args(["--bogus"]).output().expect("spawn");
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("USAGE"), "{err}");
}

#[test]
fn missing_file_fails_cleanly() {
    let out = gca_cc()
        .args(["/definitely/not/a/file.txt"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("error:"), "{err}");
}

#[test]
fn malformed_edge_list_fails_cleanly() {
    let mut child = gca_cc()
        .args(["-"])
        .stdin(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"not an edge list\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(!out.status.success());
}

// Exit-code contract of the fault-injection/recovery flags:
//   0 — clean or recovered (with a report on stdout)
//   3 — recovery exhausted (every failure was detected; the policy's
//       budget ran out)
//   4 — undetected divergence (the fault escaped every detector and the
//       labels are wrong)
// `bitflip@27.5.0` lands mid-second-iteration on path:24 (23 generations
// per iteration, so generation 27 is iteration 2's filter window) — a
// site the differential replay detects under --validate.

#[test]
fn recovered_fault_exits_zero_with_report() {
    let out = gca_cc()
        .args([
            "path:24", "--exec", "fused", "--validate", "--inject", "bitflip@27.5.0",
            "--recover", "retry:3", "--checkpoint-every", "2",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("recovered: 1 fault(s) detected"), "{text}");
    assert!(text.contains("differential-replay"), "{text}");
    assert!(text.contains("fault containment: labels match"), "{text}");
    assert!(text.contains("components: 1"), "{text}");
}

#[test]
fn exhausted_recovery_exits_three() {
    let out = gca_cc()
        .args([
            "path:24", "--exec", "fused", "--validate", "--inject", "bitflip@27.5.0",
            "--recover", "fail",
        ])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(3), "{}", String::from_utf8_lossy(&out.stdout));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("recovery exhausted"), "{text}");
}

#[test]
fn undetected_divergence_exits_four() {
    // Without the sanitizer, a label-cell flip on the last committed
    // generation (115 = total 116 minus init; cell 24 = row 1, column 0)
    // reaches the output unseen; only the exit cross-check catches it.
    let out = gca_cc()
        .args(["path:24", "--exec", "fused", "--inject", "bitflip@115.24.0"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(4), "{}", String::from_utf8_lossy(&out.stdout));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("DIVERGED"), "{text}");
}

#[test]
fn validate_turns_the_divergence_into_a_recovery() {
    // The other direction of the exit-4 test: the same fault with the
    // sanitizer on is detected, repaired, and exits 0.
    let out = gca_cc()
        .args([
            "path:24", "--exec", "fused", "--validate", "--inject", "bitflip@115.24.0",
            "--recover", "retry:3",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("recovered"), "{text}");
}

#[test]
fn json_recovery_report_parses() {
    let out = gca_cc()
        .args([
            "path:24", "--json", "--exec", "fused", "--validate", "--inject",
            "bitflip@27.5.0", "--recover", "degrade",
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let v: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid JSON");
    assert_eq!(v["recovery"]["outcome"], "recovered");
    assert_eq!(v["recovery"]["attempts"][0]["detector"], "differential-replay");
    assert_eq!(v["diverged"], false);
}

#[test]
fn bad_fault_spec_fails_with_usage() {
    let out = gca_cc()
        .args(["path:8", "--inject", "meltdown@1"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("fault class"), "{err}");
}

#[test]
fn help_prints_usage_and_succeeds() {
    let out = gca_cc().args(["--help"]).output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("USAGE"));
    assert!(text.contains("--machine"));
}
