//! End-to-end tests of the `gca-cc` binary: spawn the real executable and
//! check its output, exit codes and file handling.

use std::io::Write;
use std::process::{Command, Stdio};

fn gca_cc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gca-cc"))
}

#[test]
fn generated_workload_summary() {
    let out = gca_cc()
        .args(["ring:8", "--machine", "gca"])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("graph: 8 nodes, 8 edges"), "{text}");
    assert!(text.contains("components: 1"), "{text}");
    assert!(text.contains("synchronous steps: 52"), "{text}"); // 1 + 3(9+8)
}

#[test]
fn all_machines_accept_the_same_input() {
    for machine in ["gca", "ncells", "lowcong", "twohand", "closure", "emu", "pram", "seq"] {
        let out = gca_cc()
            .args(["gnp:12:400:3", "--machine", machine, "--verify"])
            .output()
            .expect("spawn");
        assert!(
            out.status.success(),
            "machine {machine}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

#[test]
fn json_output_parses() {
    let out = gca_cc()
        .args(["star:6", "--json", "--labels"])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let v: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid JSON");
    assert_eq!(v["components"], 1);
    assert_eq!(v["nodes"], 6);
    assert_eq!(v["labels"], serde_json::json!([0, 0, 0, 0, 0, 0]));
}

#[test]
fn reads_edge_list_from_stdin() {
    let mut child = gca_cc()
        .args(["-", "--labels"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"n 4\n0 1\n2 3\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("components: 2"), "{text}");
    assert!(text.contains("  1 0"), "{text}");
    assert!(text.contains("  3 2"), "{text}");
}

#[test]
fn reads_edge_list_from_file() {
    let dir = std::env::temp_dir().join("gca_cli_e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("graph.txt");
    std::fs::write(&path, "# test\nn 5\n0 4\n1 2\n").unwrap();
    let out = gca_cc()
        .args([path.to_str().unwrap(), "--machine", "pram"])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("components: 3"), "{text}");
}

#[test]
fn bad_arguments_fail_with_usage() {
    let out = gca_cc().args(["--bogus"]).output().expect("spawn");
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("USAGE"), "{err}");
}

#[test]
fn missing_file_fails_cleanly() {
    let out = gca_cc()
        .args(["/definitely/not/a/file.txt"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("error:"), "{err}");
}

#[test]
fn malformed_edge_list_fails_cleanly() {
    let mut child = gca_cc()
        .args(["-"])
        .stdin(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"not an edge list\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn help_prints_usage_and_succeeds() {
    let out = gca_cc().args(["--help"]).output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("USAGE"));
    assert!(text.contains("--machine"));
}
