//! Parallel prefix (scan) on the GCA by Hillis–Steele recursive doubling.
//!
//! `⌈log₂ n⌉` generations on `n` one-handed cells: in sub-generation `s`,
//! cell `i ≥ 2^s` combines the value of cell `i − 2^s` into its own. Works
//! for any associative operation with identity (a monoid) — prefix scans
//! are the workhorse primitive of PRAM algorithmics, which is why they head
//! the "more elaborate algorithms" queue of the paper's future work.

use gca_engine::{ceil_log2, Access, CellField, Engine, FieldShape, GcaError, GcaRule, Reads, StepCtx};

/// An associative combining operation with identity.
pub trait Monoid: Sync {
    /// The element type (`PartialEq` is required of all GCA cell states so
    /// the engine can count changed cells).
    type Elem: Clone + PartialEq + Send + Sync;
    /// The identity element (`combine(identity(), x) == x`).
    fn identity(&self) -> Self::Elem;
    /// The associative operation.
    fn combine(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem;
}

/// Addition over `u64` (wrapping, so the monoid laws hold on all inputs).
#[derive(Clone, Copy, Debug, Default)]
pub struct SumMonoid;

impl Monoid for SumMonoid {
    type Elem = u64;
    fn identity(&self) -> u64 {
        0
    }
    fn combine(&self, a: &u64, b: &u64) -> u64 {
        a.wrapping_add(*b)
    }
}

/// Maximum over `u64`.
#[derive(Clone, Copy, Debug, Default)]
pub struct MaxMonoid;

impl Monoid for MaxMonoid {
    type Elem = u64;
    fn identity(&self) -> u64 {
        0
    }
    fn combine(&self, a: &u64, b: &u64) -> u64 {
        (*a).max(*b)
    }
}

/// Minimum over `u64`.
#[derive(Clone, Copy, Debug, Default)]
pub struct MinMonoid;

impl Monoid for MinMonoid {
    type Elem = u64;
    fn identity(&self) -> u64 {
        u64::MAX
    }
    fn combine(&self, a: &u64, b: &u64) -> u64 {
        (*a).min(*b)
    }
}

/// The doubling rule over a monoid.
struct ScanRule<'m, M> {
    monoid: &'m M,
}

impl<M: Monoid> GcaRule for ScanRule<'_, M> {
    type State = M::Elem;

    fn access(&self, ctx: &StepCtx, _shape: &FieldShape, index: usize, _own: &M::Elem) -> Access {
        let stride = 1usize << ctx.subgeneration;
        if index >= stride {
            Access::One(index - stride)
        } else {
            Access::None
        }
    }

    fn evolve(
        &self,
        _ctx: &StepCtx,
        _shape: &FieldShape,
        _index: usize,
        own: &M::Elem,
        reads: Reads<'_, M::Elem>,
    ) -> M::Elem {
        match reads.first() {
            Some(left) => self.monoid.combine(left, own),
            None => own.clone(),
        }
    }

    fn is_active(&self, ctx: &StepCtx, _shape: &FieldShape, index: usize, _own: &M::Elem) -> bool {
        index >= (1usize << ctx.subgeneration)
    }

    fn name(&self) -> &str {
        "prefix-scan"
    }
}

/// Generations an inclusive scan of `n` elements takes: `⌈log₂ n⌉`.
pub fn scan_generations(n: usize) -> u64 {
    u64::from(ceil_log2(n))
}

/// Inclusive prefix scan of `values` under `monoid`, on the GCA engine.
///
/// ```
/// use gca_algorithms::scan::{inclusive_scan, SumMonoid};
///
/// let sums = inclusive_scan(&[3, 1, 4, 1], &SumMonoid).unwrap();
/// assert_eq!(sums, vec![3, 4, 8, 9]);
/// ```
pub fn inclusive_scan<M: Monoid>(values: &[M::Elem], monoid: &M) -> Result<Vec<M::Elem>, GcaError> {
    if values.is_empty() {
        return Ok(Vec::new());
    }
    let shape = FieldShape::new(1, values.len())?;
    let mut field = CellField::from_states(shape, values.to_vec())?;
    let rule = ScanRule { monoid };
    let mut engine = Engine::sequential();
    for s in 0..ceil_log2(values.len()) {
        engine.step(&mut field, &rule, 0, s)?;
    }
    Ok(field.states().to_vec())
}

/// Exclusive prefix scan: element `i` receives the combination of all
/// strictly earlier elements (`identity` at position 0).
pub fn exclusive_scan<M: Monoid>(values: &[M::Elem], monoid: &M) -> Result<Vec<M::Elem>, GcaError> {
    let inclusive = inclusive_scan(values, monoid)?;
    let mut out = Vec::with_capacity(values.len());
    if !values.is_empty() {
        out.push(monoid.identity());
        out.extend_from_slice(&inclusive[..values.len() - 1]);
    }
    Ok(out)
}

/// Total reduction (the last element of the inclusive scan).
pub fn reduce<M: Monoid>(values: &[M::Elem], monoid: &M) -> Result<M::Elem, GcaError> {
    Ok(inclusive_scan(values, monoid)?
        .pop()
        .unwrap_or_else(|| monoid.identity()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inclusive_sum() {
        let xs = [3u64, 1, 4, 1, 5, 9, 2, 6];
        let scanned = inclusive_scan(&xs, &SumMonoid).unwrap();
        assert_eq!(scanned, vec![3, 4, 8, 9, 14, 23, 25, 31]);
    }

    #[test]
    fn exclusive_sum() {
        let xs = [3u64, 1, 4, 1];
        let scanned = exclusive_scan(&xs, &SumMonoid).unwrap();
        assert_eq!(scanned, vec![0, 3, 4, 8]);
    }

    #[test]
    fn max_and_min_scans() {
        let xs = [2u64, 7, 1, 8, 2, 8];
        assert_eq!(
            inclusive_scan(&xs, &MaxMonoid).unwrap(),
            vec![2, 7, 7, 8, 8, 8]
        );
        assert_eq!(
            inclusive_scan(&xs, &MinMonoid).unwrap(),
            vec![2, 2, 1, 1, 1, 1]
        );
    }

    #[test]
    fn reduce_total() {
        assert_eq!(reduce(&[1u64, 2, 3, 4], &SumMonoid).unwrap(), 10);
        assert_eq!(reduce(&[] as &[u64], &SumMonoid).unwrap(), 0);
    }

    #[test]
    fn non_power_of_two_lengths() {
        for n in [1usize, 2, 3, 5, 7, 11, 13] {
            let xs: Vec<u64> = (1..=n as u64).collect();
            let scanned = inclusive_scan(&xs, &SumMonoid).unwrap();
            let expected: Vec<u64> = (1..=n as u64).map(|k| k * (k + 1) / 2).collect();
            assert_eq!(scanned, expected, "n = {n}");
        }
    }

    #[test]
    fn empty_input() {
        assert!(inclusive_scan(&[] as &[u64], &SumMonoid).unwrap().is_empty());
        assert!(exclusive_scan(&[] as &[u64], &SumMonoid).unwrap().is_empty());
    }

    #[test]
    fn generation_count() {
        assert_eq!(scan_generations(1), 0);
        assert_eq!(scan_generations(8), 3);
        assert_eq!(scan_generations(9), 4);
    }
}
