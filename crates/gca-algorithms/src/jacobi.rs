//! Jacobi relaxation on the GCA — a "numerical algorithm", another entry
//! from the paper's list of GCA application classes.
//!
//! Solves the discrete Laplace equation on a rectangular grid with
//! Dirichlet boundary conditions (fixed-value cells): every free cell
//! relaxes to the average of its von-Neumann neighbors. As with the
//! embedded CA, the 4-neighbor stencil serializes onto the one-handed GCA
//! as 4 scan generations plus one apply generation per sweep, at
//! congestion 1.
//!
//! The synchronous double-buffered engine gives *exact* Jacobi semantics
//! (all updates see the previous sweep), as opposed to Gauss–Seidel, which
//! a sequential in-place loop would silently compute.

use gca_engine::{Access, CellField, Engine, FieldShape, GcaError, GcaRule, Reads, StepCtx};

/// One grid cell.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HeatCell {
    /// Current value.
    pub value: f64,
    /// Dirichlet cell: value never changes.
    pub fixed: bool,
    /// Neighbor-sum accumulator for the in-progress sweep.
    acc: f64,
    /// Neighbors accumulated so far.
    count: u8,
}

const OFFSETS: [(isize, isize); 4] = [(-1, 0), (1, 0), (0, -1), (0, 1)];

/// Phases of one sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u32)]
enum JacobiGen {
    /// Scan sub-generation `s`: accumulate neighbor `OFFSETS[s]`.
    Scan = 0,
    /// Free cells take the neighbor average; the accumulator resets.
    Apply = 1,
}

struct JacobiRule;

impl GcaRule for JacobiRule {
    type State = HeatCell;

    fn access(&self, ctx: &StepCtx, shape: &FieldShape, index: usize, _own: &HeatCell) -> Access {
        if ctx.phase == JacobiGen::Scan as u32 {
            let (dr, dc) = OFFSETS[ctx.subgeneration as usize];
            let r = shape.row(index) as isize + dr;
            let c = shape.col(index) as isize + dc;
            if r >= 0 && (r as usize) < shape.rows() && c >= 0 && (c as usize) < shape.cols() {
                Access::One(shape.index(r as usize, c as usize))
            } else {
                Access::None // grid edge: fewer neighbors
            }
        } else {
            Access::None
        }
    }

    fn evolve(
        &self,
        ctx: &StepCtx,
        _shape: &FieldShape,
        _index: usize,
        own: &HeatCell,
        reads: Reads<'_, HeatCell>,
    ) -> HeatCell {
        if ctx.phase == JacobiGen::Scan as u32 {
            match reads.first() {
                Some(nb) => HeatCell {
                    acc: own.acc + nb.value,
                    count: own.count + 1,
                    ..*own
                },
                None => *own,
            }
        } else {
            let value = if own.fixed || own.count == 0 {
                own.value
            } else {
                own.acc / f64::from(own.count)
            };
            HeatCell {
                value,
                fixed: own.fixed,
                acc: 0.0,
                count: 0,
            }
        }
    }

    fn is_active(&self, ctx: &StepCtx, _shape: &FieldShape, _index: usize, own: &HeatCell) -> bool {
        ctx.phase == JacobiGen::Scan as u32 || !own.fixed
    }

    fn name(&self) -> &str {
        "jacobi-relaxation"
    }
}

/// GCA generations per Jacobi sweep: 4 neighbor scans + 1 apply.
pub const GENERATIONS_PER_SWEEP: u64 = 5;

/// A heat/potential grid driven by the GCA engine.
pub struct HeatGrid {
    field: CellField<HeatCell>,
    engine: Engine,
}

impl HeatGrid {
    /// Creates a `rows × cols` grid of free cells at value 0.
    pub fn new(rows: usize, cols: usize) -> Result<Self, GcaError> {
        let shape = FieldShape::new(rows, cols)?;
        Ok(HeatGrid {
            field: CellField::new(
                shape,
                HeatCell {
                    value: 0.0,
                    fixed: false,
                    acc: 0.0,
                    count: 0,
                },
            ),
            engine: Engine::sequential(),
        })
    }

    /// Pins cell `(row, col)` to `value` (a Dirichlet boundary condition).
    pub fn set_fixed(&mut self, row: usize, col: usize, value: f64) {
        let idx = self.field.shape().index(row, col);
        self.field.set(
            idx,
            HeatCell {
                value,
                fixed: true,
                acc: 0.0,
                count: 0,
            },
        );
    }

    /// Current value at `(row, col)`.
    pub fn value(&self, row: usize, col: usize) -> f64 {
        self.field.at(row, col).value
    }

    /// Executes one synchronous Jacobi sweep (5 GCA generations).
    pub fn sweep(&mut self) -> Result<(), GcaError> {
        for s in 0..OFFSETS.len() as u32 {
            self.engine
                .step(&mut self.field, &JacobiRule, JacobiGen::Scan as u32, s)?;
        }
        self.engine
            .step(&mut self.field, &JacobiRule, JacobiGen::Apply as u32, 0)?;
        Ok(())
    }

    /// Maximum absolute difference between every free cell and the average
    /// of its neighbors (the max-norm residual of the discrete Laplacian).
    pub fn residual(&self) -> f64 {
        let shape = *self.field.shape();
        let mut worst: f64 = 0.0;
        for r in 0..shape.rows() {
            for c in 0..shape.cols() {
                let cell = self.field.at(r, c);
                if cell.fixed {
                    continue;
                }
                let mut sum = 0.0;
                let mut count = 0.0;
                for (dr, dc) in OFFSETS {
                    let nr = r as isize + dr;
                    let nc = c as isize + dc;
                    if nr >= 0
                        && (nr as usize) < shape.rows()
                        && nc >= 0
                        && (nc as usize) < shape.cols()
                    {
                        sum += self.field.at(nr as usize, nc as usize).value;
                        count += 1.0;
                    }
                }
                if count > 0.0 {
                    worst = worst.max((cell.value - sum / count).abs());
                }
            }
        }
        worst
    }

    /// Sweeps until the residual drops below `tolerance` or `max_sweeps` is
    /// reached; returns the number of sweeps executed.
    pub fn run_until(&mut self, tolerance: f64, max_sweeps: usize) -> Result<usize, GcaError> {
        for sweep in 0..max_sweeps {
            if self.residual() < tolerance {
                return Ok(sweep);
            }
            self.sweep()?;
        }
        Ok(max_sweeps)
    }

    /// GCA generations executed so far.
    pub fn generations(&self) -> u64 {
        self.engine.generation()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strip_converges_to_linear_ramp() {
        // A 1×7 strip with ends pinned at 0 and 6 relaxes to 0,1,2,…,6.
        let mut grid = HeatGrid::new(1, 7).unwrap();
        grid.set_fixed(0, 0, 0.0);
        grid.set_fixed(0, 6, 6.0);
        let sweeps = grid.run_until(1e-9, 10_000).unwrap();
        assert!(sweeps < 10_000, "did not converge");
        for c in 0..7 {
            assert!(
                (grid.value(0, c) - c as f64).abs() < 1e-6,
                "cell {c}: {}",
                grid.value(0, c)
            );
        }
    }

    #[test]
    fn constant_boundary_gives_constant_interior() {
        let mut grid = HeatGrid::new(5, 5).unwrap();
        for i in 0..5 {
            grid.set_fixed(0, i, 3.0);
            grid.set_fixed(4, i, 3.0);
            grid.set_fixed(i, 0, 3.0);
            grid.set_fixed(i, 4, 3.0);
        }
        grid.run_until(1e-10, 10_000).unwrap();
        for r in 1..4 {
            for c in 1..4 {
                assert!((grid.value(r, c) - 3.0).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn symmetric_boundary_gives_symmetric_solution() {
        // Hot left edge, cold right edge: solution symmetric under
        // vertical mirror of the rows.
        let mut grid = HeatGrid::new(5, 6).unwrap();
        for r in 0..5 {
            grid.set_fixed(r, 0, 1.0);
            grid.set_fixed(r, 5, 0.0);
        }
        grid.run_until(1e-10, 20_000).unwrap();
        for r in 0..5 {
            for c in 0..6 {
                assert!(
                    (grid.value(r, c) - grid.value(4 - r, c)).abs() < 1e-7,
                    "asymmetry at ({r}, {c})"
                );
            }
        }
    }

    #[test]
    fn residual_decreases() {
        let mut grid = HeatGrid::new(4, 4).unwrap();
        grid.set_fixed(0, 0, 10.0);
        let initial = grid.residual();
        for _ in 0..50 {
            grid.sweep().unwrap();
        }
        assert!(grid.residual() < initial / 10.0);
    }

    #[test]
    fn generation_accounting() {
        let mut grid = HeatGrid::new(3, 3).unwrap();
        grid.sweep().unwrap();
        grid.sweep().unwrap();
        assert_eq!(grid.generations(), 2 * GENERATIONS_PER_SWEEP);
    }

    #[test]
    fn all_fixed_grid_is_stable() {
        let mut grid = HeatGrid::new(2, 2).unwrap();
        for r in 0..2 {
            for c in 0..2 {
                grid.set_fixed(r, c, f64::from(r as u8) + 10.0);
            }
        }
        grid.sweep().unwrap();
        assert_eq!(grid.value(0, 0), 10.0);
        assert_eq!(grid.value(1, 1), 11.0);
        assert_eq!(grid.residual(), 0.0);
    }
}
