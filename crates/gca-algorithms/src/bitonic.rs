//! Bitonic sorting on the GCA — a "hypercube algorithm", one of the
//! application classes the paper's introduction lists for the model.
//!
//! Batcher's bitonic network maps perfectly onto a one-handed GCA: in the
//! compare-exchange step with distance `j`, cell `i` reads its partner
//! `i ⊕ j` — an involution, so every cell is read exactly once (congestion
//! one) — and keeps the minimum or maximum according to its position in
//! the network. `L·(L+1)/2` generations (with `L = ⌈log₂ N⌉`) sort `N`
//! keys on `N` cells.
//!
//! Inputs of arbitrary length are padded to the next power of two with
//! `u64::MAX` sentinels, which sort to the tail and are stripped off.

use gca_engine::{
    ceil_log2, Access, CellField, Engine, FieldShape, GcaError, GcaRule, Reads, StepCtx,
};

/// One compare-exchange wave of the bitonic network.
///
/// `phase` carries the *stage size* `k`, `subgeneration` carries the
/// compare distance `j` (both as exponents, so they fit the `u32` tags).
struct BitonicRule;

impl GcaRule for BitonicRule {
    type State = u64;

    fn access(&self, ctx: &StepCtx, _shape: &FieldShape, index: usize, _own: &u64) -> Access {
        let j = 1usize << ctx.subgeneration;
        Access::One(index ^ j)
    }

    fn evolve(
        &self,
        ctx: &StepCtx,
        _shape: &FieldShape,
        index: usize,
        own: &u64,
        reads: Reads<'_, u64>,
    ) -> u64 {
        let k = 1usize << ctx.phase;
        let j = 1usize << ctx.subgeneration;
        let partner = index ^ j;
        let other = *reads.expect_first("bitonic");
        let ascending = index & k == 0;
        let keep_smaller = (index < partner) == ascending;
        if keep_smaller {
            (*own).min(other)
        } else {
            (*own).max(other)
        }
    }

    fn name(&self) -> &str {
        "bitonic-sort"
    }
}

/// Generations the network needs for `n` keys:
/// `L·(L+1)/2` with `L = ⌈log₂ n⌉`.
pub fn sort_generations(n: usize) -> u64 {
    let l = u64::from(ceil_log2(n));
    l * (l + 1) / 2
}

/// Sorts `values` ascending on the GCA.
///
/// ```
/// let sorted = gca_algorithms::bitonic::sort(&[9, 2, 7, 2, 5]).unwrap();
/// assert_eq!(sorted, vec![2, 2, 5, 7, 9]);
/// ```
pub fn sort(values: &[u64]) -> Result<Vec<u64>, GcaError> {
    if values.len() <= 1 {
        return Ok(values.to_vec());
    }
    let n = values.len();
    let padded = n.next_power_of_two();
    let shape = FieldShape::new(1, padded)?;
    let mut states = values.to_vec();
    states.resize(padded, u64::MAX);
    let mut field = CellField::from_states(shape, states)?;
    let mut engine = Engine::sequential();

    let stages = ceil_log2(padded);
    for k in 1..=stages {
        // Stage k merges bitonic runs of length 2^k; distances descend.
        for j in (0..k).rev() {
            engine.step(&mut field, &BitonicRule, k, j)?;
        }
    }

    let mut out = field.states().to_vec();
    out.truncate(n);
    Ok(out)
}

/// Validation helper: is `values` sorted ascending?
pub fn is_sorted(values: &[u64]) -> bool {
    values.windows(2).all(|w| w[0] <= w[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(input: &[u64]) {
        let sorted = sort(input).unwrap();
        let mut expected = input.to_vec();
        expected.sort_unstable();
        assert_eq!(sorted, expected, "input {input:?}");
    }

    #[test]
    fn sorts_small_arrays() {
        check(&[]);
        check(&[5]);
        check(&[2, 1]);
        check(&[3, 1, 4, 1, 5, 9, 2, 6]);
        check(&[8, 7, 6, 5, 4, 3, 2, 1]);
        check(&[1, 1, 1, 1]);
    }

    #[test]
    fn sorts_non_power_of_two_lengths() {
        for n in [3usize, 5, 6, 7, 9, 13, 17, 100] {
            let input: Vec<u64> = (0..n as u64).map(|i| (i * 2654435761) % 97).collect();
            check(&input);
        }
    }

    #[test]
    fn sorts_with_max_sentinels_present() {
        // The padding value may legitimately occur in the input.
        check(&[u64::MAX, 0, u64::MAX, 42]);
    }

    #[test]
    fn deterministic_pseudorandom_inputs() {
        let mut x = 0x243F_6A88_85A3_08D3u64;
        let input: Vec<u64> = (0..64)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            })
            .collect();
        check(&input);
    }

    #[test]
    fn generation_count_formula() {
        assert_eq!(sort_generations(1), 0);
        assert_eq!(sort_generations(2), 1);
        assert_eq!(sort_generations(8), 6);
        assert_eq!(sort_generations(16), 10);
        // Non-powers pad up.
        assert_eq!(sort_generations(9), sort_generations(16));
    }

    #[test]
    fn is_sorted_helper() {
        assert!(is_sorted(&[]));
        assert!(is_sorted(&[1, 2, 2, 3]));
        assert!(!is_sorted(&[2, 1]));
    }
}
