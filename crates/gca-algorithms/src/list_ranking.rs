//! List ranking on the GCA by pointer jumping.
//!
//! The primitive behind the connected-components algorithm's generation 10,
//! packaged as a standalone tool: given a linked list (each node knows its
//! successor; the tail points at itself), compute every node's distance to
//! the tail in `⌈log₂ n⌉` generations. Pointers here are *data-dependent*
//! (extended cells), with the same worst-case congestion profile as the
//! paper's jump generations.

use gca_engine::{ceil_log2, Access, CellField, Engine, FieldShape, GcaError, GcaRule, Reads, StepCtx};

/// A list cell: successor pointer and accumulated rank.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ListCell {
    /// Successor index (self at the tail).
    pub next: usize,
    /// Hops to the tail accumulated so far.
    pub rank: u64,
}

/// Errors of the list-ranking front end.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ListError {
    /// A successor pointed outside the list.
    SuccessorOutOfRange {
        /// The offending node.
        node: usize,
        /// Its successor.
        next: usize,
        /// List length.
        len: usize,
    },
    /// No tail (self-loop) exists, or a cycle was detected.
    NotATailedList,
    /// The engine failed (bad pointer — cannot happen for validated input).
    Engine(GcaError),
}

impl std::fmt::Display for ListError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ListError::SuccessorOutOfRange { node, next, len } => {
                write!(f, "node {node} points at {next}, outside list of length {len}")
            }
            ListError::NotATailedList => {
                write!(f, "input is not a forest of tail-terminated lists")
            }
            ListError::Engine(e) => write!(f, "engine failure: {e}"),
        }
    }
}

impl std::error::Error for ListError {}

/// The pointer-jumping rule.
struct JumpRule;

impl GcaRule for JumpRule {
    type State = ListCell;

    fn access(&self, _ctx: &StepCtx, _shape: &FieldShape, index: usize, own: &ListCell) -> Access {
        if own.next == index {
            Access::None
        } else {
            Access::One(own.next)
        }
    }

    fn evolve(
        &self,
        _ctx: &StepCtx,
        _shape: &FieldShape,
        _index: usize,
        own: &ListCell,
        reads: Reads<'_, ListCell>,
    ) -> ListCell {
        match reads.first() {
            Some(succ) => ListCell {
                next: succ.next,
                rank: own.rank + succ.rank,
            },
            None => *own,
        }
    }

    fn is_active(&self, _ctx: &StepCtx, _shape: &FieldShape, index: usize, own: &ListCell) -> bool {
        own.next != index
    }

    fn name(&self) -> &str {
        "list-ranking"
    }
}

/// Validates that `successors` encodes a forest of tail-terminated lists
/// (every walk reaches a self-loop; no proper cycles).
fn validate(successors: &[usize]) -> Result<(), ListError> {
    let n = successors.len();
    for (node, &next) in successors.iter().enumerate() {
        if next >= n {
            return Err(ListError::SuccessorOutOfRange { node, next, len: n });
        }
    }
    // Walk each node at most n steps; a proper cycle never self-loops.
    for start in 0..n {
        let mut x = start;
        for _ in 0..=n {
            if successors[x] == x {
                break;
            }
            x = successors[x];
        }
        if successors[x] != x {
            return Err(ListError::NotATailedList);
        }
    }
    Ok(())
}

/// Generations list ranking takes: `⌈log₂ n⌉`.
pub fn ranking_generations(n: usize) -> u64 {
    u64::from(ceil_log2(n))
}

/// Ranks every node of the list forest: returns `rank[v]` = number of hops
/// from `v` to its tail.
///
/// ```
/// // The list 0 -> 1 -> 2, with 2 as the tail.
/// let ranks = gca_algorithms::list_ranking::rank_list(&[1, 2, 2]).unwrap();
/// assert_eq!(ranks, vec![2, 1, 0]);
/// ```
pub fn rank_list(successors: &[usize]) -> Result<Vec<u64>, ListError> {
    validate(successors)?;
    let n = successors.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    let shape = FieldShape::new(1, n).map_err(ListError::Engine)?;
    let mut field = CellField::from_states(
        shape,
        successors
            .iter()
            .enumerate()
            .map(|(i, &next)| ListCell {
                next,
                rank: u64::from(next != i),
            })
            .collect(),
    )
    .map_err(ListError::Engine)?;
    let mut engine = Engine::sequential();
    for s in 0..ceil_log2(n) {
        engine
            .step(&mut field, &JumpRule, 0, s)
            .map_err(ListError::Engine)?;
    }
    Ok(field.states().iter().map(|c| c.rank).collect())
}

/// Sequential baseline: walk each node to the tail.
pub fn rank_list_sequential(successors: &[usize]) -> Result<Vec<u64>, ListError> {
    validate(successors)?;
    let n = successors.len();
    let ranks = (0..n)
        .map(|start| {
            let mut x = start;
            let mut hops = 0;
            while successors[x] != x {
                x = successors[x];
                hops += 1;
            }
            hops
        })
        .collect();
    Ok(ranks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_list() {
        // 0 -> 1 -> 2 -> 3 (tail).
        let succ = [1usize, 2, 3, 3];
        assert_eq!(rank_list(&succ).unwrap(), vec![3, 2, 1, 0]);
    }

    #[test]
    fn scrambled_list() {
        // 2 -> 0 -> 3 -> 1 -> 4 (tail).
        let succ = [3usize, 4, 0, 1, 4];
        let parallel = rank_list(&succ).unwrap();
        assert_eq!(parallel, rank_list_sequential(&succ).unwrap());
        assert_eq!(parallel, vec![3, 1, 4, 2, 0]);
    }

    #[test]
    fn forest_of_lists() {
        // Two lists: 0 -> 1 (tail); 3 -> 2 (tail); 4 alone.
        let succ = [1usize, 1, 2, 2, 4];
        assert_eq!(rank_list(&succ).unwrap(), vec![1, 0, 0, 1, 0]);
    }

    #[test]
    fn single_and_empty() {
        assert_eq!(rank_list(&[0usize]).unwrap(), vec![0]);
        assert_eq!(rank_list(&[]).unwrap(), Vec::<u64>::new());
    }

    #[test]
    fn long_lists_match_sequential() {
        for n in [5usize, 16, 31, 64] {
            // A list threaded through the indices by a stride co-prime to n.
            let succ: Vec<usize> = (0..n)
                .map(|i| if i == n - 1 { i } else { i + 1 })
                .collect();
            assert_eq!(
                rank_list(&succ).unwrap(),
                rank_list_sequential(&succ).unwrap(),
                "n = {n}"
            );
        }
    }

    #[test]
    fn rejects_out_of_range() {
        let err = rank_list(&[5usize, 1]).unwrap_err();
        assert!(matches!(err, ListError::SuccessorOutOfRange { node: 0, next: 5, .. }));
    }

    #[test]
    fn rejects_cycles() {
        // 0 -> 1 -> 0 is a proper cycle with no tail.
        let err = rank_list(&[1usize, 0]).unwrap_err();
        assert_eq!(err, ListError::NotATailedList);
    }

    #[test]
    fn generation_count() {
        assert_eq!(ranking_generations(1), 0);
        assert_eq!(ranking_generations(16), 4);
        assert_eq!(ranking_generations(17), 5);
    }

    #[test]
    fn error_display() {
        assert!(ListError::NotATailedList.to_string().contains("tail"));
        assert!(ListError::SuccessorOutOfRange { node: 1, next: 9, len: 3 }
            .to_string()
            .contains("outside"));
    }
}
