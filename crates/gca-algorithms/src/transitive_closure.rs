//! Transitive closure on the GCA by repeated boolean matrix squaring —
//! Hirschberg's companion problem (STOC '76 treats the transitive closure
//! and the connected-components problem together).
//!
//! The field is the `n × n` reachability matrix itself: cell `(i, j)` holds
//! the bit `B(i, j)` ("j reachable from i"), seeded with `A ∨ I`. One
//! squaring pass folds `B ← B ∨ B·B` with a **systolic inner product**: in
//! sub-generation `s`, cell `(i, j)` picks the pivot `k = (i + j + s) mod n`
//! and reads `B(i, k)` and `B(k, j)` with its two hands. The skew makes the
//! reader→target maps of both hands injective, so congestion stays ≤ 2 —
//! the same trick as the paper's rotated replication, applied to a
//! quadratic access pattern. `⌈log₂ n⌉` passes cover all path lengths;
//! updates are monotone, so in-pass propagation only accelerates
//! convergence and never breaks soundness.
//!
//! A final `1 + ⌈log₂ n⌉` generations extract connected components from the
//! closure (`label(i) = min { j | B(i, j) }`, a row-min tree reduction),
//! giving an independent `O(n log n)`-generation CC machine to cross-check
//! the paper's `O(log² n)` one.

use gca_engine::{
    ceil_log2, Access, CellField, Engine, FieldShape, GcaError, GcaRule, Reads, StepCtx, Word,
    INFINITY,
};
use gca_graphs::{AdjacencyMatrix, GraphError, Labeling};

/// One reachability cell: the closure bit and the label scratch word.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TcCell {
    /// Reachability bit `B(row, col)`.
    pub b: bool,
    /// Scratch for the label extraction (a column index or `∞`).
    pub d: Word,
}

/// Phases of the transitive-closure machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u32)]
pub enum TcGen {
    /// Systolic squaring sub-generation (`n` sub-generations per pass).
    Square = 0,
    /// `d ← col` where `B` is set, else `∞` (no reads).
    LabelInit = 1,
    /// Row-min tree reduction of `d` (`⌈log₂ n⌉` sub-generations).
    LabelReduce = 2,
}

/// The uniform rule of the closure machine.
#[derive(Clone, Copy, Debug)]
pub struct TcRule {
    n: usize,
}

impl TcRule {
    /// Rule for an `n × n` reachability field.
    pub fn new(n: usize) -> Self {
        TcRule { n }
    }

    #[inline]
    fn reduces(&self, col: usize, s: u32) -> bool {
        let stride = 1usize << s;
        col.is_multiple_of(stride << 1) && col + stride < self.n
    }
}

impl GcaRule for TcRule {
    type State = TcCell;

    fn access(&self, ctx: &StepCtx, shape: &FieldShape, index: usize, _own: &TcCell) -> Access {
        let n = self.n;
        let row = shape.row(index);
        let col = shape.col(index);
        match ctx.phase {
            p if p == TcGen::Square as u32 => {
                let k = (row + col + ctx.subgeneration as usize) % n;
                Access::Two(row * n + k, k * n + col)
            }
            p if p == TcGen::LabelInit as u32 => Access::None,
            p if p == TcGen::LabelReduce as u32 => {
                if self.reduces(col, ctx.subgeneration) {
                    Access::One(index + (1 << ctx.subgeneration))
                } else {
                    Access::None
                }
            }
            other => panic!("invalid transitive-closure phase {other}"),
        }
    }

    fn evolve(
        &self,
        ctx: &StepCtx,
        shape: &FieldShape,
        index: usize,
        own: &TcCell,
        reads: Reads<'_, TcCell>,
    ) -> TcCell {
        match ctx.phase {
            p if p == TcGen::Square as u32 => {
                // A missing hand never witnesses a path: the `via` term
                // simply contributes nothing, matching the Boolean
                // semiring (absent operand = additive identity).
                let via = reads.first().is_some_and(|c| c.b) && reads.second().is_some_and(|c| c.b);
                TcCell {
                    b: own.b || via,
                    d: own.d,
                }
            }
            p if p == TcGen::LabelInit as u32 => TcCell {
                b: own.b,
                d: if own.b {
                    shape.col(index) as Word
                } else {
                    INFINITY
                },
            },
            p if p == TcGen::LabelReduce as u32 => match reads.first() {
                Some(right) => TcCell {
                    b: own.b,
                    d: own.d.min(right.d),
                },
                None => *own,
            },
            other => panic!("invalid transitive-closure phase {other}"),
        }
    }

    fn is_active(&self, ctx: &StepCtx, shape: &FieldShape, index: usize, _own: &TcCell) -> bool {
        match ctx.phase {
            p if p == TcGen::LabelReduce as u32 => {
                self.reduces(shape.col(index), ctx.subgeneration)
            }
            _ => true,
        }
    }

    fn name(&self) -> &str {
        "transitive-closure"
    }
}

/// The boolean closure matrix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Reachability {
    n: usize,
    bits: Vec<bool>,
}

impl Reachability {
    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Is `v` reachable from `u` (reflexively)?
    #[inline]
    pub fn reaches(&self, u: usize, v: usize) -> bool {
        self.bits[u * self.n + v]
    }

    /// Number of reachable pairs (including the diagonal).
    pub fn pair_count(&self) -> usize {
        self.bits.iter().filter(|&&b| b).count()
    }
}

/// Result of a closure run.
#[derive(Clone, Debug)]
pub struct TcRun {
    /// The computed closure.
    pub closure: Reachability,
    /// Connected-component labels derived from the closure.
    pub labels: Labeling,
    /// Total generations executed.
    pub generations: u64,
    /// Worst congestion observed (≤ 2 by the systolic schedule, plus the
    /// δ = 1 reduction).
    pub max_congestion: u32,
}

/// Generations of the closure machine:
/// `n·⌈log₂ n⌉` squaring + `1 + ⌈log₂ n⌉` label extraction.
pub fn total_generations(n: usize) -> u64 {
    let l = u64::from(ceil_log2(n));
    (n as u64) * l + 1 + l
}

/// Runs the transitive-closure machine on (the symmetric closure of)
/// `graph`.
///
/// ```
/// use gca_graphs::generators;
///
/// let tc = gca_algorithms::transitive_closure::run(&generators::path(4)).unwrap();
/// assert!(tc.closure.reaches(0, 3));
/// assert_eq!(tc.labels.as_slice(), &[0, 0, 0, 0]);
/// ```
pub fn run(graph: &AdjacencyMatrix) -> Result<TcRun, GcaError> {
    let n = graph.n();
    if n == 0 {
        return Ok(TcRun {
            closure: Reachability { n: 0, bits: vec![] },
            labels: Labeling::empty(),
            generations: 0,
            max_congestion: 0,
        });
    }
    let shape = FieldShape::new(n, n)?;
    let mut field = CellField::from_fn(shape, |index| {
        let (row, col) = (shape.row(index), shape.col(index));
        TcCell {
            b: row == col || graph.has_edge(row, col),
            d: 0,
        }
    });
    let rule = TcRule::new(n);
    let mut engine = Engine::sequential();
    let mut max_congestion = 0u32;

    let l = ceil_log2(n);
    for _pass in 0..l {
        for s in 0..n as u32 {
            let rep = engine.step(&mut field, &rule, TcGen::Square as u32, s)?;
            max_congestion = max_congestion.max(rep.max_congestion());
        }
    }
    let rep = engine.step(&mut field, &rule, TcGen::LabelInit as u32, 0)?;
    max_congestion = max_congestion.max(rep.max_congestion());
    for s in 0..l {
        let rep = engine.step(&mut field, &rule, TcGen::LabelReduce as u32, s)?;
        max_congestion = max_congestion.max(rep.max_congestion());
    }

    let bits: Vec<bool> = field.states().iter().map(|c| c.b).collect();
    // The rule writes column indices into `d`, so the range check can
    // only fail if the machine's final state is corrupt — surface that
    // as a typed error rather than a panic.
    let labels = Labeling::new(
        (0..n)
            .map(|i| field.get(i * n).d as usize)
            .collect(),
    )
    .map_err(|e| match e {
        GraphError::NodeOutOfRange { node, n } => GcaError::BadLabel { label: node, n },
        _ => GcaError::BadLabel { label: usize::MAX, n },
    })?;
    Ok(TcRun {
        closure: Reachability { n, bits },
        labels,
        generations: engine.generation(),
        max_congestion,
    })
}

/// Connected components via the transitive closure (one-call API).
pub fn connected_components(graph: &AdjacencyMatrix) -> Result<Labeling, GcaError> {
    Ok(run(graph)?.labels)
}

/// Sequential Warshall baseline for the closure (reflexive).
pub fn warshall(graph: &AdjacencyMatrix) -> Reachability {
    let n = graph.n();
    let mut bits = vec![false; n * n];
    for i in 0..n {
        for j in 0..n {
            bits[i * n + j] = i == j || graph.has_edge(i, j);
        }
    }
    for k in 0..n {
        for i in 0..n {
            if bits[i * n + k] {
                for j in 0..n {
                    if bits[k * n + j] {
                        bits[i * n + j] = true;
                    }
                }
            }
        }
    }
    Reachability { n, bits }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gca_graphs::connectivity::union_find_components_dense;
    use gca_graphs::{generators, GraphBuilder};

    fn check(graph: &AdjacencyMatrix) {
        let run = run(graph).unwrap();
        assert_eq!(run.closure, warshall(graph), "closure mismatch");
        let expected = union_find_components_dense(graph);
        assert_eq!(run.labels.as_slice(), expected.as_slice(), "label mismatch");
    }

    #[test]
    fn basic_graphs() {
        check(&GraphBuilder::new(2).edge(0, 1).build().unwrap());
        check(&generators::path(6));
        check(&generators::ring(7));
        check(&generators::star(5));
        check(&generators::complete(5));
        check(&generators::empty(4));
    }

    #[test]
    fn random_graphs() {
        for seed in 0..6 {
            check(&generators::gnp(13, 0.2, seed));
        }
    }

    #[test]
    fn long_paths_need_all_passes() {
        // A path of length n-1 is the worst case for squaring depth.
        for n in [9usize, 16, 17] {
            check(&generators::path(n));
        }
    }

    #[test]
    fn closure_properties() {
        let g = generators::gnp(10, 0.25, 3);
        let r = run(&g).unwrap();
        for i in 0..10 {
            assert!(r.closure.reaches(i, i), "reflexive");
            for j in 0..10 {
                assert_eq!(
                    r.closure.reaches(i, j),
                    r.closure.reaches(j, i),
                    "symmetric for undirected inputs"
                );
            }
        }
    }

    #[test]
    fn generation_count_matches_formula() {
        for n in [2usize, 4, 7, 16] {
            let g = generators::gnp(n, 0.4, 5);
            let r = run(&g).unwrap();
            assert_eq!(r.generations, total_generations(n), "n = {n}");
        }
    }

    #[test]
    fn systolic_congestion_at_most_two() {
        for n in [4usize, 8, 13] {
            let g = generators::gnp(n, 0.5, 2);
            let r = run(&g).unwrap();
            assert!(
                r.max_congestion <= 2,
                "n = {n}: congestion {}",
                r.max_congestion
            );
        }
    }

    #[test]
    fn matches_hirschberg_machine() {
        for seed in 0..4 {
            let g = generators::gnp(11, 0.25, seed);
            let via_tc = connected_components(&g).unwrap();
            let via_hirschberg = gca_hirschberg::connected_components(&g).unwrap();
            assert_eq!(via_tc, via_hirschberg, "seed {seed}");
        }
    }

    #[test]
    fn trivial_sizes() {
        assert_eq!(run(&generators::empty(0)).unwrap().generations, 0);
        let r = run(&generators::empty(1)).unwrap();
        assert_eq!(r.labels.as_slice(), &[0]);
        assert_eq!(r.generations, 1);
        assert!(r.closure.reaches(0, 0));
    }

    #[test]
    fn pair_count() {
        let r = run(&generators::clique_islands(2, 3)).unwrap();
        // Two cliques of 3: each contributes 9 reachable pairs.
        assert_eq!(r.closure.pair_count(), 18);
    }
}
