//! Classical cellular automata as a special case of the GCA.
//!
//! The paper (Section 1): the GCA *"is a generalisation of the CA model"* —
//! fixed local neighborhoods are just global pointers that never move. A
//! `k`-neighbor CA maps onto a **one-handed** GCA by serializing the
//! neighborhood scan over `k` generations (one neighbor per generation,
//! accumulating into the cell state) plus one apply generation — the same
//! scan idiom as the `n`-cell Hirschberg variant.
//!
//! The demonstration automaton is Conway's Game of Life on a torus: 8 scan
//! generations + 1 apply generation per CA step, congestion exactly 1
//! (every cell reads one fixed neighbor per generation).

use gca_engine::{Access, CellField, Engine, FieldShape, GcaError, GcaRule, Reads, StepCtx};

/// One Life cell: liveness plus the in-progress neighbor count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LifeCell {
    /// Alive in the current CA step.
    pub alive: bool,
    /// Neighbors counted so far in the current scan.
    pub count: u8,
}

/// The 8 Moore-neighborhood offsets, scanned one per generation.
const OFFSETS: [(isize, isize); 8] = [
    (-1, -1),
    (-1, 0),
    (-1, 1),
    (0, -1),
    (0, 1),
    (1, -1),
    (1, 0),
    (1, 1),
];

/// Phases of one CA step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u32)]
enum LifeGen {
    /// Scan sub-generation `s`: add neighbor `OFFSETS[s]` to `count`.
    Scan = 0,
    /// Apply the B3/S23 rule and reset the counter.
    Apply = 1,
}

/// The uniform Life rule (torus wrap-around).
struct LifeRule;

impl GcaRule for LifeRule {
    type State = LifeCell;

    fn access(&self, ctx: &StepCtx, shape: &FieldShape, index: usize, _own: &LifeCell) -> Access {
        if ctx.phase == LifeGen::Scan as u32 {
            let (dr, dc) = OFFSETS[ctx.subgeneration as usize];
            let rows = shape.rows() as isize;
            let cols = shape.cols() as isize;
            let r = (shape.row(index) as isize + dr).rem_euclid(rows) as usize;
            let c = (shape.col(index) as isize + dc).rem_euclid(cols) as usize;
            Access::One(shape.index(r, c))
        } else {
            Access::None
        }
    }

    fn evolve(
        &self,
        ctx: &StepCtx,
        _shape: &FieldShape,
        _index: usize,
        own: &LifeCell,
        reads: Reads<'_, LifeCell>,
    ) -> LifeCell {
        if ctx.phase == LifeGen::Scan as u32 {
            let neighbor = reads.expect_first("life-scan");
            LifeCell {
                alive: own.alive,
                count: own.count + u8::from(neighbor.alive),
            }
        } else {
            LifeCell {
                alive: matches!((own.alive, own.count), (true, 2) | (true, 3) | (false, 3)),
                count: 0,
            }
        }
    }

    fn name(&self) -> &str {
        "game-of-life"
    }
}

/// A Game-of-Life board driven by the GCA engine.
pub struct Life {
    field: CellField<LifeCell>,
    engine: Engine,
}

impl Life {
    /// Creates a `rows × cols` torus with the given live cells.
    pub fn new(rows: usize, cols: usize, live: &[(usize, usize)]) -> Result<Self, GcaError> {
        let shape = FieldShape::new(rows, cols)?;
        let mut field = CellField::new(
            shape,
            LifeCell {
                alive: false,
                count: 0,
            },
        );
        for &(r, c) in live {
            let idx = shape.index(r, c);
            field.set(
                idx,
                LifeCell {
                    alive: true,
                    count: 0,
                },
            );
        }
        Ok(Life {
            field,
            engine: Engine::sequential(),
        })
    }

    /// Parses a board from rows of `.` (dead) and `#` (alive).
    pub fn from_ascii(rows: &[&str]) -> Result<Self, GcaError> {
        let r = rows.len();
        let c = rows.first().map_or(0, |s| s.len());
        let mut live = Vec::new();
        for (ri, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), c, "ragged board row {ri}");
            for (ci, ch) in row.bytes().enumerate() {
                if ch == b'#' {
                    live.push((ri, ci));
                }
            }
        }
        Life::new(r, c, &live)
    }

    /// Advances one CA step (9 GCA generations).
    pub fn step(&mut self) -> Result<(), GcaError> {
        for s in 0..OFFSETS.len() as u32 {
            self.engine
                .step(&mut self.field, &LifeRule, LifeGen::Scan as u32, s)?;
        }
        self.engine
            .step(&mut self.field, &LifeRule, LifeGen::Apply as u32, 0)?;
        Ok(())
    }

    /// Advances `steps` CA steps.
    pub fn run(&mut self, steps: usize) -> Result<(), GcaError> {
        for _ in 0..steps {
            self.step()?;
        }
        Ok(())
    }

    /// Is the cell at `(row, col)` alive?
    pub fn alive(&self, row: usize, col: usize) -> bool {
        self.field.at(row, col).alive
    }

    /// Number of live cells.
    pub fn population(&self) -> usize {
        self.field.states().iter().filter(|c| c.alive).count()
    }

    /// GCA generations executed so far (9 per CA step).
    pub fn generations(&self) -> u64 {
        self.engine.generation()
    }

    /// Renders the board as `.`/`#` rows.
    pub fn to_ascii(&self) -> Vec<String> {
        let shape = *self.field.shape();
        (0..shape.rows())
            .map(|r| {
                (0..shape.cols())
                    .map(|c| if self.alive(r, c) { '#' } else { '.' })
                    .collect()
            })
            .collect()
    }
}

/// GCA generations per CA step: 8 neighbor scans + 1 apply.
pub const GENERATIONS_PER_STEP: u64 = 9;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_is_still() {
        let mut life = Life::from_ascii(&["....", ".##.", ".##.", "...."]).unwrap();
        let before = life.to_ascii();
        life.run(3).unwrap();
        assert_eq!(life.to_ascii(), before);
        assert_eq!(life.population(), 4);
    }

    #[test]
    fn blinker_oscillates() {
        let mut life = Life::from_ascii(&[".....", "..#..", "..#..", "..#..", "....."]).unwrap();
        life.step().unwrap();
        assert_eq!(
            life.to_ascii(),
            vec![".....", ".....", ".###.", ".....", "....."]
        );
        life.step().unwrap();
        assert_eq!(
            life.to_ascii(),
            vec![".....", "..#..", "..#..", "..#..", "....."]
        );
    }

    #[test]
    fn glider_translates() {
        // A glider moves one cell diagonally every 4 steps (on a large
        // enough torus).
        let mut life = Life::from_ascii(&[
            ".#........",
            "..#.......",
            "###.......",
            "..........",
            "..........",
            "..........",
            "..........",
            "..........",
            "..........",
            "..........",
        ])
        .unwrap();
        let before = life.to_ascii();
        life.run(4).unwrap();
        // Shift the original pattern down-right by one and compare.
        let shifted: Vec<String> = (0..10)
            .map(|r| {
                (0..10)
                    .map(|c| {
                        let src_r = (r + 10 - 1) % 10;
                        let src_c = (c + 10 - 1) % 10;
                        before[src_r].as_bytes()[src_c] as char
                    })
                    .collect()
            })
            .collect();
        assert_eq!(life.to_ascii(), shifted);
        assert_eq!(life.population(), 5);
    }

    #[test]
    fn lonely_cell_dies_and_empty_stays_empty() {
        let mut life = Life::from_ascii(&["...", ".#.", "..."]).unwrap();
        life.step().unwrap();
        assert_eq!(life.population(), 0);
        life.step().unwrap();
        assert_eq!(life.population(), 0);
    }

    #[test]
    fn torus_wraparound() {
        // A blinker crossing the edge must wrap.
        let mut life = Life::new(3, 3, &[(0, 1), (1, 1), (2, 1)]).unwrap();
        life.step().unwrap();
        // On a 3×3 torus every cell has the whole column as neighbors; the
        // vertical triple becomes a horizontal one through row 1.
        assert!(life.alive(1, 0) && life.alive(1, 1) && life.alive(1, 2));
    }

    #[test]
    fn generations_accounting() {
        let mut life = Life::new(4, 4, &[]).unwrap();
        life.run(3).unwrap();
        assert_eq!(life.generations(), 3 * GENERATIONS_PER_STEP);
    }
}
