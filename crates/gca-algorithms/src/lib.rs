//! More elaborate PRAM algorithms mapped onto the GCA — the paper's stated
//! future work (*"Our future work will comprise the implementation of more
//! elaborate PRAM algorithms"*), realized on the same engine as the
//! connected-components machine.
//!
//! * [`transitive_closure`] — Hirschberg's companion problem from the same
//!   STOC '76 paper: boolean transitive closure by repeated matrix
//!   squaring, on an `n × n` cell field with **two-handed** cells and a
//!   skewed (systolic) inner-product schedule that keeps congestion at 1.
//!   Includes connected components *via* the closure as a cross-check
//!   against the main machine.
//! * [`scan`] — parallel prefix (Hillis–Steele doubling) over any monoid,
//!   `⌈log₂ n⌉` generations on `n` cells.
//! * [`list_ranking`] — pointer jumping over linked lists, the primitive
//!   behind the algorithm's generation 10, as a standalone tool.
//! * [`bitonic`] — Batcher's bitonic sorting network, a "hypercube
//!   algorithm" from the paper's application list; congestion-1
//!   compare-exchange waves.
//! * [`cellular`] — the CA ⊂ GCA embedding: a k-neighbor classical CA
//!   (Game of Life) run as k+1 one-handed GCA generations per step.
//! * [`jacobi`] — a "numerical algorithm" from the same list: synchronous
//!   Jacobi relaxation of the discrete Laplace equation.
//!
//! Each module carries its own closed-form generation counts and verifies
//! against a sequential baseline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitonic;
pub mod cellular;
pub mod jacobi;
pub mod list_ranking;
pub mod scan;
pub mod transitive_closure;
