//! Property-based tests for the algorithm library.

use gca_algorithms::{bitonic, list_ranking, scan, transitive_closure};
use gca_graphs::AdjacencyMatrix;
use proptest::prelude::*;

fn arb_graph(max_n: usize) -> impl Strategy<Value = AdjacencyMatrix> {
    (1usize..=max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..40).prop_map(move |pairs| {
            let mut g = AdjacencyMatrix::new(n);
            for (u, v) in pairs {
                if u != v {
                    g.add_edge(u, v).unwrap();
                }
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Bitonic sort equals the standard library sort on arbitrary inputs.
    #[test]
    fn bitonic_sorts(values in proptest::collection::vec(any::<u64>(), 0..80)) {
        let sorted = bitonic::sort(&values).unwrap();
        let mut expected = values.clone();
        expected.sort_unstable();
        prop_assert_eq!(sorted, expected);
    }

    /// Inclusive scans equal a sequential fold for every monoid.
    #[test]
    fn scans_match_folds(values in proptest::collection::vec(any::<u64>(), 0..64)) {
        let sums = scan::inclusive_scan(&values, &scan::SumMonoid).unwrap();
        let maxes = scan::inclusive_scan(&values, &scan::MaxMonoid).unwrap();
        let mins = scan::inclusive_scan(&values, &scan::MinMonoid).unwrap();
        let mut acc_s = 0u64;
        let mut acc_max = 0u64;
        let mut acc_min = u64::MAX;
        for (i, &v) in values.iter().enumerate() {
            acc_s = acc_s.wrapping_add(v);
            acc_max = acc_max.max(v);
            acc_min = acc_min.min(v);
            prop_assert_eq!(sums[i], acc_s);
            prop_assert_eq!(maxes[i], acc_max);
            prop_assert_eq!(mins[i], acc_min);
        }
    }

    /// Exclusive scan is the inclusive scan shifted by one.
    #[test]
    fn exclusive_is_shifted_inclusive(values in proptest::collection::vec(any::<u64>(), 1..64)) {
        let inc = scan::inclusive_scan(&values, &scan::SumMonoid).unwrap();
        let exc = scan::exclusive_scan(&values, &scan::SumMonoid).unwrap();
        prop_assert_eq!(exc[0], 0);
        for i in 1..values.len() {
            prop_assert_eq!(exc[i], inc[i - 1]);
        }
    }

    /// List ranking equals the sequential walk on random tail-terminated
    /// forests (built by having every node point at a node of lower index,
    /// or itself).
    #[test]
    fn list_ranking_matches_walk(parents in proptest::collection::vec(0usize..64, 1..64)) {
        let n = parents.len();
        let successors: Vec<usize> = parents
            .iter()
            .enumerate()
            .map(|(i, &p)| if i == 0 { 0 } else { p % i })
            .collect();
        let parallel = list_ranking::rank_list(&successors).unwrap();
        let sequential = list_ranking::rank_list_sequential(&successors).unwrap();
        prop_assert_eq!(parallel, sequential);
        prop_assert_eq!(n, successors.len());
    }

    /// The GCA transitive closure equals Warshall's on random graphs, and
    /// closure is idempotent: TC(TC(G)) = TC(G).
    #[test]
    fn closure_matches_warshall_and_is_idempotent(g in arb_graph(12)) {
        let run = transitive_closure::run(&g).unwrap();
        let reference = transitive_closure::warshall(&g);
        prop_assert_eq!(&run.closure, &reference);

        // Build the closure graph (minus the diagonal) and close it again.
        let n = g.n();
        let mut closed = AdjacencyMatrix::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                if run.closure.reaches(u, v) {
                    closed.add_edge(u, v).unwrap();
                }
            }
        }
        let again = transitive_closure::run(&closed).unwrap();
        prop_assert_eq!(&again.closure, &run.closure);
        // Labels are stable under closure too.
        prop_assert_eq!(again.labels.as_slice(), run.labels.as_slice());
    }

    /// Closure congestion stays ≤ 2 under the systolic schedule for every
    /// input (the skew argument is input-independent).
    #[test]
    fn closure_congestion_bound(g in arb_graph(10)) {
        let run = transitive_closure::run(&g).unwrap();
        prop_assert!(run.max_congestion <= 2);
    }
}
