//! Table 1: per-generation active cells, read targets and congestion δ —
//! the paper's claims as closed forms in `n`, plus measurement on real runs.
//!
//! The paper's table lists, for every generation, how many cells *modify
//! their state* and how many cells are read with which congestion
//! (`δ = number of concurrent read accesses`). The claims are workload-
//! independent for the statically-addressed generations (0–9) and worst-case
//! bounds for the data-dependent ones (10, 11). [`measure_first_iteration`]
//! instruments an actual run so the table binary can print *claimed vs.
//! measured*; small definitional deviations in the paper's own rows (e.g.
//! generation 5 listed as `n(n+1)` active although its text says the last
//! row stays unchanged) are documented in EXPERIMENTS.md.

use crate::{Gen, HirschbergGca, Machine};
use gca_engine::{Engine, GcaError, Instrumentation};
use gca_graphs::AdjacencyMatrix;
use std::collections::BTreeMap;

/// One claimed row of Table 1 (formulas evaluated at `n`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PaperClaim {
    /// Generation number (0–11).
    pub generation: u32,
    /// Reference-algorithm step (Table 1, left column).
    pub step: u32,
    /// Claimed number of active cells.
    pub active: u64,
    /// Claimed `(number of cells, δ)` read groups.
    pub groups: Vec<(u64, u64)>,
    /// `true` for the data-dependent generations where δ is a worst-case
    /// bound rather than an exact count.
    pub worst_case: bool,
}

/// The paper's Table 1 evaluated at problem size `n`.
pub fn paper_table1(n: usize) -> Vec<PaperClaim> {
    let n = n as u64;
    let sq = n * n;
    vec![
        PaperClaim {
            generation: 0,
            step: 1,
            active: n * (n + 1),
            groups: vec![],
            worst_case: false,
        },
        PaperClaim {
            generation: 1,
            step: 2,
            active: n * (n + 1),
            groups: vec![(sq, 0), (n, n + 1)],
            worst_case: false,
        },
        PaperClaim {
            generation: 2,
            step: 2,
            active: sq,
            groups: vec![(sq, 0), (n, n)],
            worst_case: false,
        },
        PaperClaim {
            generation: 3,
            step: 2,
            active: sq / 2,
            groups: vec![((n.saturating_sub(1)).pow(2), 1), (n + n, 0)],
            worst_case: false,
        },
        PaperClaim {
            generation: 4,
            step: 2,
            active: n,
            groups: vec![(n, 1), (sq, 0)],
            worst_case: false,
        },
        PaperClaim {
            generation: 5,
            step: 3,
            active: n * (n + 1),
            groups: vec![(sq, 0), (n, n + 1)],
            worst_case: false,
        },
        PaperClaim {
            generation: 6,
            step: 3,
            active: sq,
            groups: vec![(sq, 0), (n, n)],
            worst_case: false,
        },
        PaperClaim {
            generation: 7,
            step: 3,
            active: sq / 2,
            groups: vec![((n.saturating_sub(1)).pow(2), 1), (n + n, 0)],
            worst_case: false,
        },
        PaperClaim {
            generation: 8,
            step: 3,
            active: n,
            groups: vec![(n, 1), (sq, 0)],
            worst_case: false,
        },
        PaperClaim {
            generation: 9,
            step: 4,
            active: (n.saturating_sub(1)).pow(2),
            groups: vec![(n, n.saturating_sub(1)), (sq, 0)],
            worst_case: false,
        },
        PaperClaim {
            generation: 10,
            step: 5,
            active: n,
            groups: vec![(n, n), (sq, 0)],
            worst_case: true,
        },
        PaperClaim {
            generation: 11,
            step: 6,
            active: n,
            groups: vec![(n, n), (sq, 0)],
            worst_case: true,
        },
    ]
}

/// One measured row: activity and congestion of a single executed
/// `(generation, sub-generation)`.
#[derive(Clone, Debug, PartialEq)]
pub struct MeasuredRow {
    /// The generation (0–11).
    pub generation: Gen,
    /// Sub-generation index (0 for non-iterated generations).
    pub subgeneration: u32,
    /// Cells that performed a calculation.
    pub active: usize,
    /// Distinct cells read at least once.
    pub cells_read: usize,
    /// Maximum concurrent reads on a single cell.
    pub max_congestion: u32,
    /// Full δ grouping (δ → number of cells).
    pub groups: BTreeMap<u32, usize>,
}

/// Converts one instrumented generation into a measured row. The machine
/// stamps every step with a schedule phase, so an unknown tag can only
/// mean the recorded context is corrupt — surfaced as a typed error
/// rather than a panic.
fn measured_row(m: &gca_engine::metrics::GenerationMetrics) -> Result<MeasuredRow, GcaError> {
    let generation = Gen::from_number(m.ctx.phase).ok_or(GcaError::InvariantViolation {
        invariant: "schedule-phase".to_string(),
        generation: m.ctx.generation,
        phase: m.ctx.phase,
        cell: 0,
    })?;
    Ok(MeasuredRow {
        generation,
        subgeneration: m.ctx.subgeneration,
        active: m.active_cells,
        cells_read: m.cells_read,
        max_congestion: m.max_congestion,
        groups: m.congestion_groups.clone(),
    })
}

/// Runs generation 0 plus the first outer iteration on `graph` and returns
/// one measured row per executed `(generation, sub-generation)`.
pub fn measure_first_iteration(graph: &AdjacencyMatrix) -> Result<Vec<MeasuredRow>, GcaError> {
    if graph.n() == 0 {
        return Ok(Vec::new());
    }
    let engine = Engine::sequential().with_instrumentation(Instrumentation::Counts);
    let mut machine = Machine::with_engine(graph, engine)?;
    machine.init()?;
    if graph.n() > 1 {
        machine.run_iteration()?;
    }
    machine.metrics().entries().iter().map(measured_row).collect()
}

/// Measures the whole run (all `⌈log₂ n⌉` iterations) — used by the
/// congestion benchmarks to locate the overall hot spots.
pub fn measure_full_run(graph: &AdjacencyMatrix) -> Result<Vec<MeasuredRow>, GcaError> {
    let engine = Engine::sequential().with_instrumentation(Instrumentation::Counts);
    let run = HirschbergGca::new().with_engine(engine).run(graph)?;
    run.metrics.entries().iter().map(measured_row).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gca_graphs::generators;

    #[test]
    fn paper_table_has_twelve_rows() {
        let t = paper_table1(16);
        assert_eq!(t.len(), 12);
        assert_eq!(t[0].active, 16 * 17);
        assert_eq!(t[1].groups, vec![(256, 0), (16, 17)]);
        assert!(t[10].worst_case);
    }

    #[test]
    fn measured_static_generations_match_claims_n8() {
        // Statically-addressed generations must match the paper's formulas
        // exactly (independent of the workload).
        let n = 8usize;
        let g = generators::gnp(n, 0.5, 3);
        let rows = measure_first_iteration(&g).unwrap();
        let by_gen = |gen: Gen, sub: u32| {
            rows.iter()
                .find(|r| r.generation == gen && r.subgeneration == sub)
                .unwrap()
                .clone()
        };

        // Generation 0: n(n+1) active, no reads.
        let g0 = by_gen(Gen::Init, 0);
        assert_eq!(g0.active, n * (n + 1));
        assert_eq!(g0.cells_read, 0);

        // Generation 1: n cells read with δ = n + 1.
        let g1 = by_gen(Gen::BroadcastC, 0);
        assert_eq!(g1.active, n * (n + 1));
        assert_eq!(g1.cells_read, n);
        assert_eq!(g1.max_congestion as usize, n + 1);
        assert_eq!(g1.groups.get(&((n + 1) as u32)), Some(&n));

        // Generation 2: n² active; D_N read with δ = n.
        let g2 = by_gen(Gen::FilterNeighbors, 0);
        assert_eq!(g2.active, n * n);
        assert_eq!(g2.cells_read, n);
        assert_eq!(g2.max_congestion as usize, n);

        // Generation 3, first sub-generation: n²/2 active, δ = 1.
        let g3 = by_gen(Gen::MinReduce, 0);
        assert_eq!(g3.active, n * n / 2);
        assert_eq!(g3.max_congestion, 1);
        assert_eq!(g3.cells_read, n * n / 2);

        // Generation 4: n active, n cells read with δ = 1.
        let g4 = by_gen(Gen::ResolveIsolated, 0);
        assert_eq!(g4.active, n);
        assert_eq!(g4.cells_read, n);
        assert_eq!(g4.max_congestion, 1);

        // Generation 10: n active; δ bounded by n.
        let g10 = by_gen(Gen::PointerJump, 0);
        assert_eq!(g10.active, n);
        assert!(g10.max_congestion as usize <= n);
    }

    #[test]
    fn pointer_jump_congestion_hits_worst_case_on_star() {
        // In a star all nodes hook onto node 0; every jump then reads C(0),
        // realizing the paper's worst-case δ = n.
        let n = 8usize;
        let rows = measure_full_run(&generators::star(n)).unwrap();
        let max_jump = rows
            .iter()
            .filter(|r| r.generation == Gen::PointerJump)
            .map(|r| r.max_congestion)
            .max()
            .unwrap();
        assert_eq!(max_jump as usize, n);
    }

    #[test]
    fn measure_handles_trivial_sizes() {
        assert_eq!(measure_first_iteration(&generators::empty(0)).unwrap().len(), 0);
        let one = measure_first_iteration(&generators::empty(1)).unwrap();
        assert_eq!(one.len(), 1); // init only
        assert_eq!(one[0].generation, Gen::Init);
    }

    #[test]
    fn hinted_domains_bit_identical_to_dense_per_generation() {
        // The domain hints of HirschbergRule must not change *anything*
        // observable: run two machines in lockstep — one trusting the hints
        // (the default), one forced dense — and compare fields and every
        // metric after every single (generation, sub-generation).
        use crate::complexity::ceil_log2;
        use crate::iteration_schedule;
        use gca_engine::DomainPolicy;

        for (n, p, seed) in [(5usize, 0.5, 1u64), (8, 0.3, 2), (9, 0.2, 7)] {
            let g = generators::gnp(n, p, seed);
            let mut dense = Machine::with_engine(
                &g,
                Engine::sequential().with_domain_policy(DomainPolicy::Dense),
            )
            .unwrap();
            let mut hinted = Machine::with_engine(&g, Engine::sequential()).unwrap();

            let compare = |rd: &gca_engine::StepReport,
                           rh: &gca_engine::StepReport,
                           md: &Machine,
                           mh: &Machine| {
                let at = format!("n = {n}, gen {} / sub {}", rd.ctx.phase, rd.ctx.subgeneration);
                assert_eq!(md.field().states(), mh.field().states(), "{at}");
                assert_eq!(rd.active_cells, rh.active_cells, "{at}");
                assert_eq!(rd.total_reads, rh.total_reads, "{at}");
                assert_eq!(rd.changed_cells, rh.changed_cells, "{at}");
                assert_eq!(rd.congestion, rh.congestion, "{at}");
                assert!(
                    rh.evaluated_cells <= rd.evaluated_cells,
                    "{at}: hinted evaluated more cells than dense"
                );
            };

            let rd = dense.init().unwrap();
            let rh = hinted.init().unwrap();
            compare(&rd, &rh, &dense, &hinted);
            for _ in 0..ceil_log2(n) {
                for (gen, sub) in iteration_schedule(n) {
                    let rd = dense.step(gen, sub).unwrap();
                    let rh = hinted.step(gen, sub).unwrap();
                    compare(&rd, &rh, &dense, &hinted);
                }
            }
            assert_eq!(dense.labels().unwrap(), hinted.labels().unwrap());
        }
    }

    #[test]
    fn hinted_domains_skip_work() {
        // The point of the hints: the first-column generations evaluate n+1
        // cells instead of n(n+1).
        let n = 8usize;
        let g = generators::ring(n);
        let mut m = Machine::with_engine(&g, Engine::sequential()).unwrap();
        m.init().unwrap();
        let rep = m.step(Gen::BroadcastC, 0).unwrap();
        assert_eq!(rep.evaluated_cells, n * (n + 1)); // gen 1 is dense
        let rep = m.step(Gen::FilterNeighbors, 0).unwrap();
        assert_eq!(rep.evaluated_cells, n * n); // square only
        let rep = m.step(Gen::MinReduce, 0).unwrap();
        assert_eq!(rep.evaluated_cells, n * n); // stride 1: dense rows
        let rep = m.step(Gen::MinReduce, 1).unwrap();
        assert_eq!(rep.evaluated_cells, n * n / 4); // stride 2: sparse
        let rep = m.step(Gen::ResolveIsolated, 0).unwrap();
        assert_eq!(rep.evaluated_cells, n + 1); // first column
    }

    #[test]
    fn first_iteration_row_count_matches_schedule() {
        let n = 8usize;
        let g = generators::ring(n);
        let rows = measure_first_iteration(&g).unwrap();
        // 1 (init) + 8 + 3·log₂ 8 = 1 + 17.
        assert_eq!(rows.len(), 18);
    }
}
