use crate::HCell;
use gca_engine::{CellField, FieldShape, GcaError, Word};
use gca_graphs::AdjacencyMatrix;

/// The `(n+1) × n` field layout of the paper (Section 3).
///
/// Three matrices are overlaid on the cell field:
///
/// * `D` — the data matrix, `(n+1) × n`;
/// * `P` — the pointer matrix (computed per generation, not stored);
/// * `A` — the `n × n` adjacency matrix in the square part.
///
/// The **first column** `D[0]` carries the algorithm's `C(i)` / `T(i)`
/// vectors; the **last row** `D<n> = D_N` stores intermediate results
/// (saved copies of `C` and `T`). Linear indices follow the paper:
/// `index = row·n + col`, so `D_N` starts at linear index `n²`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Layout {
    n: usize,
    shape: FieldShape,
}

impl Layout {
    /// Creates the layout for a graph of `n` nodes.
    pub fn new(n: usize) -> Result<Self, GcaError> {
        let shape = FieldShape::new(n + 1, n)?;
        Ok(Layout { n, shape })
    }

    /// Number of graph nodes `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The field shape (`(n+1) × n`).
    #[inline]
    pub fn shape(&self) -> &FieldShape {
        &self.shape
    }

    /// Total number of cells, `n(n+1)`.
    #[inline]
    pub fn cells(&self) -> usize {
        self.shape.len()
    }

    /// Linear index of `D_N[k]` (the extra bottom row), `n² + k`.
    #[inline]
    pub fn dn_index(&self, k: usize) -> usize {
        debug_assert!(k < self.n);
        self.n * self.n + k
    }

    /// Linear index of `D<row>[0]` — the cell carrying `C(row)` / `T(row)`.
    #[inline]
    pub fn c_index(&self, row: usize) -> usize {
        debug_assert!(row < self.n);
        row * self.n
    }

    /// Is `index` in the extra bottom row `D_N`?
    #[inline]
    pub fn is_last_row(&self, index: usize) -> bool {
        self.shape.row(index) == self.n
    }

    /// Is `index` in the first column `D[0]` of the square field?
    #[inline]
    pub fn is_first_col_square(&self, index: usize) -> bool {
        self.shape.col(index) == 0 && !self.is_last_row(index)
    }

    /// Checks that `graph` matches the size this layout was built for.
    ///
    /// Error-vs-panic policy (see also the note on [`CellField`]): graphs
    /// arrive from user inputs (files, CLI flags, generators), so a size
    /// mismatch is an *input* error and surfaces as a typed
    /// [`GcaError::GraphSizeMismatch`], never a panic. `debug_assert!`s in
    /// this module guard internal index arithmetic only — values the
    /// algorithm derives itself, where a violation is a bug in this crate.
    fn check_graph(&self, graph: &AdjacencyMatrix) -> Result<(), GcaError> {
        if graph.n() != self.n {
            return Err(GcaError::GraphSizeMismatch {
                graph_nodes: graph.n(),
                layout_nodes: self.n,
            });
        }
        Ok(())
    }

    /// Builds the initial cell field from an adjacency matrix: square cell
    /// `(j, i)` stores `A(j, i)`; the data parts are zeroed (generation 0
    /// initializes them). Fails with [`GcaError::GraphSizeMismatch`] if the
    /// graph does not match the layout's size.
    pub fn build_field(&self, graph: &AdjacencyMatrix) -> Result<CellField<HCell>, GcaError> {
        self.check_graph(graph)?;
        Ok(CellField::from_fn(*self.shape(), |index| {
            let row = self.shape.row(index);
            let col = self.shape.col(index);
            let a = row < self.n && graph.has_edge_checked(row, col);
            HCell::with_adjacency(0, a)
        }))
    }

    /// Rewrites an existing field in place from a new adjacency matrix —
    /// the allocation-free counterpart of [`Layout::build_field`], used when
    /// reusing a machine across graphs of the same size. Data parts are
    /// zeroed exactly as a fresh build would leave them. Fails with
    /// [`GcaError::GraphSizeMismatch`] / [`GcaError::ShapeMismatch`] if the
    /// graph or the field does not match the layout.
    pub fn refill_field(
        &self,
        graph: &AdjacencyMatrix,
        field: &mut CellField<HCell>,
    ) -> Result<(), GcaError> {
        self.check_graph(graph)?;
        if field.len() != self.cells() {
            return Err(GcaError::ShapeMismatch {
                expected: self.cells(),
                actual: field.len(),
            });
        }
        for (index, cell) in field.states_mut().iter_mut().enumerate() {
            let row = self.shape.row(index);
            let col = self.shape.col(index);
            let a = row < self.n && graph.has_edge_checked(row, col);
            *cell = HCell::with_adjacency(0, a);
        }
        Ok(())
    }

    /// Reads the result vector `C` out of the first column.
    pub fn extract_labels(&self, field: &CellField<HCell>) -> Vec<Word> {
        (0..self.n).map(|j| field.get(self.c_index(j)).d).collect()
    }

    /// Reads the saved vector in the last row `D_N`.
    pub fn extract_dn(&self, field: &CellField<HCell>) -> Vec<Word> {
        (0..self.n).map(|k| field.get(self.dn_index(k)).d).collect()
    }
}

/// Bounds-tolerant adjacency probe used while building the field (the
/// diagonal and the last row have no matrix entry).
trait HasEdgeChecked {
    fn has_edge_checked(&self, u: usize, v: usize) -> bool;
}

impl HasEdgeChecked for AdjacencyMatrix {
    fn has_edge_checked(&self, u: usize, v: usize) -> bool {
        u < self.n() && v < self.n() && u != v && self.has_edge(u, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gca_graphs::GraphBuilder;

    #[test]
    fn layout_dimensions() {
        let l = Layout::new(4).unwrap();
        assert_eq!(l.n(), 4);
        assert_eq!(l.cells(), 20);
        assert_eq!(l.shape().rows(), 5);
        assert_eq!(l.shape().cols(), 4);
    }

    #[test]
    fn dn_starts_at_n_squared() {
        let l = Layout::new(4).unwrap();
        assert_eq!(l.dn_index(0), 16);
        assert_eq!(l.dn_index(3), 19);
    }

    #[test]
    fn c_index_is_row_times_n() {
        let l = Layout::new(4).unwrap();
        assert_eq!(l.c_index(0), 0);
        assert_eq!(l.c_index(3), 12);
    }

    #[test]
    fn region_predicates() {
        let l = Layout::new(3).unwrap();
        assert!(l.is_last_row(9)); // row 3 starts at 3·3 = 9
        assert!(!l.is_last_row(8));
        assert!(l.is_first_col_square(0));
        assert!(l.is_first_col_square(6));
        assert!(!l.is_first_col_square(9)); // last row, col 0
        assert!(!l.is_first_col_square(1));
    }

    #[test]
    fn build_field_places_adjacency() {
        let g = GraphBuilder::new(3).edge(0, 2).build().unwrap();
        let l = Layout::new(3).unwrap();
        let f = l.build_field(&g).unwrap();
        assert_eq!(f.len(), 12);
        // Cell (0, 2) and (2, 0) carry the edge.
        assert!(f.at(0, 2).a);
        assert!(f.at(2, 0).a);
        assert!(!f.at(0, 1).a);
        assert!(!f.at(1, 1).a); // diagonal
        // Last row carries no adjacency.
        assert!(!f.at(3, 0).a);
        assert!(!f.at(3, 2).a);
    }

    #[test]
    fn build_field_checks_size() {
        let g = GraphBuilder::new(2).build().unwrap();
        let l = Layout::new(3).unwrap();
        assert_eq!(
            l.build_field(&g).unwrap_err(),
            GcaError::GraphSizeMismatch {
                graph_nodes: 2,
                layout_nodes: 3
            }
        );
    }

    #[test]
    fn refill_field_checks_graph_and_field() {
        let l = Layout::new(3).unwrap();
        let g3 = GraphBuilder::new(3).edge(0, 1).build().unwrap();
        let g2 = GraphBuilder::new(2).build().unwrap();
        let mut f = l.build_field(&g3).unwrap();
        assert_eq!(
            l.refill_field(&g2, &mut f).unwrap_err(),
            GcaError::GraphSizeMismatch {
                graph_nodes: 2,
                layout_nodes: 3
            }
        );
        let l2 = Layout::new(2).unwrap();
        assert_eq!(
            l2.refill_field(&g2, &mut f).unwrap_err(),
            GcaError::ShapeMismatch {
                expected: 6,
                actual: 12
            }
        );
        // A matching refill reproduces a fresh build.
        let refreshed = l.build_field(&g3).unwrap();
        f.set(0, HCell::new(9));
        l.refill_field(&g3, &mut f).unwrap();
        assert_eq!(f.states(), refreshed.states());
    }

    #[test]
    fn extract_labels_reads_first_column() {
        let l = Layout::new(3).unwrap();
        let g = GraphBuilder::new(3).build().unwrap();
        let mut f = l.build_field(&g).unwrap();
        f.set(l.c_index(0), HCell::new(7));
        f.set(l.c_index(1), HCell::new(8));
        f.set(l.c_index(2), HCell::new(9));
        assert_eq!(l.extract_labels(&f), vec![7, 8, 9]);
    }

    #[test]
    fn extract_dn_reads_last_row() {
        let l = Layout::new(2).unwrap();
        let g = GraphBuilder::new(2).build().unwrap();
        let mut f = l.build_field(&g).unwrap();
        f.set(l.dn_index(0), HCell::new(4));
        f.set(l.dn_index(1), HCell::new(5));
        assert_eq!(l.extract_dn(&f), vec![4, 5]);
    }

    #[test]
    fn zero_node_layout() {
        let l = Layout::new(0).unwrap();
        assert_eq!(l.cells(), 0);
    }
}
