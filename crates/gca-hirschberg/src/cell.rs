use gca_engine::Word;

/// The state of one Hirschberg-field cell.
///
/// The paper: *"Each cell stores (a, d, p)"* — the adjacency entry `a`, the
/// data word `d`, and the pointer `p`. In this implementation the pointer is
/// re-computed by the rule in the generation it is used (the paper: *"In our
/// algorithm the pointer is computed in the current generation"*), so it is
/// not part of the stored state; only `a` and `d` are.
///
/// * `d` holds a node / super-node number or the `∞` sentinel
///   ([`gca_engine::INFINITY`]);
/// * `a` holds `A(row, col)` for square cells and is unused (false) in the
///   extra bottom row `D_N`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct HCell {
    /// The data field `d` (a node number or `∞`).
    pub d: Word,
    /// The adjacency-matrix entry stored with the cell.
    pub a: bool,
}

// Manual impls replace the former serde derives: the vendored offline serde
// has no proc macros (see DESIGN.md).
serde::impl_serialize_struct!(HCell { d, a });
serde::impl_deserialize_struct!(HCell { d, a });

impl HCell {
    /// A cell with data `d` and no adjacency bit.
    pub fn new(d: Word) -> Self {
        HCell { d, a: false }
    }

    /// A cell with data `d` and adjacency bit `a`.
    pub fn with_adjacency(d: Word, a: bool) -> Self {
        HCell { d, a }
    }

    /// Returns a copy with the data replaced (the adjacency bit is constant
    /// for the whole run, so every data operation goes through here).
    #[inline]
    pub fn with_d(self, d: Word) -> Self {
        HCell { d, a: self.a }
    }

    /// Is the data field the `∞` sentinel?
    #[inline]
    pub fn is_infinity(&self) -> bool {
        self.d == gca_engine::INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gca_engine::INFINITY;

    #[test]
    fn constructors() {
        let c = HCell::new(5);
        assert_eq!(c.d, 5);
        assert!(!c.a);
        let c = HCell::with_adjacency(7, true);
        assert_eq!(c.d, 7);
        assert!(c.a);
    }

    #[test]
    fn with_d_preserves_adjacency() {
        let c = HCell::with_adjacency(1, true).with_d(9);
        assert_eq!(c.d, 9);
        assert!(c.a);
    }

    #[test]
    fn infinity_detection() {
        assert!(HCell::new(INFINITY).is_infinity());
        assert!(!HCell::new(0).is_infinity());
    }

    #[test]
    fn state_is_small() {
        // The data path of the paper's cell is a handful of registers; keep
        // the simulated state compact so big fields stay cache-friendly.
        assert!(std::mem::size_of::<HCell>() <= 8);
    }
}
