//! Closed-form generation counts (Table 2 and the Section-3 formula).
//!
//! The paper: *"The steps 1, 4 and 6 can be performed in one generation.
//! Steps 2 and 3 each need `1 + log(n) + 1 + 1` generations, because the
//! minimum needs `log(n)` sub generations. Step 5 needs one generation, but
//! this step is repeated `log(n)` times. The steps 2 to 6 are executed in
//! `log(n)` iterations. So the total amount of generations is
//! `1 + log(n)·(3·log(n) + 8)`."*
//!
//! All logarithms are `⌈log₂ n⌉` (the paper assumes power-of-two `n`; the
//! ceiling generalizes the formulas to every `n` and coincides for powers of
//! two). Callers that quote the *paper's* numbers — where `log n` is exact —
//! use the `*_exact` variants, which return a typed [`NonPowerOfTwo`] error
//! instead of silently evaluating the ceiling-generalized form.

use std::fmt;

/// Typed rejection of a problem size the paper's exact formulas do not
/// cover: `n` is zero or not a power of two, so `log₂ n` is not an integer
/// and the ceiling-generalized formulas no longer coincide with the paper's.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NonPowerOfTwo {
    /// The offending problem size.
    pub n: usize,
}

impl fmt::Display for NonPowerOfTwo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n = {} is not a power of two; the paper's exact generation-count \
             formulas require integral log2(n) (use the ceiling-generalized \
             functions for arbitrary n)",
            self.n
        )
    }
}

impl std::error::Error for NonPowerOfTwo {}

/// Exact `log₂ n` for power-of-two `n` (including `n = 1`), or a typed
/// [`NonPowerOfTwo`] error otherwise.
pub fn exact_log2(n: usize) -> Result<u32, NonPowerOfTwo> {
    if n.is_power_of_two() {
        Ok(n.trailing_zeros())
    } else {
        Err(NonPowerOfTwo { n })
    }
}

/// [`table2`] restricted to the sizes the paper states it for.
pub fn table2_exact(n: usize) -> Result<[Table2Row; 6], NonPowerOfTwo> {
    exact_log2(n)?;
    Ok(table2(n))
}

/// [`generations_per_iteration`] restricted to power-of-two `n`.
pub fn generations_per_iteration_exact(n: usize) -> Result<u64, NonPowerOfTwo> {
    exact_log2(n)?;
    Ok(generations_per_iteration(n))
}

/// [`total_generations`] restricted to power-of-two `n` — the sizes for
/// which the returned value is the paper's claim rather than our
/// ceiling-generalization of it.
pub fn total_generations_exact(n: usize) -> Result<u64, NonPowerOfTwo> {
    exact_log2(n)?;
    Ok(total_generations(n))
}

/// `⌈log₂ n⌉`, with the conventions `ceil_log2(0) = ceil_log2(1) = 0`.
pub fn ceil_log2(n: usize) -> u32 {
    if n <= 1 {
        0
    } else {
        usize::BITS - (n - 1).leading_zeros()
    }
}

/// One row of Table 2: generations needed per reference-algorithm step,
/// **per outer iteration** (step 1 runs only once, before the iterations).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Table2Row {
    /// Step of the reference algorithm (1-based).
    pub step: u32,
    /// Generations this step expands into.
    pub generations: u64,
}

/// Table 2 for problem size `n`.
///
/// * step 1 → `1`
/// * step 2 → `1 + log n + 1 + 1`
/// * step 3 → `1 + log n + 1 + 1`
/// * step 4 → `1`
/// * step 5 → `log n`
/// * step 6 → `1`
pub fn table2(n: usize) -> [Table2Row; 6] {
    let l = u64::from(ceil_log2(n));
    [
        Table2Row { step: 1, generations: 1 },
        Table2Row { step: 2, generations: 3 + l },
        Table2Row { step: 3, generations: 3 + l },
        Table2Row { step: 4, generations: 1 },
        Table2Row { step: 5, generations: l },
        Table2Row { step: 6, generations: 1 },
    ]
}

/// Generations per outer iteration: `3·log n + 8`.
pub fn generations_per_iteration(n: usize) -> u64 {
    3 * u64::from(ceil_log2(n)) + 8
}

/// Number of outer iterations: `⌈log₂ n⌉`.
pub fn outer_iterations(n: usize) -> u32 {
    ceil_log2(n)
}

/// The paper's total: `1 + log n · (3·log n + 8)`.
pub fn total_generations(n: usize) -> u64 {
    let l = u64::from(ceil_log2(n));
    1 + l * (3 * l + 8)
}

/// Asymptotic work `w = t_p · P` of the GCA design: `O(log² n)` time on
/// `n(n+1)` cells. The paper argues this is *not* wasteful for a GCA even
/// though it exceeds the sequential `Θ(n²)` bound for dense graphs, because
/// in an FPGA a cell costs no more than the memory it replaces.
pub fn work(n: usize) -> u64 {
    total_generations(n) * (n as u64) * (n as u64 + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(0), 0);
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(8), 3);
        assert_eq!(ceil_log2(9), 4);
        assert_eq!(ceil_log2(1 << 20), 20);
        assert_eq!(ceil_log2((1 << 20) + 1), 21);
    }

    #[test]
    fn table2_for_power_of_two() {
        let t = table2(16); // log = 4
        assert_eq!(t[0].generations, 1);
        assert_eq!(t[1].generations, 7);
        assert_eq!(t[2].generations, 7);
        assert_eq!(t[3].generations, 1);
        assert_eq!(t[4].generations, 4);
        assert_eq!(t[5].generations, 1);
    }

    #[test]
    fn iteration_total_matches_table2() {
        for n in [2usize, 4, 7, 16, 100] {
            let per_step: u64 = table2(n)[1..].iter().map(|r| r.generations).sum();
            assert_eq!(per_step, generations_per_iteration(n), "n = {n}");
        }
    }

    #[test]
    fn total_formula() {
        // n = 16: 1 + 4·(12 + 8) = 81.
        assert_eq!(total_generations(16), 81);
        // n = 4: 1 + 2·(6 + 8) = 29.
        assert_eq!(total_generations(4), 29);
        // n = 1: init only.
        assert_eq!(total_generations(1), 1);
    }

    #[test]
    fn total_composes_from_parts() {
        for n in [1usize, 2, 3, 8, 31, 64] {
            assert_eq!(
                total_generations(n),
                1 + u64::from(outer_iterations(n)) * generations_per_iteration(n),
                "n = {n}"
            );
        }
    }

    #[test]
    fn work_scales_with_n_squared_polylog() {
        assert_eq!(work(16), 81 * 16 * 17);
    }

    #[test]
    fn exact_variants_accept_powers_of_two() {
        assert_eq!(exact_log2(1), Ok(0));
        assert_eq!(exact_log2(2), Ok(1));
        assert_eq!(exact_log2(1024), Ok(10));
        assert_eq!(total_generations_exact(16), Ok(81));
        assert_eq!(generations_per_iteration_exact(4), Ok(14));
        assert_eq!(table2_exact(16).map(|t| t[1].generations), Ok(7));
    }

    #[test]
    fn exact_variants_reject_non_powers_of_two() {
        for n in [0usize, 3, 5, 6, 7, 9, 100, (1 << 12) + 1] {
            assert_eq!(exact_log2(n), Err(NonPowerOfTwo { n }), "n = {n}");
            assert_eq!(total_generations_exact(n), Err(NonPowerOfTwo { n }));
            assert_eq!(generations_per_iteration_exact(n), Err(NonPowerOfTwo { n }));
            assert_eq!(table2_exact(n), Err(NonPowerOfTwo { n }));
        }
    }

    #[test]
    fn exact_and_generalized_coincide_on_powers_of_two() {
        for k in 0..=12u32 {
            let n = 1usize << k;
            assert_eq!(total_generations_exact(n), Ok(total_generations(n)));
        }
    }

    #[test]
    fn non_power_of_two_error_is_actionable() {
        let msg = NonPowerOfTwo { n: 100 }.to_string();
        assert!(msg.contains("100") && msg.contains("power of two"));
    }
}
