use crate::complexity::ceil_log2;

/// The twelve generations of the GCA algorithm (Figure 2).
///
/// The numeric value of each variant is the paper's generation number and is
/// what the driver forwards as [`gca_engine::StepCtx::phase`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum Gen {
    /// Generation 0 — `d ← row(index)` (step 1 of the reference algorithm).
    Init = 0,
    /// Generation 1 — broadcast `C` (column 0) into every row incl. `D_N`.
    BroadcastC = 1,
    /// Generation 2 — keep `d` where `A = 1 ∧ d ≠ C(row)`, else `∞`.
    FilterNeighbors = 2,
    /// Generation 3 — row-wise tree-reduction minimum (`⌈log₂ n⌉` subgens).
    MinReduce = 3,
    /// Generation 4 — `∞` in column 0 falls back to `C(row)` from `D_N`.
    ResolveIsolated = 4,
    /// Generation 5 — broadcast `T` (column 0) into every square row.
    BroadcastT = 5,
    /// Generation 6 — keep `d` where `C(col) = row ∧ d ≠ row`, else `∞`.
    FilterMembers = 6,
    /// Generation 7 — identical to generation 3.
    MinReduceMembers = 7,
    /// Generation 8 — identical to generation 4.
    ResolveMembers = 8,
    /// Generation 9 — copy `T` across columns; save `T` into `D_N`.
    CopyAndSaveT = 9,
    /// Generation 10 — pointer jumping `C ← C(C)` (`⌈log₂ n⌉` subgens).
    PointerJump = 10,
    /// Generation 11 — `C ← min(C, T(C))`, reading column 1 of row `C`.
    FinalMin = 11,
}

impl Gen {
    /// All generations in execution order.
    pub const ALL: [Gen; 12] = [
        Gen::Init,
        Gen::BroadcastC,
        Gen::FilterNeighbors,
        Gen::MinReduce,
        Gen::ResolveIsolated,
        Gen::BroadcastT,
        Gen::FilterMembers,
        Gen::MinReduceMembers,
        Gen::ResolveMembers,
        Gen::CopyAndSaveT,
        Gen::PointerJump,
        Gen::FinalMin,
    ];

    /// The paper's generation number.
    #[inline]
    pub fn number(self) -> u32 {
        self as u32
    }

    /// Reverse lookup from a phase tag.
    pub fn from_number(v: u32) -> Option<Gen> {
        Gen::ALL.get(v as usize).copied()
    }

    /// Which of the reference algorithm's six steps (1-based) this
    /// generation implements (Table 1's left column).
    pub fn step(self) -> u32 {
        match self {
            Gen::Init => 1,
            Gen::BroadcastC | Gen::FilterNeighbors | Gen::MinReduce | Gen::ResolveIsolated => 2,
            Gen::BroadcastT | Gen::FilterMembers | Gen::MinReduceMembers | Gen::ResolveMembers => 3,
            Gen::CopyAndSaveT => 4,
            Gen::PointerJump => 5,
            Gen::FinalMin => 6,
        }
    }

    /// Does this generation iterate `⌈log₂ n⌉` sub-generations?
    pub fn is_iterated(self) -> bool {
        matches!(
            self,
            Gen::MinReduce | Gen::MinReduceMembers | Gen::PointerJump
        )
    }

    /// Number of sub-generations this generation executes for problem size
    /// `n` (1 for non-iterated generations).
    pub fn subgenerations(self, n: usize) -> u32 {
        if self.is_iterated() {
            ceil_log2(n)
        } else {
            1
        }
    }

    /// How many times this generation executes over a complete fixed-
    /// schedule run of problem size `n`: once for [`Gen::Init`], once per
    /// outer iteration for the plain generations, `⌈log₂ n⌉` times per
    /// outer iteration for the iterated ones. Summed over [`Gen::ALL`] this
    /// reproduces the paper's `1 + log n · (3·log n + 8)` total — the
    /// schedule metadata the symbolic verification layer
    /// (`gca-analysis::symbolic`) fits its generation-count closed forms
    /// from.
    pub fn executions(self, n: usize) -> u64 {
        if n == 0 {
            return 0;
        }
        match self {
            Gen::Init => 1,
            g => u64::from(g.subgenerations(n)) * u64::from(ceil_log2(n)),
        }
    }

    /// The pointer operation of Figure 2 (left column), in the paper's
    /// notation.
    pub fn pointer_op(self) -> &'static str {
        match self {
            Gen::Init => "p = index",
            Gen::BroadcastC => "p = col(index)*n",
            Gen::FilterNeighbors => "p = n^2 + row(index)            (D_N[row], square only)",
            Gen::MinReduce | Gen::MinReduceMembers => {
                "p = index + (1 << subGeneration)  (if col % 2^(s+1) == 0 and col + 2^s < n)"
            }
            Gen::ResolveIsolated | Gen::ResolveMembers => {
                "p = n^2 + row(index)              (first column only)"
            }
            Gen::BroadcastT => "p = col(index)*n                  (square only)",
            Gen::FilterMembers => "p = n^2 + col(index)              (D_N[col], square only)",
            Gen::CopyAndSaveT => "p = row(index)*n  /  p = col(index)*n for D_N",
            Gen::PointerJump => "p = d*n                           (first column only)",
            Gen::FinalMin => "p = d*n + 1                       (first column only)",
        }
    }

    /// The data operation of Figure 2 (right column), in the paper's
    /// notation.
    pub fn data_op(self) -> &'static str {
        match self {
            Gen::Init => "d <- row(index)",
            Gen::BroadcastC => "d <- d*",
            Gen::FilterNeighbors => {
                "if ((A == 1) & (d != d*)) | (row == n) then d <- d else d <- inf"
            }
            Gen::MinReduce | Gen::MinReduceMembers => {
                "if (d* < d) & participating then d <- d* else d <- d"
            }
            Gen::ResolveIsolated | Gen::ResolveMembers => {
                "if d == inf then d <- d* else d <- d"
            }
            Gen::BroadcastT => "if row == n then d <- d else d <- d*",
            Gen::FilterMembers => {
                "if ((d* == row) & (d != row)) | (row == n) then d <- d else d <- inf"
            }
            Gen::CopyAndSaveT => "if col == 0 & row != n then d <- d else d <- d*",
            Gen::PointerJump => "if col == 0 then d <- d* else d <- d",
            Gen::FinalMin => "if d < d* then d <- d else d <- d*",
        }
    }
}

/// The `(generation, sub-generation)` sequence of **one outer iteration**
/// (generations 1–11; generation 0 runs once, before the first iteration).
///
/// Its length is `8 + 3·⌈log₂ n⌉`, the per-iteration term of the paper's
/// total-generation formula.
pub fn iteration_schedule(n: usize) -> Vec<(Gen, u32)> {
    let mut v = Vec::new();
    for g in Gen::ALL.into_iter().skip(1) {
        for s in 0..g.subgenerations(n) {
            v.push((g, s));
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_match_positions() {
        for (i, g) in Gen::ALL.iter().enumerate() {
            assert_eq!(g.number() as usize, i);
            assert_eq!(Gen::from_number(i as u32), Some(*g));
        }
        assert_eq!(Gen::from_number(12), None);
    }

    #[test]
    fn steps_match_table1() {
        assert_eq!(Gen::Init.step(), 1);
        assert_eq!(Gen::BroadcastC.step(), 2);
        assert_eq!(Gen::ResolveIsolated.step(), 2);
        assert_eq!(Gen::BroadcastT.step(), 3);
        assert_eq!(Gen::ResolveMembers.step(), 3);
        assert_eq!(Gen::CopyAndSaveT.step(), 4);
        assert_eq!(Gen::PointerJump.step(), 5);
        assert_eq!(Gen::FinalMin.step(), 6);
    }

    #[test]
    fn iterated_generations() {
        assert!(Gen::MinReduce.is_iterated());
        assert!(Gen::MinReduceMembers.is_iterated());
        assert!(Gen::PointerJump.is_iterated());
        assert!(!Gen::BroadcastC.is_iterated());
    }

    #[test]
    fn subgeneration_counts() {
        assert_eq!(Gen::MinReduce.subgenerations(8), 3);
        assert_eq!(Gen::MinReduce.subgenerations(5), 3);
        assert_eq!(Gen::MinReduce.subgenerations(1), 0);
        assert_eq!(Gen::BroadcastC.subgenerations(8), 1);
    }

    #[test]
    fn schedule_length_is_8_plus_3_log_n() {
        for n in [2usize, 4, 5, 8, 16, 33] {
            let l = ceil_log2(n) as usize;
            assert_eq!(iteration_schedule(n).len(), 8 + 3 * l, "n = {n}");
        }
    }

    #[test]
    fn executions_sum_to_the_total_formula() {
        use crate::complexity::total_generations;
        for n in [1usize, 2, 3, 4, 7, 8, 16, 33, 1 << 12] {
            let total: u64 = Gen::ALL.iter().map(|g| g.executions(n)).sum();
            assert_eq!(total, total_generations(n), "n = {n}");
        }
        // Per phase: init once, iterated phases log² n, the rest log n.
        assert_eq!(Gen::Init.executions(16), 1);
        assert_eq!(Gen::MinReduce.executions(16), 16);
        assert_eq!(Gen::PointerJump.executions(16), 16);
        assert_eq!(Gen::BroadcastC.executions(16), 4);
        assert_eq!(Gen::FinalMin.executions(1), 0);
        assert_eq!(Gen::Init.executions(0), 0);
    }

    #[test]
    fn schedule_order_for_n4() {
        let s = iteration_schedule(4);
        let phases: Vec<u32> = s.iter().map(|(g, _)| g.number()).collect();
        assert_eq!(
            phases,
            vec![1, 2, 3, 3, 4, 5, 6, 7, 7, 8, 9, 10, 10, 11]
        );
        let subgens: Vec<u32> = s.iter().map(|&(_, s)| s).collect();
        assert_eq!(subgens, vec![0, 0, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0, 1, 0]);
    }
}
