//! Design-space variants discussed by the paper.
//!
//! * [`n_cells`] — the paper's Section 3 weighs *"between n and n² cells"*
//!   and picks `n²` for maximal parallelism. The `n`-cell machine is the
//!   road not taken: one cell per graph node, sequential neighbor scans, so
//!   `O(n log n)` generations instead of `O(log² n)` — but only `n` cells.
//! * [`low_congestion`] — Section 4 notes the concurrent reads can be
//!   *"implement\[ed\] … in a tree-like manner, or … use replication for
//!   arrays C and T to get congestion down to 1"*. This variant realizes
//!   the tree alternative: every Θ(n)-congestion broadcast becomes a
//!   transpose plus `⌈log₂(n+1)⌉` doubling sub-generations with δ ≤ 2,
//!   trading ~3·log n extra generations per iteration for constant
//!   congestion in the statically-addressed phases.
//! * [`two_handed`] — Section 1 defines k-handed GCAs; this variant spends
//!   a second pointer per cell to eliminate the broadcast generations *and*
//!   the extra bottom row: `6 + 3·log n` generations per iteration (the
//!   PRAM reference's step count) on `n²` cells, at δ up to 2n.
//!
//! Both variants produce exactly the same canonical labeling as the main
//! machine; the ablation benchmark compares their generation counts,
//! congestion profiles and simulated hardware cost.

pub mod low_congestion;
pub mod n_cells;
pub mod two_handed;
