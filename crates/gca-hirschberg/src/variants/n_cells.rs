//! The `n`-cell variant: one GCA cell per graph node.
//!
//! Section 3 of the paper: *"For this algorithm we decide between n and n²
//! cells. We have decided for the n² case because we want to design and
//! evaluate the GCA algorithm with the highest degree of parallelism."*
//! This module implements the other corner of the design space so the
//! ablation benchmark can quantify the trade-off:
//!
//! * **cells:** `n` instead of `n(n+1)`;
//! * **time:** the row minima of steps 2 and 3 become *sequential scans* of
//!   `n` sub-generations each, so one outer iteration costs
//!   `2n + ⌈log₂ n⌉ + 6` generations instead of `3·⌈log₂ n⌉ + 8` —
//!   `O(n log n)` total instead of `O(log² n)`;
//! * **congestion:** the scans use the *rotated* (skewed) access pattern —
//!   in scan sub-generation `s`, cell `i` reads cell `(i + s) mod n` — so
//!   every cell is read by exactly one reader per sub-generation (δ = 1),
//!   the same idea behind the paper's rotated-replication remark;
//! * **state:** each cell stores `(c, t, acc)` plus its adjacency row
//!   (modelled as cell-local ROM held by the rule).
//!
//! The result is bit-identical to the main machine's labeling.

use crate::complexity::ceil_log2;
use gca_engine::metrics::{GenerationMetrics, MetricsLog};
use gca_engine::{
    Access, CellField, Engine, FieldShape, GcaError, GcaRule, Reads, StepCtx, Word, INFINITY,
};
use gca_graphs::{AdjacencyMatrix, Labeling};

/// Per-node cell state of the `n`-cell machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NCell {
    /// Component label `C(i)`.
    pub c: Word,
    /// Candidate `T(i)` (step 2/3 result; doubles as the pre-jump `C`).
    pub t: Word,
    /// Scan accumulator for the running minimum.
    pub acc: Word,
}

/// The phases of the `n`-cell state machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u32)]
pub enum NGen {
    /// `c ← i` (step 1).
    Init = 0,
    /// `acc ← ∞` before the neighbor scan.
    ScanNeighborsInit = 1,
    /// Sub-generation `s`: read node `(i + s) mod n`; fold its `c` into
    /// `acc` when it is an adjacent, foreign-component node (step 2).
    ScanNeighbors = 2,
    /// `t ← acc`, falling back to `c` when the scan found nothing.
    ResolveNeighbors = 3,
    /// `acc ← ∞` before the member scan.
    ScanMembersInit = 4,
    /// Sub-generation `s`: read node `j = (i + s) mod n`; fold its `t` into
    /// `acc` when `C(j) = i ∧ T(j) ≠ i` (step 3).
    ScanMembers = 5,
    /// `t ← acc`, falling back to `c`.
    ResolveMembers = 6,
    /// `c ← t` (step 4).
    Hook = 7,
    /// Pointer jumping `c ← c(c)` (`⌈log₂ n⌉` sub-generations, step 5).
    Jump = 8,
    /// `c ← min(c, t(c))` (step 6).
    FinalMin = 9,
}

impl NGen {
    fn from_number(v: u32) -> Option<NGen> {
        use NGen::*;
        [
            Init,
            ScanNeighborsInit,
            ScanNeighbors,
            ResolveNeighbors,
            ScanMembersInit,
            ScanMembers,
            ResolveMembers,
            Hook,
            Jump,
            FinalMin,
        ]
        .get(v as usize)
        .copied()
    }
}

/// The uniform rule of the `n`-cell machine. Holds the adjacency matrix as
/// the cells' local ROM (cell `i` only ever consults row `i`).
#[derive(Clone, Debug)]
pub struct NCellRule {
    adjacency: AdjacencyMatrix,
}

impl NCellRule {
    /// Builds the rule over `graph`.
    pub fn new(graph: &AdjacencyMatrix) -> Self {
        NCellRule {
            adjacency: graph.clone(),
        }
    }

    fn n(&self) -> usize {
        self.adjacency.n()
    }

    fn phase(ctx: &StepCtx) -> NGen {
        NGen::from_number(ctx.phase)
            .unwrap_or_else(|| panic!("invalid n-cell phase {}", ctx.phase))
    }
}

impl GcaRule for NCellRule {
    type State = NCell;

    fn access(&self, ctx: &StepCtx, _shape: &FieldShape, index: usize, own: &NCell) -> Access {
        let n = self.n();
        match Self::phase(ctx) {
            NGen::Init | NGen::ScanNeighborsInit | NGen::ScanMembersInit => Access::None,
            // Rotated scan: δ = 1 per sub-generation by construction.
            NGen::ScanNeighbors | NGen::ScanMembers => {
                Access::One((index + ctx.subgeneration as usize) % n)
            }
            NGen::ResolveNeighbors | NGen::ResolveMembers | NGen::Hook => Access::None,
            NGen::Jump | NGen::FinalMin => Access::One(own.c as usize),
        }
    }

    fn evolve(
        &self,
        ctx: &StepCtx,
        _shape: &FieldShape,
        index: usize,
        own: &NCell,
        reads: Reads<'_, NCell>,
    ) -> NCell {
        let i = index as Word;
        match Self::phase(ctx) {
            NGen::Init => NCell {
                c: i,
                t: i,
                acc: INFINITY,
            },
            NGen::ScanNeighborsInit | NGen::ScanMembersInit => NCell {
                acc: INFINITY,
                ..*own
            },
            NGen::ScanNeighbors => {
                let other = reads.expect_first("scan-neighbors");
                let j = (index + ctx.subgeneration as usize) % self.n();
                let qualifies = index != j
                    && self.adjacency.has_edge(index, j)
                    && other.c != own.c;
                if qualifies {
                    NCell {
                        acc: own.acc.min(other.c),
                        ..*own
                    }
                } else {
                    *own
                }
            }
            NGen::ResolveNeighbors | NGen::ResolveMembers => NCell {
                t: if own.acc == INFINITY { own.c } else { own.acc },
                ..*own
            },
            NGen::ScanMembers => {
                let other = reads.expect_first("scan-members");
                if other.c == i && other.t != i {
                    NCell {
                        acc: own.acc.min(other.t),
                        ..*own
                    }
                } else {
                    *own
                }
            }
            NGen::Hook => NCell { c: own.t, ..*own },
            NGen::Jump => NCell {
                c: reads.expect_first("jump").c,
                ..*own
            },
            NGen::FinalMin => NCell {
                c: own.c.min(reads.expect_first("final-min").t),
                ..*own
            },
        }
    }

    fn name(&self) -> &str {
        "hirschberg-n-cells"
    }
}

/// Result of an `n`-cell run.
#[derive(Clone, Debug)]
pub struct NCellRun {
    /// Canonical component labeling.
    pub labels: Labeling,
    /// Total generations executed.
    pub generations: u64,
    /// Outer iterations executed.
    pub iterations: u32,
    /// Per-generation metrics.
    pub metrics: MetricsLog,
}

/// Generations per outer iteration: `2n + ⌈log₂ n⌉ + 6`.
pub fn generations_per_iteration(n: usize) -> u64 {
    2 * n as u64 + u64::from(ceil_log2(n)) + 6
}

/// Total generations: `1 + ⌈log₂ n⌉ · (2n + ⌈log₂ n⌉ + 6)`.
pub fn total_generations(n: usize) -> u64 {
    1 + u64::from(ceil_log2(n)) * generations_per_iteration(n)
}

/// Runs the `n`-cell machine on `graph`.
pub fn run(graph: &AdjacencyMatrix) -> Result<NCellRun, GcaError> {
    run_with_engine(graph, Engine::sequential())
}

/// Runs the `n`-cell machine with an explicit engine configuration.
pub fn run_with_engine(graph: &AdjacencyMatrix, mut engine: Engine) -> Result<NCellRun, GcaError> {
    let n = graph.n();
    if n == 0 {
        return Ok(NCellRun {
            labels: Labeling::empty(),
            generations: 0,
            iterations: 0,
            metrics: MetricsLog::new(),
        });
    }
    let shape = FieldShape::new(1, n)?;
    let mut field = CellField::new(
        shape,
        NCell {
            c: 0,
            t: 0,
            acc: INFINITY,
        },
    );
    let rule = NCellRule::new(graph);
    let mut metrics = MetricsLog::new();
    let mut step = |field: &mut CellField<NCell>,
                    engine: &mut Engine,
                    gen: NGen,
                    sub: u32|
     -> Result<(), GcaError> {
        let rep = engine.step(field, &rule, gen as u32, sub)?;
        if let Some(h) = rep.congestion.as_ref() {
            metrics.push(GenerationMetrics::new(rep.ctx, rep.active_cells, h));
        }
        Ok(())
    };

    step(&mut field, &mut engine, NGen::Init, 0)?;
    let l = ceil_log2(n);
    for _ in 0..l {
        step(&mut field, &mut engine, NGen::ScanNeighborsInit, 0)?;
        for s in 0..n as u32 {
            step(&mut field, &mut engine, NGen::ScanNeighbors, s)?;
        }
        step(&mut field, &mut engine, NGen::ResolveNeighbors, 0)?;
        step(&mut field, &mut engine, NGen::ScanMembersInit, 0)?;
        for s in 0..n as u32 {
            step(&mut field, &mut engine, NGen::ScanMembers, s)?;
        }
        step(&mut field, &mut engine, NGen::ResolveMembers, 0)?;
        step(&mut field, &mut engine, NGen::Hook, 0)?;
        for s in 0..l {
            step(&mut field, &mut engine, NGen::Jump, s)?;
        }
        step(&mut field, &mut engine, NGen::FinalMin, 0)?;
    }

    let labels =
        crate::machine_labeling(field.states().iter().map(|s| s.c as usize).collect())?;
    Ok(NCellRun {
        labels,
        generations: engine.generation(),
        iterations: l,
        metrics,
    })
}

/// One-call API mirroring [`crate::connected_components`].
pub fn connected_components(graph: &AdjacencyMatrix) -> Result<Labeling, GcaError> {
    Ok(run(graph)?.labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gca_graphs::connectivity::union_find_components_dense;
    use gca_graphs::{generators, GraphBuilder};

    fn check(graph: &AdjacencyMatrix) {
        let expected = union_find_components_dense(graph);
        let run = run(graph).unwrap();
        assert_eq!(run.labels.as_slice(), expected.as_slice());
    }

    #[test]
    fn basic_graphs() {
        check(&GraphBuilder::new(2).edge(0, 1).build().unwrap());
        check(&generators::path(7));
        check(&generators::ring(9));
        check(&generators::star(6));
        check(&generators::complete(8));
        check(&generators::empty(5));
    }

    #[test]
    fn random_graphs() {
        for seed in 0..6 {
            check(&generators::gnp(17, 0.15, seed));
        }
    }

    #[test]
    fn forests() {
        for seed in 0..3 {
            check(&generators::random_forest(14, 3, seed));
        }
    }

    #[test]
    fn matches_main_machine() {
        for seed in 0..4 {
            let g = generators::gnp(13, 0.25, seed);
            let a = crate::connected_components(&g).unwrap();
            let b = connected_components(&g).unwrap();
            assert_eq!(a, b, "seed {seed}");
        }
    }

    #[test]
    fn generation_count_matches_formula() {
        for n in [2usize, 4, 5, 8, 16] {
            let g = generators::gnp(n, 0.5, 1);
            let r = run(&g).unwrap();
            assert_eq!(r.generations, total_generations(n), "n = {n}");
        }
    }

    #[test]
    fn trivial_sizes() {
        let r = run(&generators::empty(0)).unwrap();
        assert_eq!(r.generations, 0);
        let r = run(&generators::empty(1)).unwrap();
        assert_eq!(r.labels.as_slice(), &[0]);
        assert_eq!(r.generations, 1);
    }

    #[test]
    fn scan_congestion_is_one() {
        // The rotated scan must never produce δ > 1.
        let g = generators::complete(9);
        let r = run(&g).unwrap();
        for m in r.metrics.entries() {
            let phase = NGen::from_number(m.ctx.phase).unwrap();
            if matches!(phase, NGen::ScanNeighbors | NGen::ScanMembers) {
                assert!(
                    m.max_congestion <= 1,
                    "scan phase {:?} had congestion {}",
                    phase,
                    m.max_congestion
                );
            }
        }
    }

    #[test]
    fn uses_far_fewer_cells_but_more_generations() {
        let n = 16usize;
        assert!(total_generations(n) > crate::complexity::total_generations(n));
    }
}
