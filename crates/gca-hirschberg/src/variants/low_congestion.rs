//! The low-congestion variant: tree-shaped reads instead of hot spots.
//!
//! Section 4 of the paper: *"While the congestion suggests that some of the
//! steps are very slow, the static nature of the communication can be used
//! to either implement the concurrent reads in a tree-like manner, or to use
//! replication for arrays C and T to get congestion down to 1. … This
//! however would require extended cells in all places."*
//!
//! This module realizes that remark as an executable machine. Every
//! Θ(n)-congestion broadcast of the main machine (generations 1, 2, 5, 6
//! and 9) is replaced by a **transpose** (one generation, δ = 1) followed by
//! **recursive doubling** (`⌈log₂·⌉` sub-generations, δ = 1): in doubling
//! sub-generation `s`, rows/columns `[2^s, 2^{s+1})` read from
//! rows/columns `[0, 2^s)` — an injective reader→target map, so no cell is
//! ever read twice in a generation. The cells are *extended* with a second
//! data register `b` that carries the row-wise replica of `C` (the
//! "replication for arrays C and T" of the paper), which in turn makes the
//! filter generations entirely read-free.
//!
//! Cost: one outer iteration takes `10 + 7·⌈log₂ n⌉ + ⌈log₂(n+1)⌉`
//! generations instead of `8 + 3·⌈log₂ n⌉` — about 2.3× more — but the
//! statically-addressed phases run at congestion ≤ 1 instead of Θ(n).
//! Only the data-dependent pointer-jumping generations keep their
//! worst-case δ = n, exactly as the paper concedes.

use crate::complexity::ceil_log2;
use gca_engine::metrics::{GenerationMetrics, MetricsLog};
use gca_engine::{
    Access, CellField, Engine, FieldShape, GcaError, GcaRule, Reads, StepCtx, Word, INFINITY,
};
use gca_graphs::{AdjacencyMatrix, Labeling};

/// Extended cell state: data `d`, replica register `b`, adjacency bit `a`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LCell {
    /// The data field `d` (node number or `∞`).
    pub d: Word,
    /// The broadcast/replica register (the paper's "extended cell").
    pub b: Word,
    /// Adjacency entry `A(row, col)`.
    pub a: bool,
}

/// Phases of the low-congestion state machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u32)]
pub enum LGen {
    /// `d ← row(index)` (once).
    Init = 0,
    /// `(j,0).b ← (j,0).d` — seed the row replica of `C(j)`.
    SeedRowB = 1,
    /// Row doubling of `b`: columns `[2^s, 2^{s+1})` read `col − 2^s`.
    RowDoubleB = 2,
    /// `(0,i).d ← (i,0).d` — transpose `C` into row 0.
    TransposeC = 3,
    /// Column doubling of `d` down to and including `D_N`.
    ColDoubleC = 4,
    /// Keep `d` where `a ∧ d ≠ b`, else `∞`. **No reads.**
    FilterNeighbors = 5,
    /// Row-wise tree-reduction minimum.
    MinReduce = 6,
    /// Column 0: `∞` falls back to `C(row)` from `D_N`.
    ResolveIsolated = 7,
    /// `(0,i).b ← D_N[i].d` — transpose the saved `C` into row 0's replica.
    TransposeDnB = 8,
    /// Column doubling of `b` through the square field.
    ColDoubleB = 9,
    /// `(0,i).d ← (i,0).d` — transpose `T` into row 0.
    TransposeT = 10,
    /// Column doubling of `d` through the square field (last row keeps `C`).
    ColDoubleT = 11,
    /// Keep `d` where `b = row ∧ d ≠ row`, else `∞`. **No reads.**
    FilterMembers = 12,
    /// Row-wise tree-reduction minimum.
    MinReduceMembers = 13,
    /// Column 0: `∞` falls back to `C(row)` from `D_N`.
    ResolveMembers = 14,
    /// Row doubling of `d` from column 0 (spreads `T(row)` across rows).
    RowDoubleT = 15,
    /// `D_N[i] ← (i,0).d` — save `T` into the last row.
    SaveTDn = 16,
    /// Pointer jumping (data-dependent; congestion as in the main machine).
    Jump = 17,
    /// `C ← min(C, T(C))` via column 1 (data-dependent).
    FinalMin = 18,
}

impl LGen {
    const ALL: [LGen; 19] = [
        LGen::Init,
        LGen::SeedRowB,
        LGen::RowDoubleB,
        LGen::TransposeC,
        LGen::ColDoubleC,
        LGen::FilterNeighbors,
        LGen::MinReduce,
        LGen::ResolveIsolated,
        LGen::TransposeDnB,
        LGen::ColDoubleB,
        LGen::TransposeT,
        LGen::ColDoubleT,
        LGen::FilterMembers,
        LGen::MinReduceMembers,
        LGen::ResolveMembers,
        LGen::RowDoubleT,
        LGen::SaveTDn,
        LGen::Jump,
        LGen::FinalMin,
    ];

    fn from_number(v: u32) -> Option<LGen> {
        LGen::ALL.get(v as usize).copied()
    }

    /// Is this a data-dependent phase (where congestion may exceed 1)?
    pub fn is_data_dependent(self) -> bool {
        matches!(self, LGen::Jump | LGen::FinalMin)
    }
}

/// The uniform rule of the low-congestion machine.
#[derive(Clone, Copy, Debug)]
pub struct LowCongestionRule {
    n: usize,
}

impl LowCongestionRule {
    /// Rule for a graph of `n` nodes.
    pub fn new(n: usize) -> Self {
        LowCongestionRule { n }
    }

    #[inline]
    fn dn_index(&self, k: usize) -> usize {
        self.n * self.n + k
    }

    /// Is `v` inside the half-open doubling window `[2^s, 2^{s+1})`?
    #[inline]
    fn in_window(v: usize, s: u32) -> bool {
        let lo = 1usize << s;
        v >= lo && v < lo << 1
    }

    #[inline]
    fn reduces(&self, row: usize, col: usize, s: u32) -> bool {
        let stride = 1usize << s;
        row < self.n && col.is_multiple_of(stride << 1) && col + stride < self.n
    }

    fn phase(ctx: &StepCtx) -> LGen {
        LGen::from_number(ctx.phase)
            .unwrap_or_else(|| panic!("invalid low-congestion phase {}", ctx.phase))
    }
}

impl GcaRule for LowCongestionRule {
    type State = LCell;

    fn access(&self, ctx: &StepCtx, shape: &FieldShape, index: usize, own: &LCell) -> Access {
        let n = self.n;
        let row = shape.row(index);
        let col = shape.col(index);
        let s = ctx.subgeneration;
        match Self::phase(ctx) {
            LGen::Init | LGen::SeedRowB | LGen::FilterNeighbors | LGen::FilterMembers => {
                Access::None
            }
            LGen::RowDoubleB => {
                if row < n && Self::in_window(col, s) {
                    Access::One(index - (1 << s))
                } else {
                    Access::None
                }
            }
            LGen::TransposeC | LGen::TransposeT => {
                if row == 0 {
                    Access::One(col * n)
                } else {
                    Access::None
                }
            }
            LGen::ColDoubleC => {
                // Rows [2^s, 2^{s+1}) ∩ [1, n] read the row 2^s above.
                if row >= 1 && row <= n && Self::in_window(row, s) {
                    Access::One(index - (1 << s) * n)
                } else {
                    Access::None
                }
            }
            LGen::ColDoubleB | LGen::ColDoubleT => {
                if row >= 1 && row < n && Self::in_window(row, s) {
                    Access::One(index - (1 << s) * n)
                } else {
                    Access::None
                }
            }
            LGen::MinReduce | LGen::MinReduceMembers => {
                if self.reduces(row, col, s) {
                    Access::One(index + (1 << s))
                } else {
                    Access::None
                }
            }
            LGen::ResolveIsolated | LGen::ResolveMembers => {
                if col == 0 && row < n {
                    Access::One(self.dn_index(row))
                } else {
                    Access::None
                }
            }
            LGen::TransposeDnB => {
                if row == 0 {
                    Access::One(self.dn_index(col))
                } else {
                    Access::None
                }
            }
            LGen::RowDoubleT => {
                if row < n && Self::in_window(col, s) {
                    Access::One(index - (1 << s))
                } else {
                    Access::None
                }
            }
            LGen::SaveTDn => {
                if row == n {
                    Access::One(col * n)
                } else {
                    Access::None
                }
            }
            LGen::Jump => {
                if col == 0 && row < n {
                    Access::One((own.d as usize) * n)
                } else {
                    Access::None
                }
            }
            LGen::FinalMin => {
                if col == 0 && row < n {
                    Access::One((own.d as usize) * n + 1)
                } else {
                    Access::None
                }
            }
        }
    }

    fn evolve(
        &self,
        ctx: &StepCtx,
        shape: &FieldShape,
        index: usize,
        own: &LCell,
        reads: Reads<'_, LCell>,
    ) -> LCell {
        let n = self.n;
        let row = shape.row(index);
        let col = shape.col(index);
        match Self::phase(ctx) {
            LGen::Init => LCell {
                d: row as Word,
                ..*own
            },
            LGen::SeedRowB => {
                if col == 0 && row < n {
                    LCell { b: own.d, ..*own }
                } else {
                    *own
                }
            }
            LGen::RowDoubleB | LGen::ColDoubleB => match reads.first() {
                Some(src) => LCell { b: src.b, ..*own },
                None => *own,
            },
            LGen::TransposeC | LGen::ColDoubleC | LGen::ColDoubleT | LGen::TransposeT
            | LGen::RowDoubleT | LGen::SaveTDn => match reads.first() {
                Some(src) => LCell { d: src.d, ..*own },
                None => *own,
            },
            LGen::TransposeDnB => match reads.first() {
                Some(src) => LCell { b: src.d, ..*own },
                None => *own,
            },
            LGen::FilterNeighbors => {
                if row < n {
                    if own.a && own.d != own.b {
                        *own
                    } else {
                        LCell {
                            d: INFINITY,
                            ..*own
                        }
                    }
                } else {
                    *own
                }
            }
            LGen::FilterMembers => {
                if row < n {
                    let j = row as Word;
                    if own.b == j && own.d != j {
                        *own
                    } else {
                        LCell {
                            d: INFINITY,
                            ..*own
                        }
                    }
                } else {
                    *own
                }
            }
            LGen::MinReduce | LGen::MinReduceMembers => match reads.first() {
                Some(neigh) => LCell {
                    d: own.d.min(neigh.d),
                    ..*own
                },
                None => *own,
            },
            LGen::ResolveIsolated | LGen::ResolveMembers => match reads.first() {
                Some(saved) if own.d == INFINITY => LCell { d: saved.d, ..*own },
                _ => *own,
            },
            LGen::Jump => match reads.first() {
                Some(t) => LCell { d: t.d, ..*own },
                None => *own,
            },
            LGen::FinalMin => match reads.first() {
                Some(t) => LCell {
                    d: own.d.min(t.d),
                    ..*own
                },
                None => *own,
            },
        }
    }

    fn is_active(&self, ctx: &StepCtx, shape: &FieldShape, index: usize, own: &LCell) -> bool {
        // Active = cells whose data operation is not the identity; the
        // doubling phases' activity is exactly their read windows.
        !matches!(self.access(ctx, shape, index, own), Access::None)
            || matches!(
                Self::phase(ctx),
                LGen::Init | LGen::FilterNeighbors | LGen::FilterMembers
            ) && shape.row(index) < self.n.max(1)
            || matches!(Self::phase(ctx), LGen::SeedRowB)
                && shape.col(index) == 0
                && shape.row(index) < self.n
    }

    fn name(&self) -> &str {
        "hirschberg-low-congestion"
    }
}

/// The `(phase, sub-generation)` schedule of one outer iteration.
pub fn iteration_schedule(n: usize) -> Vec<(LGen, u32)> {
    let l = ceil_log2(n);
    let l1 = ceil_log2(n + 1);
    let mut v = Vec::new();
    let push_iter = |g: LGen, count: u32, v: &mut Vec<(LGen, u32)>| {
        for s in 0..count {
            v.push((g, s));
        }
    };
    v.push((LGen::SeedRowB, 0));
    push_iter(LGen::RowDoubleB, l, &mut v);
    v.push((LGen::TransposeC, 0));
    push_iter(LGen::ColDoubleC, l1, &mut v);
    v.push((LGen::FilterNeighbors, 0));
    push_iter(LGen::MinReduce, l, &mut v);
    v.push((LGen::ResolveIsolated, 0));
    v.push((LGen::TransposeDnB, 0));
    push_iter(LGen::ColDoubleB, l, &mut v);
    v.push((LGen::TransposeT, 0));
    push_iter(LGen::ColDoubleT, l, &mut v);
    v.push((LGen::FilterMembers, 0));
    push_iter(LGen::MinReduceMembers, l, &mut v);
    v.push((LGen::ResolveMembers, 0));
    push_iter(LGen::RowDoubleT, l, &mut v);
    v.push((LGen::SaveTDn, 0));
    push_iter(LGen::Jump, l, &mut v);
    v.push((LGen::FinalMin, 0));
    v
}

/// Generations per outer iteration: `10 + 7·⌈log₂ n⌉ + ⌈log₂(n+1)⌉`.
pub fn generations_per_iteration(n: usize) -> u64 {
    10 + 7 * u64::from(ceil_log2(n)) + u64::from(ceil_log2(n + 1))
}

/// Total generations: `1 + ⌈log₂ n⌉ · generations_per_iteration(n)`.
pub fn total_generations(n: usize) -> u64 {
    1 + u64::from(ceil_log2(n)) * generations_per_iteration(n)
}

/// Result of a low-congestion run.
#[derive(Clone, Debug)]
pub struct LowCongestionRun {
    /// Canonical component labeling.
    pub labels: Labeling,
    /// Total generations executed.
    pub generations: u64,
    /// Outer iterations executed.
    pub iterations: u32,
    /// Per-generation metrics.
    pub metrics: MetricsLog,
}

impl LowCongestionRun {
    /// Worst congestion among the statically-addressed phases (the paper's
    /// claim is that this is 1; the data-dependent jump phases are
    /// excluded, as in the paper).
    pub fn static_max_congestion(&self) -> u32 {
        self.metrics
            .entries()
            .iter()
            .filter(|m| {
                LGen::from_number(m.ctx.phase)
                    .map(|g| !g.is_data_dependent())
                    .unwrap_or(false)
            })
            .map(|m| m.max_congestion)
            .max()
            .unwrap_or(0)
    }
}

/// Runs the low-congestion machine on `graph`.
pub fn run(graph: &AdjacencyMatrix) -> Result<LowCongestionRun, GcaError> {
    run_with_engine(graph, Engine::sequential())
}

/// Runs with an explicit engine configuration.
pub fn run_with_engine(
    graph: &AdjacencyMatrix,
    mut engine: Engine,
) -> Result<LowCongestionRun, GcaError> {
    let n = graph.n();
    if n == 0 {
        return Ok(LowCongestionRun {
            labels: Labeling::empty(),
            generations: 0,
            iterations: 0,
            metrics: MetricsLog::new(),
        });
    }
    let shape = FieldShape::new(n + 1, n)?;
    let mut field = CellField::from_fn(shape, |index| {
        let row = shape.row(index);
        let col = shape.col(index);
        LCell {
            d: 0,
            b: 0,
            a: row < n && row != col && graph.has_edge(row, col),
        }
    });
    let rule = LowCongestionRule::new(n);
    let mut metrics = MetricsLog::new();
    let mut step = |field: &mut CellField<LCell>,
                    engine: &mut Engine,
                    gen: LGen,
                    sub: u32|
     -> Result<(), GcaError> {
        let rep = engine.step(field, &rule, gen as u32, sub)?;
        if let Some(h) = rep.congestion.as_ref() {
            metrics.push(GenerationMetrics::new(rep.ctx, rep.active_cells, h));
        }
        Ok(())
    };

    step(&mut field, &mut engine, LGen::Init, 0)?;
    let iterations = ceil_log2(n);
    let schedule = iteration_schedule(n);
    for _ in 0..iterations {
        for &(g, s) in &schedule {
            step(&mut field, &mut engine, g, s)?;
        }
    }

    let labels = crate::machine_labeling((0..n).map(|j| field.get(j * n).d as usize).collect())?;
    Ok(LowCongestionRun {
        labels,
        generations: engine.generation(),
        iterations,
        metrics,
    })
}

/// One-call API mirroring [`crate::connected_components`].
pub fn connected_components(graph: &AdjacencyMatrix) -> Result<Labeling, GcaError> {
    Ok(run(graph)?.labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gca_graphs::connectivity::union_find_components_dense;
    use gca_graphs::{generators, GraphBuilder};

    fn check(graph: &AdjacencyMatrix) {
        let expected = union_find_components_dense(graph);
        let r = run(graph).unwrap();
        assert_eq!(
            r.labels.as_slice(),
            expected.as_slice(),
            "low-congestion disagrees on {graph:?}"
        );
    }

    #[test]
    fn basic_graphs() {
        check(&GraphBuilder::new(2).edge(0, 1).build().unwrap());
        check(&generators::path(6));
        check(&generators::ring(8));
        check(&generators::star(7));
        check(&generators::complete(5));
        check(&generators::empty(4));
    }

    #[test]
    fn random_graphs() {
        for seed in 0..6 {
            check(&generators::gnp(15, 0.18, seed));
        }
    }

    #[test]
    fn non_power_of_two_sizes() {
        for n in [3usize, 5, 6, 7, 9, 11] {
            check(&generators::gnp(n, 0.3, n as u64));
        }
    }

    #[test]
    fn matches_main_machine() {
        for seed in 0..4 {
            let g = generators::gnp(12, 0.25, seed);
            let a = crate::connected_components(&g).unwrap();
            let b = connected_components(&g).unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn static_congestion_is_at_most_one() {
        // The headline claim of Section 4: replication/tree distribution
        // brings the congestion of the static phases down to 1.
        for seed in 0..3 {
            let g = generators::gnp(16, 0.4, seed);
            let r = run(&g).unwrap();
            assert!(
                r.static_max_congestion() <= 1,
                "static congestion {} > 1",
                r.static_max_congestion()
            );
        }
    }

    #[test]
    fn static_congestion_one_on_star() {
        let r = run(&generators::star(16)).unwrap();
        assert!(r.static_max_congestion() <= 1);
        // The data-dependent jump still hits δ = n on the star, as conceded.
        let jump_max = r
            .metrics
            .entries()
            .iter()
            .filter(|m| LGen::from_number(m.ctx.phase) == Some(LGen::Jump))
            .map(|m| m.max_congestion)
            .max()
            .unwrap();
        assert!(jump_max > 1);
    }

    #[test]
    fn generation_count_matches_formula() {
        for n in [2usize, 4, 7, 16] {
            let g = generators::gnp(n, 0.5, 9);
            let r = run(&g).unwrap();
            assert_eq!(r.generations, total_generations(n), "n = {n}");
        }
    }

    #[test]
    fn costs_more_generations_than_main() {
        assert!(total_generations(16) > crate::complexity::total_generations(16));
    }

    #[test]
    fn trivial_sizes() {
        assert_eq!(run(&generators::empty(0)).unwrap().generations, 0);
        let r = run(&generators::empty(1)).unwrap();
        assert_eq!(r.labels.as_slice(), &[0]);
    }

    #[test]
    fn schedule_length_matches_formula() {
        for n in [2usize, 5, 8, 16] {
            assert_eq!(
                iteration_schedule(n).len() as u64,
                generations_per_iteration(n),
                "n = {n}"
            );
        }
    }
}
