//! The two-handed variant: a second pointer per cell buys back both the
//! broadcast generations **and** the extra bottom row.
//!
//! The paper (Section 1): *"We call the GCA model one handed if only one
//! neighbor can be addressed, two handed if two neighbors can be addressed
//! and so on. In our investigations about GCA algorithms we found out that
//! most of them can be described with only one pointer."* The main machine
//! is one-handed and pays twice for it: generations 1/5 exist only to
//! broadcast `C`/`T` so the filters can compare two values with one read,
//! and the extra row `D_N` exists only to keep saved copies reachable.
//!
//! With **two** hands the filter generation reads `C(i)` and `C(j)`
//! directly from column 0 (`<i>[0]` and `<j>[0]`), latching `C(row)` into a
//! second register `e` on the way; the step-3 filter then needs only *one*
//! read, because a GCA read returns the whole neighbor state — `<i>[0]`
//! carries `T(i)` in `d` and `C(i)` in `e` simultaneously. Consequences:
//!
//! * one outer iteration shrinks from `8 + 3·log n` to `6 + 3·log n`
//!   generations — **exactly the PRAM reference's step count**, so the
//!   one-handed mapping overhead measured by `emulation_overhead` is
//!   entirely a broadcast cost;
//! * the bottom row `D_N` disappears: the field is `n × n`, not `(n+1) × n`;
//! * the price is congestion (the filter's column-0 reads reach δ = 2n
//!   against the one-handed machine's n+1) and a second read port per cell
//!   (cf. the cost model's extended cells).

use crate::complexity::ceil_log2;
use gca_engine::metrics::{GenerationMetrics, MetricsLog};
use gca_engine::{
    Access, CellField, Engine, FieldShape, GcaError, GcaRule, Reads, StepCtx, Word, INFINITY,
};
use gca_graphs::{AdjacencyMatrix, Labeling};

/// Two-handed cell: data `d`, latch register `e` (carries `C(row)` through
/// the reductions, and `C(i)` alongside `T(i)` in column 0), adjacency `a`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TCell {
    /// Primary data register.
    pub d: Word,
    /// Latch register.
    pub e: Word,
    /// Adjacency entry `A(row, col)`.
    pub a: bool,
}

/// Phases of the two-handed machine (one iteration = `6 + 3·log n` gens).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u32)]
pub enum TGen {
    /// `d ← row` everywhere (step 1; `e` is dont-care until latched).
    Init = 0,
    /// Step-2 filter, two-handed: cell `(j,i)` reads `<i>[0]` and `<j>[0]`;
    /// `d ← C(i)` if `A ∧ C(i) ≠ C(j)` else `∞`; latches `e ← C(j)`.
    FilterNeighbors = 1,
    /// Row-wise min tree reduction (`⌈log₂ n⌉` sub-generations).
    MinReduce = 2,
    /// Column 0, **no reads**: `d ← (d = ∞ ? e : d)` — the step-2 `T(row)`,
    /// with `C(row)` still latched in `e`.
    ResolveIsolated = 3,
    /// Step-3 filter, one read returns both values: cell `(j,i)` reads
    /// `<i>[0]` (`d* = T(i)`, `e* = C(i)`); `d ← T(i)` if `C(i) = j ∧
    /// T(i) ≠ j` else `∞`.
    FilterMembers = 4,
    /// Reduction again.
    MinReduceMembers = 5,
    /// Column 0, no reads: the step-3 fallback — the new `C(row)`.
    ResolveMembers = 6,
    /// Copy the new `C` across each row (fills column 1 with the pre-jump
    /// `C` = `T` that `FinalMin` reads).
    CopyT = 7,
    /// Pointer jumping on column 0 (`⌈log₂ n⌉` sub-generations).
    PointerJump = 8,
    /// `C ← min(C, T(C))` via column 1 of row `C`.
    FinalMin = 9,
}

impl TGen {
    fn from_number(v: u32) -> Option<TGen> {
        use TGen::*;
        [
            Init,
            FilterNeighbors,
            MinReduce,
            ResolveIsolated,
            FilterMembers,
            MinReduceMembers,
            ResolveMembers,
            CopyT,
            PointerJump,
            FinalMin,
        ]
        .get(v as usize)
        .copied()
    }
}

/// The uniform two-handed rule over the `n × n` field.
#[derive(Clone, Copy, Debug)]
pub struct TwoHandedRule {
    n: usize,
}

impl TwoHandedRule {
    /// Rule for a graph of `n` nodes.
    pub fn new(n: usize) -> Self {
        TwoHandedRule { n }
    }

    #[inline]
    fn reduces(&self, col: usize, s: u32) -> bool {
        let stride = 1usize << s;
        col.is_multiple_of(stride << 1) && col + stride < self.n
    }

    fn phase(ctx: &StepCtx) -> TGen {
        TGen::from_number(ctx.phase)
            .unwrap_or_else(|| panic!("invalid two-handed phase {}", ctx.phase))
    }
}

impl GcaRule for TwoHandedRule {
    type State = TCell;

    fn access(&self, ctx: &StepCtx, shape: &FieldShape, index: usize, own: &TCell) -> Access {
        let n = self.n;
        let row = shape.row(index);
        let col = shape.col(index);
        match Self::phase(ctx) {
            TGen::Init | TGen::ResolveIsolated | TGen::ResolveMembers => Access::None,
            TGen::FilterNeighbors => Access::Two(col * n, row * n),
            TGen::MinReduce | TGen::MinReduceMembers => {
                if self.reduces(col, ctx.subgeneration) {
                    Access::One(index + (1 << ctx.subgeneration))
                } else {
                    Access::None
                }
            }
            TGen::FilterMembers => Access::One(col * n),
            TGen::CopyT => {
                if col == 0 {
                    Access::None
                } else {
                    Access::One(row * n)
                }
            }
            TGen::PointerJump => {
                if col == 0 {
                    Access::One((own.d as usize) * n)
                } else {
                    Access::None
                }
            }
            TGen::FinalMin => {
                if col == 0 {
                    Access::One((own.d as usize) * n + 1)
                } else {
                    Access::None
                }
            }
        }
    }

    fn evolve(
        &self,
        ctx: &StepCtx,
        shape: &FieldShape,
        _index: usize,
        own: &TCell,
        reads: Reads<'_, TCell>,
    ) -> TCell {
        match Self::phase(ctx) {
            TGen::Init => TCell {
                d: shape.row(_index) as Word,
                ..*own
            },
            TGen::FilterNeighbors => {
                // Both hands are always issued for this phase; a missing
                // read degrades to "no candidate" (`d = ∞`) instead of a
                // panic, keeping the transfer function total.
                match (reads.first(), reads.second()) {
                    (Some(hand_i), Some(hand_j)) => {
                        let (c_i, c_j) = (hand_i.d, hand_j.d);
                        TCell {
                            d: if own.a && c_i != c_j { c_i } else { INFINITY },
                            e: c_j,
                            a: own.a,
                        }
                    }
                    _ => TCell {
                        d: INFINITY,
                        e: own.e,
                        a: own.a,
                    },
                }
            }
            TGen::MinReduce | TGen::MinReduceMembers => match reads.first() {
                Some(r) => TCell {
                    d: own.d.min(r.d),
                    ..*own
                },
                None => *own,
            },
            TGen::ResolveIsolated | TGen::ResolveMembers => {
                if shape.col(_index) == 0 {
                    TCell {
                        d: if own.d == INFINITY { own.e } else { own.d },
                        ..*own
                    }
                } else {
                    *own
                }
            }
            TGen::FilterMembers => {
                let src = reads.expect_first("filter-members");
                let t_i = src.d;
                let c_i = src.e;
                let j = shape.row(_index) as Word;
                TCell {
                    d: if c_i == j && t_i != j { t_i } else { INFINITY },
                    ..*own
                }
            }
            TGen::CopyT => match reads.first() {
                Some(src) => TCell { d: src.d, ..*own },
                None => *own, // column 0 already holds the new C
            },
            TGen::PointerJump => match reads.first() {
                Some(t) => TCell { d: t.d, ..*own },
                None => *own,
            },
            TGen::FinalMin => match reads.first() {
                Some(t) => TCell {
                    d: own.d.min(t.d),
                    ..*own
                },
                None => *own,
            },
        }
    }

    fn is_active(&self, ctx: &StepCtx, shape: &FieldShape, index: usize, _own: &TCell) -> bool {
        let col = shape.col(index);
        match Self::phase(ctx) {
            TGen::Init | TGen::FilterNeighbors | TGen::FilterMembers => true,
            TGen::MinReduce | TGen::MinReduceMembers => self.reduces(col, ctx.subgeneration),
            TGen::ResolveIsolated | TGen::ResolveMembers | TGen::PointerJump | TGen::FinalMin => {
                col == 0
            }
            TGen::CopyT => col != 0,
        }
    }

    fn name(&self) -> &str {
        "hirschberg-two-handed"
    }
}

/// Generations per outer iteration: `6 + 3·⌈log₂ n⌉` — the PRAM reference's
/// step count, reached by spending a second hand instead of broadcasts.
pub fn generations_per_iteration(n: usize) -> u64 {
    6 + 3 * u64::from(ceil_log2(n))
}

/// Total generations: `1 + ⌈log₂ n⌉ · (3·⌈log₂ n⌉ + 6)`.
pub fn total_generations(n: usize) -> u64 {
    let l = u64::from(ceil_log2(n));
    1 + l * (3 * l + 6)
}

/// Result of a two-handed run.
#[derive(Clone, Debug)]
pub struct TwoHandedRun {
    /// Canonical component labeling.
    pub labels: Labeling,
    /// Total generations executed.
    pub generations: u64,
    /// Outer iterations executed.
    pub iterations: u32,
    /// Per-generation metrics.
    pub metrics: MetricsLog,
}

/// Runs the two-handed machine on `graph` (an `n × n` field — no `D_N`).
pub fn run(graph: &AdjacencyMatrix) -> Result<TwoHandedRun, GcaError> {
    let n = graph.n();
    if n == 0 {
        return Ok(TwoHandedRun {
            labels: Labeling::empty(),
            generations: 0,
            iterations: 0,
            metrics: MetricsLog::new(),
        });
    }
    let shape = FieldShape::new(n, n)?;
    let mut field = CellField::from_fn(shape, |index| {
        let row = shape.row(index);
        let col = shape.col(index);
        TCell {
            d: 0,
            e: 0,
            a: row != col && graph.has_edge(row, col),
        }
    });
    let rule = TwoHandedRule::new(n);
    let mut engine = Engine::sequential();
    let mut metrics = MetricsLog::new();
    let mut step = |field: &mut CellField<TCell>,
                    engine: &mut Engine,
                    gen: TGen,
                    sub: u32|
     -> Result<(), GcaError> {
        let rep = engine.step(field, &rule, gen as u32, sub)?;
        if let Some(h) = rep.congestion.as_ref() {
            metrics.push(GenerationMetrics::new(rep.ctx, rep.active_cells, h));
        }
        Ok(())
    };

    step(&mut field, &mut engine, TGen::Init, 0)?;
    let l = ceil_log2(n);
    for _ in 0..l {
        step(&mut field, &mut engine, TGen::FilterNeighbors, 0)?;
        for s in 0..l {
            step(&mut field, &mut engine, TGen::MinReduce, s)?;
        }
        step(&mut field, &mut engine, TGen::ResolveIsolated, 0)?;
        step(&mut field, &mut engine, TGen::FilterMembers, 0)?;
        for s in 0..l {
            step(&mut field, &mut engine, TGen::MinReduceMembers, s)?;
        }
        step(&mut field, &mut engine, TGen::ResolveMembers, 0)?;
        step(&mut field, &mut engine, TGen::CopyT, 0)?;
        for s in 0..l {
            step(&mut field, &mut engine, TGen::PointerJump, s)?;
        }
        step(&mut field, &mut engine, TGen::FinalMin, 0)?;
    }

    let labels = crate::machine_labeling((0..n).map(|j| field.get(j * n).d as usize).collect())?;
    Ok(TwoHandedRun {
        labels,
        generations: engine.generation(),
        iterations: l,
        metrics,
    })
}

/// One-call API mirroring [`crate::connected_components`].
pub fn connected_components(graph: &AdjacencyMatrix) -> Result<Labeling, GcaError> {
    Ok(run(graph)?.labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gca_graphs::connectivity::union_find_components_dense;
    use gca_graphs::{generators, GraphBuilder};

    fn check(graph: &AdjacencyMatrix) {
        let expected = union_find_components_dense(graph);
        let r = run(graph).unwrap();
        assert_eq!(
            r.labels.as_slice(),
            expected.as_slice(),
            "two-handed disagrees on {graph:?}"
        );
    }

    #[test]
    fn basic_graphs() {
        check(&GraphBuilder::new(2).edge(0, 1).build().unwrap());
        check(&generators::path(6));
        check(&generators::ring(8));
        check(&generators::star(7));
        check(&generators::complete(6));
        check(&generators::empty(5));
    }

    #[test]
    fn random_graphs() {
        for seed in 0..8 {
            check(&generators::gnp(15, 0.2, seed));
        }
    }

    #[test]
    fn non_power_of_two_sizes() {
        for n in [3usize, 5, 7, 9, 12] {
            check(&generators::gnp(n, 0.35, n as u64));
        }
    }

    #[test]
    fn forests_and_planted() {
        for seed in 0..4 {
            check(&generators::random_forest(16, 3, seed));
            let p = generators::planted_components(18, 4, 0.4, seed);
            let r = run(&p.graph).unwrap();
            assert!(r.labels.same_partition(&p.expected_labels()));
        }
    }

    #[test]
    fn generation_count_matches_pram_reference() {
        for n in [2usize, 4, 8, 16, 11] {
            let g = generators::gnp(n, 0.5, 3);
            let r = run(&g).unwrap();
            assert_eq!(r.generations, total_generations(n), "n = {n}");
            // The headline: two hands close the gap to the PRAM step count
            // (1 + L(3L + 6) — cross-checked against gca-pram's formula in
            // the workspace integration tests).
            let l = u64::from(ceil_log2(n));
            assert_eq!(r.generations, 1 + l * (3 * l + 6), "n = {n}");
        }
    }

    #[test]
    fn saves_two_generations_per_iteration_vs_one_handed() {
        for n in [4usize, 16, 64] {
            let one_handed = crate::complexity::total_generations(n);
            let two_handed = total_generations(n);
            let l = u64::from(ceil_log2(n));
            assert_eq!(one_handed - two_handed, 2 * l, "n = {n}");
        }
    }

    #[test]
    fn uses_n_squared_cells_without_bottom_row() {
        let g = generators::gnp(8, 0.3, 1);
        let r = run(&g).unwrap();
        // The metrics log exposes the field size via read targets: every
        // congestion histogram covers exactly n² cells.
        assert!(r
            .metrics
            .entries()
            .iter()
            .all(|m| m.congestion_groups.values().sum::<usize>() == 64));
    }

    #[test]
    fn filter_congestion_reaches_two_n() {
        // The price of two hands: column-0 cells are read by their whole
        // column AND their whole row in the filter generation.
        let n = 8usize;
        let g = generators::complete(n);
        let r = run(&g).unwrap();
        let filter_max = r
            .metrics
            .entries()
            .iter()
            .filter(|m| m.ctx.phase == TGen::FilterNeighbors as u32)
            .map(|m| m.max_congestion)
            .max()
            .unwrap();
        assert_eq!(filter_max as usize, 2 * n);
    }

    #[test]
    fn trivial_sizes() {
        assert_eq!(run(&generators::empty(0)).unwrap().generations, 0);
        let r = run(&generators::empty(1)).unwrap();
        assert_eq!(r.labels.as_slice(), &[0]);
        assert_eq!(r.generations, 1);
    }

    #[test]
    fn matches_main_machine() {
        for seed in 0..4 {
            let g = generators::gnp(13, 0.25, seed);
            let a = crate::connected_components(&g).unwrap();
            let b = connected_components(&g).unwrap();
            assert_eq!(a, b, "seed {seed}");
        }
    }
}
