//! Congestion-weighted time models.
//!
//! Section 1 of the paper: *"The duration of one step is bound from below
//! by the maximum congestion of any cell in this step. As the GCA
//! implements a particular algorithm, steps with known low congestion can
//! be executed faster than those with high congestion."* Section 4 then
//! offers two ways to realize the concurrent reads: full wiring (one clock
//! per generation regardless of δ) or tree-shaped distribution.
//!
//! This module turns those remarks into evaluable cost models, so the
//! main machine and the low-congestion variant can be compared under the
//! interconnect assumptions that actually motivate the variant.

use gca_engine::metrics::MetricsLog;

/// How concurrent reads are realized by the interconnect.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InterconnectModel {
    /// Fully wired multiplexers (the Section-4 FPGA design): every
    /// generation costs one cycle, independent of congestion.
    Unit,
    /// A single port per cell: δ concurrent reads serialize into δ cycles.
    SerializedReads,
    /// Tree-shaped distribution of each hot value: δ concurrent reads cost
    /// `⌈log₂ δ⌉ + 1` cycles.
    TreeDistribution,
}

impl InterconnectModel {
    /// Cycles one generation costs under this model, given its maximum
    /// congestion δ.
    pub fn generation_cycles(self, max_congestion: u32) -> u64 {
        let d = u64::from(max_congestion.max(1));
        match self {
            InterconnectModel::Unit => 1,
            InterconnectModel::SerializedReads => d,
            InterconnectModel::TreeDistribution => {
                u64::from(gca_engine::ceil_log2(d as usize)) + 1
            }
        }
    }

    /// Total cycles of a recorded run under this model.
    pub fn run_cycles(self, metrics: &MetricsLog) -> u64 {
        metrics
            .entries()
            .iter()
            .map(|m| self.generation_cycles(m.max_congestion))
            .sum()
    }
}

/// Cycle counts of one run under all three interconnect models.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimingProfile {
    /// Generations executed.
    pub generations: u64,
    /// Cycles under [`InterconnectModel::Unit`].
    pub unit: u64,
    /// Cycles under [`InterconnectModel::SerializedReads`].
    pub serialized: u64,
    /// Cycles under [`InterconnectModel::TreeDistribution`].
    pub tree: u64,
}

/// Profiles a recorded run under every interconnect model.
pub fn profile(metrics: &MetricsLog) -> TimingProfile {
    TimingProfile {
        generations: metrics.generations() as u64,
        unit: InterconnectModel::Unit.run_cycles(metrics),
        serialized: InterconnectModel::SerializedReads.run_cycles(metrics),
        tree: InterconnectModel::TreeDistribution.run_cycles(metrics),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variants::low_congestion;
    use crate::HirschbergGca;
    use gca_graphs::generators;

    #[test]
    fn generation_cycle_models() {
        assert_eq!(InterconnectModel::Unit.generation_cycles(17), 1);
        assert_eq!(InterconnectModel::SerializedReads.generation_cycles(17), 17);
        assert_eq!(InterconnectModel::SerializedReads.generation_cycles(0), 1);
        assert_eq!(InterconnectModel::TreeDistribution.generation_cycles(1), 1);
        assert_eq!(InterconnectModel::TreeDistribution.generation_cycles(8), 4);
        assert_eq!(InterconnectModel::TreeDistribution.generation_cycles(17), 6);
    }

    #[test]
    fn unit_model_counts_generations() {
        let g = generators::gnp(8, 0.4, 1);
        let run = HirschbergGca::new().run(&g).unwrap();
        let p = profile(&run.metrics);
        assert_eq!(p.unit, run.generations);
        assert_eq!(p.generations, run.generations);
        // Serialization can only cost more.
        assert!(p.serialized >= p.unit);
        assert!(p.tree >= p.unit && p.tree <= p.serialized);
    }

    /// The motivation of the low-congestion variant, quantified: under a
    /// serialized (single-port) interconnect it beats the main machine even
    /// though it runs ~2× more generations; under the fully wired model the
    /// main machine wins.
    #[test]
    fn variant_trade_off_under_models() {
        let n = 16usize;
        let g = generators::gnp(n, 0.5, 7);

        let main = HirschbergGca::new().run(&g).unwrap();
        let lc = low_congestion::run(&g).unwrap();
        let pm = profile(&main.metrics);
        let pl = profile(&lc.metrics);

        assert!(pm.unit < pl.unit, "fully wired: main wins ({} vs {})", pm.unit, pl.unit);
        assert!(
            pl.serialized < pm.serialized,
            "single port: low-congestion wins ({} vs {})",
            pl.serialized,
            pm.serialized
        );
    }

    #[test]
    fn empty_log_profiles_to_zero() {
        let p = profile(&MetricsLog::new());
        assert_eq!(
            p,
            TimingProfile {
                generations: 0,
                unit: 0,
                serialized: 0,
                tree: 0
            }
        );
    }
}
