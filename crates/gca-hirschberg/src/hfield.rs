//! Struct-of-arrays view of the Hirschberg field — the fused kernels' hot
//! representation.
//!
//! [`gca_engine::CellField<HCell>`] stores the field as an array of
//! structures: every cell carries its data word `d` *and* its adjacency bit
//! `a`. The adjacency bits are immutable after [`crate::Layout::build_field`]
//! (the paper's `A` matrix is an input, never written by any generation), so
//! on the hot path every `HCell` copy moves a byte of dead weight and every
//! broadcast/copy fill is a strided struct write instead of a plain word
//! fill.
//!
//! [`HField`] splits the buffer into two planes:
//!
//! * a contiguous `Vec<Word>` **data plane** with the same linear indexing
//!   as [`crate::Layout`] (`index = row · n + col`, `D_N` at
//!   `n² .. n² + n`) — the per-generation working set; broadcasts and
//!   copies become `memcpy`-shaped fills, and row-partitioned parallel
//!   kernels split it with `split_at_mut`-safe disjoint chunks;
//! * a bit-packed **adjacency plane** (one bit per square cell) — loaded
//!   once per graph, read-only afterwards. The plane is **row-aligned**:
//!   row `r` occupies the [`HField::words_per_row`] words starting at
//!   `r · words_per_row`, column `c` is bit `c % WORD_BITS` of word
//!   `c / WORD_BITS` within the row, and the tail bits of the last word of
//!   every row are zero. Row alignment is what makes the SWAR kernels'
//!   zero-word skip sound: an all-zero adjacency word always covers cells
//!   of a single row, never a wrapped row boundary.
//!
//! Conversion happens only at the [`crate::Machine`] boundary
//! ([`HField::load`] / [`HField::store_d`]), so snapshots, the generic
//! engine path, `Validate` replay and serde all keep operating on the
//! authoritative `CellField<HCell>`.

use crate::HCell;
use gca_engine::{AdjWord, CellField, Word, WORD_BITS};

/// Reads the adjacency bit of square cell `(row, col)` from a row-aligned
/// packed plane with `wpr` words per row.
#[inline]
pub(crate) fn a_bit(plane: &[AdjWord], wpr: usize, row: usize, col: usize) -> bool {
    (plane[row * wpr + col / WORD_BITS] >> (col % WORD_BITS)) & 1 == 1
}

/// The struct-of-arrays mirror of one `(n+1) × n` Hirschberg field.
#[derive(Clone, Debug, Default)]
pub(crate) struct HField {
    /// Problem size `n`.
    pub n: usize,
    /// The data plane: `d` of every cell, `n · (n+1)` words, same linear
    /// indexing as the AoS buffer.
    pub d: Vec<Word>,
    /// The adjacency plane: `A(row, col)` bit-packed row-aligned over the
    /// `n²` square cells (the `D_N` row carries no adjacency). Immutable
    /// between [`HField::load`] calls; row-tail bits are always zero.
    pub a: Vec<AdjWord>,
    /// Packed words per adjacency row: `n.div_ceil(WORD_BITS)`.
    pub words_per_row: usize,
}

impl HField {
    /// An all-zero field for problem size `n`.
    pub fn new(n: usize) -> Self {
        let wpr = n.div_ceil(WORD_BITS);
        HField {
            n,
            d: vec![0; n * (n + 1)],
            a: vec![0; n * wpr],
            words_per_row: wpr,
        }
    }

    /// Loads both planes from the AoS field (called whenever the machine's
    /// `CellField` may have changed behind the SoA mirror's back: reset,
    /// snapshot restore, generic-path steps).
    pub fn load(&mut self, field: &CellField<HCell>) {
        let cells = field.states();
        debug_assert_eq!(cells.len(), self.n * (self.n + 1));
        self.d.clear();
        self.d.extend(cells.iter().map(|c| c.d));
        let wpr = self.n.div_ceil(WORD_BITS);
        self.words_per_row = wpr;
        self.a.clear();
        self.a.resize(self.n * wpr, 0);
        for row in 0..self.n {
            let words = &mut self.a[row * wpr..(row + 1) * wpr];
            for (col, c) in cells[row * self.n..(row + 1) * self.n].iter().enumerate() {
                if c.a {
                    words[col / WORD_BITS] |= 1 << (col % WORD_BITS);
                }
            }
        }
    }

    /// Writes the data plane back into the AoS field, leaving every
    /// adjacency bit untouched — the only direction state ever flows out
    /// (no generation writes `a`).
    pub fn store_d(&self, field: &mut CellField<HCell>) {
        for (cell, &d) in field.states_mut().iter_mut().zip(&self.d) {
            cell.d = d;
        }
    }

    /// Reads the adjacency bit of square cell `i` (linear `row · n + col`
    /// indexing; the kernels read the packed plane directly via [`a_bit`] —
    /// this accessor serves the tests).
    #[cfg(test)]
    pub fn adjacency(&self, i: usize) -> bool {
        a_bit(&self.a, self.words_per_row, i / self.n, i % self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Layout;
    use gca_graphs::generators;

    #[test]
    fn round_trip_preserves_data_and_adjacency() {
        let g = generators::gnp(9, 0.4, 3);
        let layout = Layout::new(9).unwrap();
        let mut field = layout.build_field(&g).unwrap();
        let before: Vec<HCell> = field.states().to_vec();

        let mut h = HField::new(9);
        h.load(&field);
        for (i, c) in before.iter().enumerate() {
            assert_eq!(h.d[i], c.d, "d plane at {i}");
            if i < 81 {
                assert_eq!(h.adjacency(i), c.a, "a plane at {i}");
            }
        }

        // Mutate the data plane, store back: d follows, a survives.
        for v in h.d.iter_mut() {
            *v = v.wrapping_add(7);
        }
        h.store_d(&mut field);
        for (i, c) in field.states().iter().enumerate() {
            assert_eq!(c.d, before[i].d.wrapping_add(7), "stored d at {i}");
            assert_eq!(c.a, before[i].a, "adjacency must never change at {i}");
        }
    }

    #[test]
    fn zero_size_field_is_empty() {
        let h = HField::new(0);
        assert!(h.d.is_empty());
        assert!(h.a.is_empty());
    }

    #[test]
    fn load_resizes_planes() {
        let g = generators::ring(5);
        let layout = Layout::new(5).unwrap();
        let field = layout.build_field(&g).unwrap();
        let mut h = HField::new(0);
        h.n = 5;
        h.load(&field);
        assert_eq!(h.d.len(), 30);
        // Row-aligned plane: one packed word per row.
        assert_eq!(h.words_per_row, 1);
        assert_eq!(h.a.len(), 5);
    }

    #[test]
    fn row_tail_bits_stay_zero() {
        // n = 5 leaves WORD_BITS - 5 tail bits per row word; the SWAR
        // zero-word skip relies on them never being set.
        let g = generators::complete(5);
        let layout = Layout::new(5).unwrap();
        let field = layout.build_field(&g).unwrap();
        let mut h = HField::new(5);
        h.load(&field);
        let tail_mask: AdjWord = !((1 << 5) - 1);
        for (row, &w) in h.a.iter().enumerate() {
            assert_eq!(w & tail_mask, 0, "tail bits of row {row}");
        }
    }
}
