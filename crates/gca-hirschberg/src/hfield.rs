//! Struct-of-arrays view of the Hirschberg field — the fused kernels' hot
//! representation.
//!
//! [`gca_engine::CellField<HCell>`] stores the field as an array of
//! structures: every cell carries its data word `d` *and* its adjacency bit
//! `a`. The adjacency bits are immutable after [`crate::Layout::build_field`]
//! (the paper's `A` matrix is an input, never written by any generation), so
//! on the hot path every `HCell` copy moves a byte of dead weight and every
//! broadcast/copy fill is a strided struct write instead of a plain word
//! fill.
//!
//! [`HField`] splits the buffer into two planes with the same linear
//! indexing as [`crate::Layout`] (`index = row · n + col`, `D_N` at
//! `n² .. n² + n`):
//!
//! * a contiguous `Vec<Word>` **data plane** — the per-generation working
//!   set; broadcasts and copies become `memcpy`-shaped fills, and
//!   row-partitioned parallel kernels split it with `split_at_mut`-safe
//!   disjoint chunks;
//! * a bit-packed **adjacency plane** (one bit per square cell) — loaded
//!   once per graph, read-only afterwards.
//!
//! Conversion happens only at the [`crate::Machine`] boundary
//! ([`HField::load`] / [`HField::store_d`]), so snapshots, the generic
//! engine path, `Validate` replay and serde all keep operating on the
//! authoritative `CellField<HCell>`.

use crate::HCell;
use gca_engine::{CellField, Word};

/// Reads bit `i` of a packed adjacency plane.
#[inline]
pub(crate) fn a_bit(plane: &[u64], i: usize) -> bool {
    (plane[i >> 6] >> (i & 63)) & 1 == 1
}

/// The struct-of-arrays mirror of one `(n+1) × n` Hirschberg field.
#[derive(Clone, Debug, Default)]
pub(crate) struct HField {
    /// Problem size `n`.
    pub n: usize,
    /// The data plane: `d` of every cell, `n · (n+1)` words, same linear
    /// indexing as the AoS buffer.
    pub d: Vec<Word>,
    /// The adjacency plane: `A(row, col)` bit-packed over the `n²` square
    /// cells (the `D_N` row carries no adjacency). Immutable between
    /// [`HField::load`] calls.
    pub a: Vec<u64>,
}

impl HField {
    /// An all-zero field for problem size `n`.
    pub fn new(n: usize) -> Self {
        HField {
            n,
            d: vec![0; n * (n + 1)],
            a: vec![0; (n * n).div_ceil(64)],
        }
    }

    /// Loads both planes from the AoS field (called whenever the machine's
    /// `CellField` may have changed behind the SoA mirror's back: reset,
    /// snapshot restore, generic-path steps).
    pub fn load(&mut self, field: &CellField<HCell>) {
        let cells = field.states();
        debug_assert_eq!(cells.len(), self.n * (self.n + 1));
        self.d.clear();
        self.d.extend(cells.iter().map(|c| c.d));
        let nn = self.n * self.n;
        self.a.clear();
        self.a.resize(nn.div_ceil(64), 0);
        for (i, c) in cells[..nn].iter().enumerate() {
            if c.a {
                self.a[i >> 6] |= 1 << (i & 63);
            }
        }
    }

    /// Writes the data plane back into the AoS field, leaving every
    /// adjacency bit untouched — the only direction state ever flows out
    /// (no generation writes `a`).
    pub fn store_d(&self, field: &mut CellField<HCell>) {
        for (cell, &d) in field.states_mut().iter_mut().zip(&self.d) {
            cell.d = d;
        }
    }

    /// Reads the adjacency bit of square cell `i` (the kernels read the
    /// packed plane directly via [`a_bit`]; this accessor serves the tests).
    #[cfg(test)]
    pub fn adjacency(&self, i: usize) -> bool {
        a_bit(&self.a, i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Layout;
    use gca_graphs::generators;

    #[test]
    fn round_trip_preserves_data_and_adjacency() {
        let g = generators::gnp(9, 0.4, 3);
        let layout = Layout::new(9).unwrap();
        let mut field = layout.build_field(&g).unwrap();
        let before: Vec<HCell> = field.states().to_vec();

        let mut h = HField::new(9);
        h.load(&field);
        for (i, c) in before.iter().enumerate() {
            assert_eq!(h.d[i], c.d, "d plane at {i}");
            if i < 81 {
                assert_eq!(h.adjacency(i), c.a, "a plane at {i}");
            }
        }

        // Mutate the data plane, store back: d follows, a survives.
        for v in h.d.iter_mut() {
            *v = v.wrapping_add(7);
        }
        h.store_d(&mut field);
        for (i, c) in field.states().iter().enumerate() {
            assert_eq!(c.d, before[i].d.wrapping_add(7), "stored d at {i}");
            assert_eq!(c.a, before[i].a, "adjacency must never change at {i}");
        }
    }

    #[test]
    fn zero_size_field_is_empty() {
        let h = HField::new(0);
        assert!(h.d.is_empty());
        assert!(h.a.is_empty());
    }

    #[test]
    fn load_resizes_planes() {
        let g = generators::ring(5);
        let layout = Layout::new(5).unwrap();
        let field = layout.build_field(&g).unwrap();
        let mut h = HField::new(0);
        h.n = 5;
        h.load(&field);
        assert_eq!(h.d.len(), 30);
        assert_eq!(h.a.len(), 1);
    }
}
