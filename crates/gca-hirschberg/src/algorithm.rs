use crate::complexity::{ceil_log2, total_generations};
use crate::invariants::{InvariantChecker, InvariantClass};
use crate::kernels::{FusedExecutor, KernelReport, ParPolicy};
use crate::{iteration_schedule, ExecPath, Gen, HCell, HirschbergRule, Layout, SwarSchedule};
use gca_engine::faults::{FaultKind, FaultPlan};
use gca_engine::metrics::{CongestionHistogram, GenerationMetrics, MetricsLog};
use gca_engine::{
    CellField, Engine, GcaError, Instrumentation, InvariantCheck, StepCtx, StepReport, Word,
};
use gca_graphs::{AdjacencyMatrix, Labeling};

/// Mask of the low half of a data word — the half a torn write leaves on
/// its pre-generation value (see [`FaultKind::TornWrite`]).
const TORN_LO_MASK: Word = (1 << (Word::BITS / 2)) - 1;

/// When to stop the iterated pointer-jumping sub-generations.
///
/// The paper's central state machine always runs `⌈log₂ n⌉` sub-generations
/// of generation 10 (pointer jumping) — the worst case for a path-shaped
/// pointer chain. Most graphs converge earlier, and the engine counts
/// changed cells for free during write-back
/// ([`gca_engine::StepReport::changed_cells`]), so the stepper can detect
/// the fixed point and skip the remaining sub-generations.
///
/// Detection is applied **only** to pointer jumping, where it is sound:
/// `C ← C(C)` at a fixed point (`C(i) = C(C(i))` for all `i`) stays fixed
/// under further applications. The min tree reductions (generations 3 and 7)
/// must always run their full `⌈log₂ n⌉` schedule: a zero-change
/// sub-generation there does *not* imply completion — for the row
/// `[2, 9, 1, 7]`, stride-1 reduction changes nothing at cell 0
/// (`min(2, 9) = 2`) yet the stride-2 sub-generation still must fold in the
/// `1` (`min(2, 1) = 1`). See DESIGN.md.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Convergence {
    /// Always run the full fixed schedule — the paper's hardware behavior
    /// and the default. Total generations match `1 + log n · (3 log n + 8)`.
    #[default]
    Fixed,
    /// Skip the remaining pointer-jump sub-generations of an iteration once
    /// one of them reports zero changed cells. Labelings are identical to
    /// [`Convergence::Fixed`]; only the generation count (and the metrics
    /// log) shrinks.
    Detect,
}

/// The generation-level stepper for the Hirschberg GCA.
///
/// [`Machine`] owns the field, the rule and an [`Engine`], and exposes the
/// state machine one generation at a time — the figure/table binaries drive
/// it manually to capture access patterns, while [`HirschbergGca::run`]
/// drives it to completion.
pub struct Machine {
    layout: Layout,
    rule: HirschbergRule,
    engine: Engine,
    field: CellField<HCell>,
    metrics: MetricsLog,
    convergence: Convergence,
    exec: ExecPath,
    fused: FusedExecutor,
    /// Whether the fused executor's SoA mirror currently reflects `field`.
    /// Anything that mutates the field behind the kernels' back (generic
    /// steps, snapshot restore, graph reset, seeded faults) clears it; the
    /// next fused step reloads the mirror.
    soa_valid: bool,
    initialized: bool,
    /// The symbolic-activity schedule the [`ExecPath::FusedSwar`] driver
    /// consults (`None` → the structural schedule, which never skips).
    swar_schedule: Option<SwarSchedule>,
    /// The differential harness armed by [`Instrumentation::Validate`] on
    /// the fused path: a shadow field replayed through the reference engine
    /// (itself running the CROW sanitizer) after every fused generation.
    validator: Option<FusedValidator>,
    /// Test-only seeded fault: corrupts this cell after the next fused
    /// generation so the replay harness can prove it catches divergence.
    fault: Option<usize>,
    /// The algorithm-level invariant checker, also armed by
    /// [`Instrumentation::Validate`] — on *every* execution path. Replays
    /// the schedule's Hoare-contract transfers (see
    /// [`crate::invariants`]) against each committed generation and
    /// asserts the iteration-boundary invariants of the induction
    /// argument. Rebuilt lazily from the field after a reset or restore.
    inv: Option<InvariantChecker>,
    /// Test-only pending invariant fault, installed into the checker once
    /// it exists (see [`Machine::seed_invariant_fault`]).
    inv_fault: Option<InvariantClass>,
    /// The armed fault plan (see [`gca_engine::faults`]). `None` on clean
    /// runs — every hook starts with this check, keeping injection
    /// zero-cost when off.
    inject: Option<FaultPlan>,
    /// Pre-generation capture scratch for dropped-generation faults on
    /// the fused paths (the SoA data plane).
    drop_words: Vec<Word>,
    /// Pre-generation capture scratch for dropped-generation faults on
    /// the generic path (the full cell states).
    drop_states: Vec<HCell>,
    /// Pre-generation value of a torn-write target word.
    torn_pre: Option<Word>,
}

/// Shadow state of the fused-kernel differential harness.
///
/// Before each fused generation the current field is copied into `shadow`;
/// after the kernel ran, `engine` (a sequential
/// [`Instrumentation::Validate`] engine — the same CROW/domain checker the
/// generic path uses) replays the generation on the shadow, and the two
/// next-states plus read histograms must agree cell for cell.
struct FusedValidator {
    engine: Engine,
    shadow: CellField<HCell>,
}

impl Machine {
    /// Builds a machine for `graph` with a default (sequential, counting)
    /// engine.
    pub fn new(graph: &AdjacencyMatrix) -> Result<Self, GcaError> {
        Machine::with_engine(graph, Engine::sequential())
    }

    /// Builds a machine with an explicit engine configuration.
    pub fn with_engine(graph: &AdjacencyMatrix, engine: Engine) -> Result<Self, GcaError> {
        let layout = Layout::new(graph.n())?;
        let field = layout.build_field(graph)?;
        Ok(Machine {
            layout,
            rule: HirschbergRule::new(graph.n()),
            engine,
            field,
            metrics: MetricsLog::new(),
            convergence: Convergence::Fixed,
            exec: ExecPath::Generic,
            fused: FusedExecutor::new(graph.n()),
            soa_valid: false,
            initialized: false,
            swar_schedule: None,
            validator: None,
            fault: None,
            inv: None,
            inv_fault: None,
            inject: None,
            drop_words: Vec::new(),
            drop_states: Vec::new(),
            torn_pre: None,
        })
    }

    /// Sets the sub-generation convergence policy (see [`Convergence`]).
    #[must_use]
    pub fn with_convergence(mut self, convergence: Convergence) -> Self {
        self.convergence = convergence;
        self
    }

    /// Sets the execution path (see [`ExecPath`]).
    #[must_use]
    pub fn with_exec(mut self, exec: ExecPath) -> Self {
        self.exec = exec;
        self.fused.set_swar(matches!(exec, ExecPath::FusedSwar(_)));
        self
    }

    /// Installs a symbolic-activity schedule for the
    /// [`ExecPath::FusedSwar`] driver (see [`SwarSchedule`]). A schedule
    /// derived for a different problem size is ignored in favor of the
    /// structural one. No effect on the other execution paths.
    #[must_use]
    pub fn with_swar_schedule(mut self, schedule: SwarSchedule) -> Self {
        self.swar_schedule = Some(schedule);
        self
    }

    /// The configured convergence policy.
    pub fn convergence(&self) -> Convergence {
        self.convergence
    }

    /// The configured execution path.
    pub fn exec(&self) -> ExecPath {
        self.exec
    }

    /// Problem size `n`.
    pub fn n(&self) -> usize {
        self.layout.n()
    }

    /// The field layout.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// The uniform cell rule.
    pub fn rule(&self) -> &HirschbergRule {
        &self.rule
    }

    /// Read-only view of the current field.
    pub fn field(&self) -> &CellField<HCell> {
        &self.field
    }

    /// Generations executed so far.
    pub fn generations(&self) -> u64 {
        self.engine.generation()
    }

    /// The per-generation metrics recorded so far.
    pub fn metrics(&self) -> &MetricsLog {
        &self.metrics
    }

    /// Executes generation 0 (initialization). Must run exactly once,
    /// before any iteration.
    pub fn init(&mut self) -> Result<StepReport, GcaError> {
        assert!(!self.initialized, "machine already initialized");
        let rep = self.step(Gen::Init, 0)?;
        self.initialized = true;
        Ok(rep)
    }

    /// Executes a single `(generation, sub-generation)` of the state
    /// machine and records its metrics.
    pub fn step(&mut self, gen: Gen, subgeneration: u32) -> Result<StepReport, GcaError> {
        if self.fused_active() {
            return self.step_fused(gen, subgeneration);
        }
        self.ensure_invariant_checker();
        let fault_gen = self.engine.generation();
        self.arm_generic_fault(fault_gen);
        let rep = self
            .engine
            .step(&mut self.field, &self.rule, gen.number(), subgeneration)?;
        self.apply_generic_fault(fault_gen);
        self.soa_valid = false;
        if let Some(hist) = rep.congestion.as_ref() {
            self.metrics
                .push(GenerationMetrics::new(rep.ctx, rep.active_cells, hist));
        }
        self.check_invariants(&rep.ctx)?;
        Ok(rep)
    }

    /// Fused kernels reproduce `Counts` metrics exactly, but per-cell
    /// access traces exist only in the generic evaluator — `Trace` steps
    /// fall back to it. `Validate` stays fused on purpose: that is what
    /// arms the differential replay harness against the kernels.
    fn fused_active(&self) -> bool {
        matches!(
            self.exec,
            ExecPath::Fused | ExecPath::FusedParallel(_) | ExecPath::FusedSwar(_)
        ) && !matches!(self.engine.instrumentation(), Instrumentation::Trace)
    }

    /// Resolves [`ExecPath::FusedParallel`]'s knob into the per-step policy
    /// the kernels consume: auto worker counts default to the hardware
    /// thread count, an unset threshold inherits the engine's shared
    /// tunable, and anything that resolves below two workers runs the
    /// plain sequential fused path.
    fn par_policy(&self) -> Option<ParPolicy> {
        let cfg = match self.exec {
            ExecPath::FusedParallel(cfg) => cfg,
            ExecPath::FusedSwar(swar) => swar.parallel?,
            _ => return None,
        };
        let workers = if cfg.workers == 0 {
            rayon::current_num_threads()
        } else {
            cfg.workers
        };
        (workers >= 2).then(|| ParPolicy {
            workers,
            threshold: cfg
                .threshold
                .unwrap_or_else(|| self.engine.min_parallel_cells()),
            explicit: cfg.workers != 0,
        })
    }

    /// Reloads the kernels' SoA mirror from the field if it is stale.
    fn ensure_soa(&mut self) {
        if !self.soa_valid {
            self.fused.load(&self.field);
            self.soa_valid = true;
        }
    }

    /// Whether a step should account reads (mirrors the engine's `counting`).
    fn counting(&self) -> bool {
        !matches!(self.engine.instrumentation(), Instrumentation::Off)
    }

    /// Whether the CROW sanitizer / fused replay harness is armed.
    fn validating(&self) -> bool {
        matches!(self.engine.instrumentation(), Instrumentation::Validate)
    }

    /// Test-only hook for the failure-injection suite: corrupts `cell`'s
    /// data word right after the next fused generation executes, before the
    /// replay harness compares states — a seeded kernel mutation the
    /// harness must report as [`GcaError::KernelDivergence`]. No effect
    /// unless the machine is fused and validating.
    #[doc(hidden)]
    pub fn seed_fused_fault(&mut self, cell: usize) {
        self.fault = Some(cell);
    }

    /// Test-only hook for the failure-injection suite: makes the next
    /// parallel counting broadcast account one boundary cell twice — the
    /// observable effect of two row partitions overlapping on it. Safe Rust
    /// makes a real aliasing overlap unrepresentable (`par_chunks_mut`
    /// hands out disjoint `&mut` slices), so the injectable fault is the
    /// accounting consequence the replay harness must catch as
    /// [`GcaError::KernelDivergence`]. No effect unless the machine runs
    /// [`ExecPath::FusedParallel`] under [`Instrumentation::Validate`].
    #[doc(hidden)]
    pub fn seed_partition_fault(&mut self) {
        self.fused.seed_partition_fault();
    }

    /// Test-only hook for the failure-injection suite: arms a one-shot
    /// planted contract break of the given [`InvariantClass`] inside the
    /// invariant checker, which must then report it as
    /// [`GcaError::InvariantViolation`]. No effect unless the machine runs
    /// under [`Instrumentation::Validate`].
    #[doc(hidden)]
    pub fn seed_invariant_fault(&mut self, class: InvariantClass) {
        match self.inv.as_mut() {
            Some(inv) => inv.seed_fault(class),
            None => self.inv_fault = Some(class),
        }
    }

    /// Arms (or clears) a deterministic fault plan. An armed plan injects
    /// its fault into the addressed committed generation on whichever
    /// execution path runs it (see [`gca_engine::faults`] for the per-kind
    /// semantics and which paths each kind applies to). Arming also
    /// disables the SWAR driver's broadcast+filter and multi-jump fusions
    /// so that every scheduled generation materializes as an injection
    /// site; a `None` plan restores full fusion and costs nothing per
    /// step. The plan survives [`Machine::reset_with`] and
    /// [`Machine::rollback_to`] on purpose: recovery re-executes the
    /// faulted span, and whether the fault re-fires is the plan's
    /// [`gca_engine::faults::Persistence`] decision, not the machine's.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.inject = plan;
        self.torn_pre = None;
    }

    /// The armed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.inject.as_ref()
    }

    /// The degradation-ladder level of the configured execution path —
    /// the coordinate sticky faults compare against (see
    /// [`gca_engine::faults::Persistence::Sticky`]). Higher is more
    /// optimized: generic 0, fused 1, fused-par 2, fused-swar 3.
    pub fn exec_level(&self) -> u8 {
        match self.exec {
            ExecPath::Generic => 0,
            ExecPath::Fused => 1,
            ExecPath::FusedParallel(_) => 2,
            ExecPath::FusedSwar(_) => 3,
        }
    }

    /// Switches the execution path in place — the degradation ladder's
    /// rung change. Unlike [`Machine::with_exec`] this is callable
    /// mid-run; the paths are bit-identical in labels and metrics, so a
    /// switch at any generation boundary is semantically invisible.
    pub fn set_exec(&mut self, exec: ExecPath) {
        self.exec = exec;
        self.fused.set_swar(matches!(exec, ExecPath::FusedSwar(_)));
        // The SoA mirror's auxiliary planes (occupancy) are path-dependent;
        // force a reload under the new path's configuration.
        self.soa_valid = false;
    }

    /// Rewinds the machine to a checkpoint: restores the field snapshot,
    /// resets the engine's generation counter to `generation`, and
    /// truncates the metrics log to match (under counting instrumentation
    /// the log holds exactly one entry per committed generation, so the
    /// re-executed span appends over a clean suffix and a recovered run's
    /// log is bit-identical to an undisturbed one). The fused replay
    /// shadow is dropped and re-arms in lockstep on the next validated
    /// generation.
    pub fn rollback_to(
        &mut self,
        generation: u64,
        snapshot: &gca_engine::snapshot::FieldSnapshot<HCell>,
    ) -> Result<(), GcaError> {
        self.restore(snapshot)?;
        self.engine.rewind_to(generation);
        self.metrics.truncate(generation as usize);
        self.validator = None;
        self.torn_pre = None;
        Ok(())
    }

    /// Pre-generation half of the generic-path injection hook: captures
    /// whatever pre-state the armed fault needs. `generation` is the
    /// number the generation will commit as (the pre-step counter).
    fn arm_generic_fault(&mut self, generation: u64) {
        let Some(plan) = self.inject.as_ref() else {
            return;
        };
        match plan.peek(generation, self.exec_level()) {
            Some(FaultKind::DroppedGeneration) => {
                self.drop_states.clear();
                self.drop_states.extend_from_slice(self.field.states());
            }
            Some(FaultKind::TornWrite) => {
                self.torn_pre = self.field.states().get(plan.cell()).map(|c| c.d);
            }
            _ => {}
        }
    }

    /// Post-generation half of the generic-path injection hook: fires the
    /// plan and corrupts the committed field state. The invariant
    /// checker's contract-step mirror (armed under
    /// [`Instrumentation::Validate`]) is the detector on this path — it
    /// replays the generation from the uncorrupted pre-state and compares
    /// the full field. Kinds without a generic-path surface (stale
    /// occupancy bits, duplicated chunk rows, histogram merges live in
    /// the fused kernels) consume their charge without effect.
    fn apply_generic_fault(&mut self, generation: u64) {
        let level = self.exec_level();
        let Some(plan) = self.inject.as_mut() else {
            return;
        };
        let Some(kind) = plan.fire(generation, level) else {
            return;
        };
        let cell = plan.cell();
        match kind {
            FaultKind::BitFlip { bit } => {
                if let Some(c) = self.field.states_mut().get_mut(cell) {
                    c.d ^= 1 << (bit % Word::BITS);
                }
            }
            FaultKind::TornWrite => {
                if let (Some(pre), Some(c)) =
                    (self.torn_pre.take(), self.field.states_mut().get_mut(cell))
                {
                    c.d = (c.d & !TORN_LO_MASK) | (pre & TORN_LO_MASK);
                }
            }
            FaultKind::DroppedGeneration => {
                if self.drop_states.len() == self.field.len() {
                    self.field.states_mut().clone_from_slice(&self.drop_states);
                }
            }
            FaultKind::StaleOccupancy
            | FaultKind::DuplicatedChunkRow
            | FaultKind::CorruptHistogramMerge => {}
        }
    }

    /// Pre-kernel half of the fused-path injection hook. Runs after
    /// `ensure_soa`, so captures see the authoritative SoA mirror.
    /// Duplicated-chunk-row faults arm here (the overlap fires *inside*
    /// the kernel's partitioned counting broadcast); everything else only
    /// captures pre-state.
    fn arm_fused_fault(&mut self, generation: u64) {
        let Some(plan) = self.inject.as_ref() else {
            return;
        };
        match plan.peek(generation, self.exec_level()) {
            Some(FaultKind::DroppedGeneration) => {
                self.fused.save_plane(&mut self.drop_words);
            }
            Some(FaultKind::TornWrite) => {
                self.torn_pre = self.fused.word_at(plan.cell());
            }
            Some(FaultKind::DuplicatedChunkRow) => {
                self.fused.seed_partition_fault();
            }
            _ => {}
        }
    }

    /// Post-kernel half of the fused-path injection hook: fires the plan
    /// and corrupts the kernel's committed output *before* the field
    /// write-back and the differential-replay comparison — exactly where
    /// a hardware fault between kernel and commit would land. Detection
    /// is the replay harness ([`GcaError::KernelDivergence`]) under
    /// [`Instrumentation::Validate`].
    fn apply_fused_fault(&mut self, generation: u64) {
        let level = self.exec_level();
        let Some(plan) = self.inject.as_mut() else {
            return;
        };
        let Some(kind) = plan.fire(generation, level) else {
            return;
        };
        let cell = plan.cell();
        let counting = self.counting();
        match kind {
            FaultKind::BitFlip { bit } => {
                if let Some(w) = self.fused.word_at(cell) {
                    self.fused.set_word(cell, w ^ (1 << (bit % Word::BITS)));
                }
            }
            FaultKind::TornWrite => {
                if let (Some(pre), Some(w)) = (self.torn_pre.take(), self.fused.word_at(cell)) {
                    self.fused.set_word(cell, (w & !TORN_LO_MASK) | (pre & TORN_LO_MASK));
                }
            }
            FaultKind::DroppedGeneration => {
                self.fused.load_plane(&self.drop_words);
            }
            FaultKind::StaleOccupancy => {
                self.fused.clear_occ_bit(cell);
            }
            FaultKind::CorruptHistogramMerge => {
                if counting {
                    self.fused.bump_read(cell);
                }
            }
            // Armed pre-kernel; the overlap already fired inside the
            // partitioned broadcast (or expired unobserved if this
            // generation ran sequentially).
            FaultKind::DuplicatedChunkRow => {}
        }
    }

    /// Lazily (re)builds the invariant checker from the current field — the
    /// pre-state of the next generation to run. Called before every
    /// generation executes; a checker dropped by `reset_with`/`restore`
    /// re-arms here (at an iteration boundary, where column 0 carries the
    /// labels the boundary invariants need). No-op unless validating.
    fn ensure_invariant_checker(&mut self) {
        if !self.validating() || self.inv.is_some() {
            return;
        }
        let mut inv = InvariantChecker::from_states(self.n(), self.field.states());
        if let Some(class) = self.inv_fault.take() {
            inv.seed_fault(class);
        }
        self.inv = Some(inv);
    }

    /// Replays the committed generation through the contract transfer
    /// functions and asserts the invariant set. No-op unless validating
    /// (`ensure_invariant_checker` arms the checker in that case, so a
    /// validating machine always has one here).
    fn check_invariants(&mut self, ctx: &StepCtx) -> Result<(), GcaError> {
        if !self.validating() {
            return Ok(());
        }
        match self.inv.as_mut() {
            Some(inv) => inv.after_generation(ctx, self.field.states()),
            None => Ok(()),
        }
    }

    /// Copies the pre-generation field into the shadow so the reference
    /// engine can replay the generation the fused kernel is about to run.
    /// No-op unless validating.
    fn begin_fused_validation(&mut self) {
        if !self.validating() {
            return;
        }
        self.ensure_invariant_checker();
        if self.validator.is_none() {
            self.validator = Some(FusedValidator {
                engine: Engine::sequential().with_instrumentation(Instrumentation::Validate),
                shadow: self.field.clone(),
            });
        }
        let Some(v) = self.validator.as_mut() else {
            return;
        };
        v.shadow.states_mut().clone_from_slice(self.field.states());
        // Keep the shadow engine's generation counter in lockstep (it may
        // lag when the machine was restored from a snapshot).
        while v.engine.generation() < self.engine.generation() {
            v.engine.advance_generation();
        }
    }

    /// The differential check: replays the generation the fused kernel just
    /// executed through the reference engine (running the CROW sanitizer)
    /// on the shadow copy, then compares next-states and read histograms
    /// cell by cell. The first disagreeing cell is reported as
    /// [`GcaError::KernelDivergence`]. No-op unless validating.
    fn check_fused_generation(&mut self, ctx: &StepCtx) -> Result<(), GcaError> {
        if !self.validating() {
            return Ok(());
        }
        if let Some(cell) = self.fault.take() {
            if let Some(c) = self.field.states_mut().get_mut(cell) {
                c.d = c.d.wrapping_add(1);
                // The AoS field was corrupted behind the SoA mirror.
                self.soa_valid = false;
            }
        }
        let Some(v) = self.validator.as_mut() else {
            // Unreachable in practice: `begin_fused_validation` arms the
            // validator whenever `validating()` holds.
            return Ok(());
        };
        let rep = v
            .engine
            .step(&mut v.shadow, &self.rule, ctx.phase, ctx.subgeneration)?;
        let diverged = |cell: usize| GcaError::KernelDivergence {
            cell,
            generation: ctx.generation,
            phase: ctx.phase,
        };
        if let Some(cell) = v
            .shadow
            .states()
            .iter()
            .zip(self.field.states())
            .position(|(replayed, fused)| replayed != fused)
        {
            return Err(diverged(cell));
        }
        if let Some(hist) = rep.congestion.as_ref() {
            let kernel = self.fused.reads();
            if let Some(cell) =
                (0..self.field.len()).find(|&i| hist.reads_of(i) != kernel[i])
            {
                return Err(diverged(cell));
            }
        }
        Ok(())
    }

    fn fused_ctx(&self, gen: Gen, subgeneration: u32) -> StepCtx {
        StepCtx {
            generation: self.engine.generation(),
            phase: gen.number(),
            subgeneration,
        }
    }

    /// Books one successfully executed fused generation: advances the
    /// engine's generation counter and appends the metrics entry, exactly as
    /// an engine-executed step would.
    fn fused_commit(&mut self, ctx: StepCtx, active: usize) {
        self.engine.advance_generation();
        if self.counting() {
            self.metrics
                .push(GenerationMetrics::from_read_counts(ctx, active, self.fused.reads()));
        }
    }

    /// One fused `(generation, sub-generation)` with a full [`StepReport`]
    /// (including an owned congestion histogram) — the single-step API.
    /// [`Machine::run_iteration`] uses the report-free internal path.
    fn step_fused(&mut self, gen: Gen, subgeneration: u32) -> Result<StepReport, GcaError> {
        let counting = self.counting();
        let ctx = self.fused_ctx(gen, subgeneration);
        let par = self.par_policy();
        self.begin_fused_validation();
        self.ensure_soa();
        self.arm_fused_fault(ctx.generation);
        let rep = self.fused.step(&ctx, counting, par)?;
        self.apply_fused_fault(ctx.generation);
        // The single-step API keeps the public field authoritative after
        // every generation (callers inspect it between steps).
        self.fused.store_d(&mut self.field);
        self.check_fused_generation(&ctx)?;
        self.check_invariants(&ctx)?;
        self.fused_commit(ctx, rep.active);
        Ok(StepReport {
            ctx,
            active_cells: rep.active,
            total_reads: rep.reads,
            changed_cells: rep.changed,
            evaluated_cells: rep.evaluated,
            workers: rep.workers,
            congestion: counting
                .then(|| CongestionHistogram::from_reads(self.fused.reads().to_vec())),
            accesses: None,
        })
    }

    /// Executes one full outer iteration (generations 1–11 with their
    /// sub-generations). Returns the number of generations executed —
    /// `iteration_schedule(n).len()` under [`Convergence::Fixed`], possibly
    /// fewer under [`Convergence::Detect`] (skipped pointer-jump
    /// sub-generations are not executed at all and record no metrics).
    pub fn run_iteration(&mut self) -> Result<u64, GcaError> {
        assert!(self.initialized, "call init() before iterating");
        if self.fused_active() {
            return self.run_iteration_fused();
        }
        let schedule = iteration_schedule(self.n());
        let mut executed = 0u64;
        let mut jump_converged = false;
        for (gen, sub) in schedule {
            if jump_converged && gen == Gen::PointerJump {
                continue;
            }
            let rep = self.step(gen, sub)?;
            executed += 1;
            if self.convergence == Convergence::Detect
                && gen == Gen::PointerJump
                && rep.changed_cells == 0
            {
                jump_converged = true;
            }
            self.engine.recycle(rep);
        }
        Ok(executed)
    }

    /// Executes `count` full outer iterations back to back, returning the
    /// total number of generations executed. Observably identical to
    /// calling [`Machine::run_iteration`] `count` times, except that the
    /// fused paths write the public field back once at the end instead of
    /// once per iteration (the field is only guaranteed authoritative when
    /// this returns — also on error, exactly as the per-iteration API
    /// leaves committed generations visible).
    pub fn run_iterations(&mut self, count: u64) -> Result<u64, GcaError> {
        assert!(self.initialized, "call init() before iterating");
        if !self.fused_active() || self.validating() {
            let mut executed = 0;
            for _ in 0..count {
                executed += self.run_iteration()?;
            }
            return Ok(executed);
        }
        let mut executed = 0;
        let mut failure = None;
        for _ in 0..count {
            match self.run_iteration_fused_inner() {
                Ok(e) => executed += e,
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
        }
        self.fused.store_d(&mut self.field);
        match failure {
            None => Ok(executed),
            Some(e) => Err(e),
        }
    }

    /// One fused generation without report assembly (no histogram copy) —
    /// the hot-loop variant of [`Machine::step_fused`]. Returns the changed
    /// count for convergence detection.
    fn fused_tick(&mut self, gen: Gen, subgeneration: u32) -> Result<KernelReport, GcaError> {
        let ctx = self.fused_ctx(gen, subgeneration);
        let counting = self.counting();
        let par = self.par_policy();
        self.begin_fused_validation();
        self.ensure_soa();
        self.arm_fused_fault(ctx.generation);
        let rep = self.fused.step(&ctx, counting, par)?;
        self.apply_fused_fault(ctx.generation);
        if self.validating() {
            // The replay harness compares against the field, so each
            // validated generation writes back immediately; the plain hot
            // loop defers the writeback to the iteration boundary.
            self.fused.store_d(&mut self.field);
            self.check_fused_generation(&ctx)?;
            self.check_invariants(&ctx)?;
        }
        self.fused_commit(ctx, rep.active);
        Ok(rep)
    }

    /// The schedule the [`ExecPath::FusedSwar`] driver consults; `None` for
    /// the other fused paths (never skip). An installed schedule derived
    /// for a different `n` falls back to the structural one.
    fn swar_bounds(&self) -> Option<SwarSchedule> {
        matches!(self.exec, ExecPath::FusedSwar(_)).then(|| {
            self.swar_schedule
                .filter(|sc| sc.n() == self.n())
                .unwrap_or_else(|| SwarSchedule::structural(self.n()))
        })
    }

    /// Runs one iterated-phase sub-generation under the SWAR schedule.
    /// Scheduled subs execute normally; an out-of-schedule sub (symbolic
    /// activity zero) is skipped outright — except under
    /// [`Instrumentation::Validate`], where it executes anyway and a debug
    /// assertion cross-checks the symbolic claim against the dynamic
    /// counters (zero activity for the tree reductions, zero changed cells
    /// for a clamped pointer jump). Returns `None` when skipped.
    fn swar_gated_tick(
        &mut self,
        sched: Option<SwarSchedule>,
        gen: Gen,
        s: u32,
        executed: &mut u64,
    ) -> Result<Option<KernelReport>, GcaError> {
        let live = sched.is_none_or(|sc| sc.live(gen, s));
        if !live && !self.validating() {
            return Ok(None);
        }
        let rep = self.fused_tick(gen, s)?;
        *executed += 1;
        if !live {
            debug_assert!(
                rep.changed == 0 && (gen == Gen::PointerJump || rep.active == 0),
                "symbolic-activity schedule skipped an active sub-generation: \
                 {gen:?}/{s} active={} changed={}",
                rep.active,
                rep.changed,
            );
        }
        Ok(Some(rep))
    }

    /// Whether the batched driver may fuse each broadcast with the filter
    /// that immediately follows it (generations 1+2 and 5+6). Requires the
    /// SWAR path *and* an unobservable intermediate state: under counting
    /// the two generations report separate read footprints, and under
    /// validation the replay harness compares the field after every
    /// generation — both must see the broadcast materialized. An armed
    /// fault plan also disables the fusion: fault coordinates address
    /// individual committed generations, so every generation must
    /// materialize as an injection site.
    fn fuse_broadcast_filter(&self) -> bool {
        matches!(self.exec, ExecPath::FusedSwar(_))
            && !self.counting()
            && !self.validating()
            && self.inject.is_none()
    }

    /// Runs one fused broadcast+filter pair (generations 1+2 for
    /// `members = false`, 5+6 for `members = true`) and commits both
    /// generations, exactly as two separate ticks would have.
    fn broadcast_filter_ticks(&mut self, members: bool) {
        let par = self.par_policy();
        self.ensure_soa();
        let (bcast, filter) = self.fused.broadcast_filter(members, par);
        let (g_b, g_f) = if members {
            (Gen::BroadcastT, Gen::FilterMembers)
        } else {
            (Gen::BroadcastC, Gen::FilterNeighbors)
        };
        let ctx_b = self.fused_ctx(g_b, 0);
        self.fused_commit(ctx_b, bcast.active);
        // The second ctx is built after the first commit so its generation
        // number advances exactly as under separate ticks.
        let ctx_f = self.fused_ctx(g_f, 0);
        self.fused_commit(ctx_f, filter.active);
    }

    /// The fused iteration: identical `(generation, sub-generation)`
    /// schedule and convergence behaviour as the generic loop, with the
    /// pointer-jump sub-generations fused over ping-pong label buffers.
    /// The SoA mirror is the working state between generations; the public
    /// field is written back once per iteration (also on error, so
    /// committed generations stay visible exactly as the generic engine
    /// leaves them — a failed generation never commits).
    fn run_iteration_fused(&mut self) -> Result<u64, GcaError> {
        let result = self.run_iteration_fused_inner();
        if !self.validating() {
            self.fused.store_d(&mut self.field);
        }
        result
    }

    fn run_iteration_fused_inner(&mut self) -> Result<u64, GcaError> {
        let subgens = ceil_log2(self.n());
        let sched = self.swar_bounds();
        let fuse_bf = self.fuse_broadcast_filter();
        let mut executed = 0u64;
        if fuse_bf {
            self.broadcast_filter_ticks(false);
            executed += 2;
        } else {
            for gen in [Gen::BroadcastC, Gen::FilterNeighbors] {
                self.fused_tick(gen, 0)?;
                executed += 1;
            }
        }
        for s in 0..subgens {
            self.swar_gated_tick(sched, Gen::MinReduce, s, &mut executed)?;
        }
        self.fused_tick(Gen::ResolveIsolated, 0)?;
        executed += 1;
        if fuse_bf {
            self.broadcast_filter_ticks(true);
            executed += 2;
        } else {
            for gen in [Gen::BroadcastT, Gen::FilterMembers] {
                self.fused_tick(gen, 0)?;
                executed += 1;
            }
        }
        for s in 0..subgens {
            self.swar_gated_tick(sched, Gen::MinReduceMembers, s, &mut executed)?;
        }
        for gen in [Gen::ResolveMembers, Gen::CopyAndSaveT] {
            self.fused_tick(gen, 0)?;
            executed += 1;
        }
        if self.validating() || self.inject.is_some() {
            // The multi-jump fusion keeps labels in private ping-pong
            // buffers between sub-generations; the replay harness needs
            // every generation's writes in the field (and an armed fault
            // plan needs every generation to exist as an injection site),
            // so both take the gather/jump/scatter-per-sub-generation path.
            for s in 0..subgens {
                let rep = self.swar_gated_tick(sched, Gen::PointerJump, s, &mut executed)?;
                if let Some(rep) = rep {
                    if self.convergence == Convergence::Detect && rep.changed == 0 {
                        break;
                    }
                }
            }
        } else {
            // The schedule clamps the pointer-jump iteration bound; for the
            // structural (and the symbolically derived) schedule the clamp
            // equals ⌈log₂ n⌉ and the behavior is unchanged.
            let jump_bound =
                sched.map_or(subgens, |sc| sc.subgenerations(Gen::PointerJump).min(subgens));
            executed += self.fused_pointer_jump(jump_bound)?;
        }
        self.fused_tick(Gen::FinalMin, 0)?;
        executed += 1;
        Ok(executed)
    }

    /// All pointer-jump sub-generations in one fused call: gather column 0
    /// once, ping-pong the two label buffers per sub-generation, scatter
    /// once at the end (also on error, so committed sub-generations stay
    /// visible exactly as the generic engine leaves them).
    fn fused_pointer_jump(&mut self, subgens: u32) -> Result<u64, GcaError> {
        let counting = self.counting();
        let par = self.par_policy();
        self.ensure_soa();
        self.fused.gather_labels();
        let mut executed = 0u64;
        let mut failure = None;
        for s in 0..subgens {
            if counting {
                self.fused.reset_reads(self.field.len());
            }
            let ctx = self.fused_ctx(Gen::PointerJump, s);
            match self.fused.jump_once(&ctx, counting, par) {
                Ok(rep) => {
                    self.fused_commit(ctx, rep.active);
                    executed += 1;
                    if self.convergence == Convergence::Detect && rep.changed == 0 {
                        break;
                    }
                }
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
        }
        self.fused.scatter_labels();
        match failure {
            None => Ok(executed),
            Some(e) => Err(e),
        }
    }

    /// Captures the complete field state for checkpointing. Meaningful at
    /// iteration boundaries (mid-iteration snapshots additionally require
    /// the caller to remember the schedule position).
    pub fn snapshot(&self) -> gca_engine::snapshot::FieldSnapshot<HCell> {
        gca_engine::snapshot::FieldSnapshot::capture(&self.field)
    }

    /// Restores a previously captured field state into this machine. The
    /// snapshot must match the machine's field shape; the machine is marked
    /// initialized (snapshots are taken after generation 0 by construction).
    pub fn restore(
        &mut self,
        snapshot: &gca_engine::snapshot::FieldSnapshot<HCell>,
    ) -> Result<(), GcaError> {
        let field = snapshot.restore()?;
        if field.shape() != self.field.shape() {
            return Err(GcaError::ShapeMismatch {
                expected: self.field.len(),
                actual: field.len(),
            });
        }
        self.field = field;
        self.soa_valid = false;
        self.initialized = true;
        // The invariant checker's shadow plane no longer matches the field;
        // it re-arms lazily from the restored state (an iteration boundary).
        self.inv = None;
        Ok(())
    }

    /// The current `C` vector (column 0).
    pub fn labels_raw(&self) -> Vec<Word> {
        let mut out = Vec::new();
        self.labels_into(&mut out);
        out
    }

    /// Writes the current `C` vector (column 0) into `out`, reusing its
    /// allocation — the steady-state extraction path of the batched runner.
    pub fn labels_into(&self, out: &mut Vec<Word>) {
        out.clear();
        out.extend((0..self.n()).map(|j| self.field.get(self.layout.c_index(j)).d));
    }

    /// Reloads the machine with a new graph of the **same size**, reusing
    /// every buffer (field, engine scratch, metrics log, kernel scratch) —
    /// no allocation. The machine returns to its pre-[`Machine::init`]
    /// state; configuration (engine, convergence, exec path) is kept.
    pub fn reset_with(&mut self, graph: &AdjacencyMatrix) -> Result<(), GcaError> {
        self.layout.refill_field(graph, &mut self.field)?;
        self.engine.reset();
        self.metrics.clear();
        self.soa_valid = false;
        self.initialized = false;
        if let Some(v) = self.validator.as_mut() {
            v.engine.reset();
        }
        self.fault = None;
        self.inv = None;
        self.inv_fault = None;
        Ok(())
    }

    /// The current `C` vector as a [`Labeling`]. An out-of-range label —
    /// impossible on a clean run, but exactly what an undetected data
    /// fault can produce — surfaces as [`GcaError::BadLabel`] instead of
    /// a panic.
    pub fn labels(&self) -> Result<Labeling, GcaError> {
        let raw = self.labels_raw();
        crate::machine_labeling(raw.into_iter().map(|w| w as usize).collect())
    }
}

/// The result of a complete GCA run.
#[derive(Clone, Debug)]
pub struct GcaRun {
    /// Component labeling (canonical: every node labeled with the minimum
    /// node index of its component).
    pub labels: Labeling,
    /// Total generations executed (including generation 0).
    pub generations: u64,
    /// Outer iterations executed.
    pub iterations: u32,
    /// Per-generation activity/congestion metrics (empty when the engine
    /// ran with [`gca_engine::Instrumentation::Off`]).
    pub metrics: MetricsLog,
}

impl GcaRun {
    /// Worst congestion observed over the whole run.
    pub fn max_congestion(&self) -> u32 {
        self.metrics.max_congestion()
    }
}

/// Configurable front-end for running the algorithm.
///
/// ```
/// use gca_graphs::generators;
/// use gca_hirschberg::HirschbergGca;
///
/// let g = generators::gnp(24, 0.2, 7);
/// let run = HirschbergGca::new().run(&g).unwrap();
/// assert_eq!(run.labels.n(), 24);
/// ```
#[derive(Clone, Debug, Default)]
pub struct HirschbergGca {
    engine: Engine,
    early_exit: bool,
    convergence: Convergence,
    exec: ExecPath,
    swar_schedule: Option<SwarSchedule>,
}

impl HirschbergGca {
    /// Default configuration: sequential engine, congestion counting,
    /// fixed `⌈log₂ n⌉` iterations (the paper's schedule), generic
    /// execution path.
    pub fn new() -> Self {
        HirschbergGca {
            engine: Engine::sequential(),
            early_exit: false,
            convergence: Convergence::Fixed,
            exec: ExecPath::Generic,
            swar_schedule: None,
        }
    }

    /// Uses an explicit engine (backend / instrumentation).
    #[must_use]
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Sets the sub-generation convergence policy (see [`Convergence`]).
    /// Orthogonal to [`HirschbergGca::early_exit`], which stops whole outer
    /// iterations.
    #[must_use]
    pub fn convergence(mut self, convergence: Convergence) -> Self {
        self.convergence = convergence;
        self
    }

    /// Sets the execution path (see [`ExecPath`]).
    #[must_use]
    pub fn exec(mut self, exec: ExecPath) -> Self {
        self.exec = exec;
        self
    }

    /// Installs a symbolic-activity schedule for the
    /// [`ExecPath::FusedSwar`] driver (see [`Machine::with_swar_schedule`]);
    /// no effect on the other execution paths.
    #[must_use]
    pub fn with_swar_schedule(mut self, schedule: SwarSchedule) -> Self {
        self.swar_schedule = Some(schedule);
        self
    }

    /// Stops as soon as an iteration leaves `C` unchanged, instead of
    /// always running `⌈log₂ n⌉` iterations. An extension over the paper
    /// (the fixed schedule is what the hardware implements); useful in the
    /// ablation benchmarks.
    #[must_use]
    pub fn early_exit(mut self, enabled: bool) -> Self {
        self.early_exit = enabled;
        self
    }

    /// Runs the algorithm to completion on `graph`.
    pub fn run(&self, graph: &AdjacencyMatrix) -> Result<GcaRun, GcaError> {
        let n = graph.n();
        if n == 0 {
            return Ok(GcaRun {
                labels: Labeling::empty(),
                generations: 0,
                iterations: 0,
                metrics: MetricsLog::new(),
            });
        }

        let mut machine = Machine::with_engine(graph, self.engine.clone())?
            .with_convergence(self.convergence)
            .with_exec(self.exec);
        if let Some(sched) = self.swar_schedule {
            machine = machine.with_swar_schedule(sched);
        }
        machine.init()?;
        let max_iterations = ceil_log2(n);
        let mut iterations = 0;
        if self.early_exit {
            let mut previous = machine.labels_raw();
            for _ in 0..max_iterations {
                machine.run_iteration()?;
                iterations += 1;
                let current = machine.labels_raw();
                if current == previous {
                    break;
                }
                previous = current;
            }
        } else {
            // No between-iteration label reads: the batched driver defers
            // the fused paths' field writeback to the end of the run.
            machine.run_iterations(u64::from(max_iterations))?;
            iterations = max_iterations;
        }

        let generations = machine.generations();
        if !self.early_exit
            && self.convergence == Convergence::Fixed
            && self.swar_schedule.is_none_or(|sc| sc.is_structural())
        {
            // A truncated SWAR schedule legitimately executes fewer
            // generations than the closed form; every other configuration
            // must match it exactly.
            debug_assert_eq!(
                generations,
                total_generations(n),
                "generation count must match the paper's formula"
            );
        }
        Ok(GcaRun {
            labels: machine.labels()?,
            generations,
            iterations,
            metrics: std::mem::take(&mut machine.metrics),
        })
    }
}

/// One-call API: connected components of `graph` via the GCA algorithm.
///
/// Returns the canonical min-index labeling, identical (as a partition and
/// representative choice) to [`gca_graphs::connectivity::bfs_components`].
pub fn connected_components(graph: &AdjacencyMatrix) -> Result<Labeling, GcaError> {
    Ok(HirschbergGca::new().run(graph)?.labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gca_graphs::connectivity::union_find_components_dense;
    use gca_graphs::{generators, GraphBuilder};

    fn check(graph: &AdjacencyMatrix) {
        let expected = union_find_components_dense(graph);
        let run = HirschbergGca::new().run(graph).unwrap();
        assert_eq!(
            run.labels.as_slice(),
            expected.as_slice(),
            "GCA disagrees with union-find on {graph:?}"
        );
    }

    #[test]
    fn single_edge() {
        check(&GraphBuilder::new(2).edge(0, 1).build().unwrap());
    }

    #[test]
    fn two_isolated_nodes() {
        check(&generators::empty(2));
    }

    #[test]
    fn paper_scale_n4() {
        check(&GraphBuilder::new(4).edge(0, 2).edge(1, 3).build().unwrap());
    }

    #[test]
    fn path_graphs() {
        for n in [2usize, 3, 5, 8, 13] {
            check(&generators::path(n));
        }
    }

    #[test]
    fn rings_and_stars() {
        for n in [3usize, 4, 7, 16] {
            check(&generators::ring(n));
            check(&generators::star(n));
        }
    }

    #[test]
    fn complete_graphs() {
        for n in [2usize, 3, 9, 16] {
            check(&generators::complete(n));
        }
    }

    #[test]
    fn empty_graphs_label_identity() {
        for n in [1usize, 2, 6, 10] {
            let run = HirschbergGca::new().run(&generators::empty(n)).unwrap();
            let expect: Vec<usize> = (0..n).collect();
            assert_eq!(run.labels.as_slice(), &expect[..]);
        }
    }

    #[test]
    fn zero_node_graph() {
        let run = HirschbergGca::new().run(&generators::empty(0)).unwrap();
        assert_eq!(run.labels.n(), 0);
        assert_eq!(run.generations, 0);
    }

    #[test]
    fn single_node_graph() {
        let run = HirschbergGca::new().run(&generators::empty(1)).unwrap();
        assert_eq!(run.labels.as_slice(), &[0]);
        assert_eq!(run.generations, 1); // init only: log₂ 1 = 0 iterations
    }

    #[test]
    fn random_graphs_match_union_find() {
        for seed in 0..8 {
            let g = generators::gnp(21, 0.12, seed);
            check(&g);
        }
    }

    #[test]
    fn planted_components_recovered() {
        for seed in 0..4 {
            let p = generators::planted_components(24, 5, 0.5, seed);
            let run = HirschbergGca::new().run(&p.graph).unwrap();
            assert!(run.labels.same_partition(&p.expected_labels()));
        }
    }

    #[test]
    fn forests_match() {
        for seed in 0..4 {
            check(&generators::random_forest(18, 4, seed));
        }
    }

    #[test]
    fn generation_count_matches_formula() {
        for n in [2usize, 3, 4, 7, 8, 16, 20] {
            let g = generators::gnp(n, 0.3, 1);
            let run = HirschbergGca::new().run(&g).unwrap();
            assert_eq!(run.generations, total_generations(n), "n = {n}");
            assert_eq!(run.iterations, ceil_log2(n));
        }
    }

    #[test]
    fn early_exit_still_correct() {
        for seed in 0..4 {
            let g = generators::gnp(17, 0.3, seed);
            let expected = union_find_components_dense(&g);
            let run = HirschbergGca::new().early_exit(true).run(&g).unwrap();
            assert_eq!(run.labels.as_slice(), expected.as_slice());
        }
    }

    #[test]
    fn early_exit_saves_iterations_on_complete_graph() {
        // K_n merges everything in one iteration; one more detects the
        // fixpoint.
        let g = generators::complete(16);
        let run = HirschbergGca::new().early_exit(true).run(&g).unwrap();
        assert!(run.iterations <= 2, "took {} iterations", run.iterations);
    }

    #[test]
    fn detect_convergence_matches_union_find_on_all_generators() {
        // The acceptance workload: every generator family, labelings equal
        // the union-find ground truth, generation count within the paper's
        // 1 + log n · (3 log n + 8) bound.
        let graphs: Vec<AdjacencyMatrix> = vec![
            generators::path(13),
            generators::ring(16),
            generators::star(11),
            generators::complete(12),
            generators::empty(9),
            generators::gnp(20, 0.15, 2),
            generators::gnp(20, 0.4, 3),
            generators::random_forest(17, 3, 1),
            generators::planted_components(18, 4, 0.6, 5).graph,
        ];
        for g in &graphs {
            let expected = union_find_components_dense(g);
            let run = HirschbergGca::new()
                .convergence(Convergence::Detect)
                .run(g)
                .unwrap();
            assert_eq!(run.labels.as_slice(), expected.as_slice());
            assert!(
                run.generations <= total_generations(g.n()),
                "detect exceeded the fixed schedule on n = {}",
                g.n()
            );
        }
    }

    #[test]
    fn detect_convergence_saves_generations_on_star() {
        // A star's pointer chains have depth 1: one jump reaches the fixed
        // point, the next detects it, the rest of the log n schedule is
        // skipped.
        let g = generators::star(16);
        let fixed = HirschbergGca::new().run(&g).unwrap();
        let detect = HirschbergGca::new()
            .convergence(Convergence::Detect)
            .run(&g)
            .unwrap();
        assert_eq!(fixed.labels, detect.labels);
        assert!(
            detect.generations < fixed.generations,
            "detect: {} vs fixed: {}",
            detect.generations,
            fixed.generations
        );
    }

    #[test]
    fn detect_convergence_composes_with_early_exit() {
        for seed in 0..4 {
            let g = generators::gnp(15, 0.25, seed);
            let expected = union_find_components_dense(&g);
            let run = HirschbergGca::new()
                .convergence(Convergence::Detect)
                .early_exit(true)
                .run(&g)
                .unwrap();
            assert_eq!(run.labels.as_slice(), expected.as_slice());
        }
    }

    #[test]
    fn detect_convergence_skips_metrics_of_skipped_generations() {
        let g = generators::star(16);
        let run = HirschbergGca::new()
            .convergence(Convergence::Detect)
            .run(&g)
            .unwrap();
        // Every executed generation still records exactly one metrics entry.
        assert_eq!(run.metrics.generations() as u64, run.generations);
    }

    #[test]
    fn parallel_backend_matches_sequential() {
        for seed in 0..3 {
            let g = generators::gnp(19, 0.15, seed);
            let seq = HirschbergGca::new().run(&g).unwrap();
            let par = HirschbergGca::new()
                .with_engine(Engine::parallel())
                .run(&g)
                .unwrap();
            assert_eq!(seq.labels, par.labels);
            assert_eq!(seq.generations, par.generations);
        }
    }

    #[test]
    fn machine_stepwise_equals_runner() {
        let g = generators::gnp(12, 0.2, 3);
        let mut m = Machine::new(&g).unwrap();
        m.init().unwrap();
        for _ in 0..ceil_log2(12) {
            m.run_iteration().unwrap();
        }
        let run = HirschbergGca::new().run(&g).unwrap();
        assert_eq!(m.labels().unwrap(), run.labels);
        assert_eq!(m.generations(), run.generations);
    }

    #[test]
    #[should_panic(expected = "already initialized")]
    fn double_init_panics() {
        let g = generators::empty(2);
        let mut m = Machine::new(&g).unwrap();
        m.init().unwrap();
        m.init().unwrap();
    }

    #[test]
    #[should_panic(expected = "call init()")]
    fn iterate_before_init_panics() {
        let g = generators::empty(2);
        let mut m = Machine::new(&g).unwrap();
        let _ = m.run_iteration();
    }

    #[test]
    fn metrics_recorded_per_generation() {
        let g = generators::gnp(8, 0.4, 5);
        let run = HirschbergGca::new().run(&g).unwrap();
        assert_eq!(run.metrics.generations() as u64, run.generations);
        assert!(run.max_congestion() >= 1);
    }

    #[test]
    fn checkpoint_and_resume() {
        let g = generators::gnp(14, 0.2, 8);
        let reference = HirschbergGca::new().run(&g).unwrap();

        // Run one iteration, checkpoint, resume in a fresh machine.
        let mut first = Machine::new(&g).unwrap();
        first.init().unwrap();
        first.run_iteration().unwrap();
        let snap = first.snapshot();

        let mut resumed = Machine::new(&g).unwrap();
        resumed.restore(&snap).unwrap();
        for _ in 1..ceil_log2(14) {
            resumed.run_iteration().unwrap();
        }
        assert_eq!(resumed.labels().unwrap(), reference.labels);
    }

    #[test]
    fn checkpoint_survives_serialization() {
        let g = generators::ring(9);
        let mut m = Machine::new(&g).unwrap();
        m.init().unwrap();
        m.run_iteration().unwrap();
        let snap = m.snapshot();
        // The snapshot is plain data: clone-equivalence stands in for a
        // serde round trip here (the JSON round trip is tested in the
        // engine crate; HCell's serde derive is exercised by it).
        let copied = snap.clone();
        let mut restored = Machine::new(&g).unwrap();
        restored.restore(&copied).unwrap();
        assert_eq!(restored.labels_raw(), m.labels_raw());
    }

    #[test]
    fn restore_rejects_wrong_shape() {
        let g9 = generators::ring(9);
        let g8 = generators::ring(8);
        let m9 = Machine::new(&g9).unwrap();
        let snap = m9.snapshot();
        let mut m8 = Machine::new(&g8).unwrap();
        assert!(m8.restore(&snap).is_err());
    }

    #[test]
    fn convenience_function() {
        let g = generators::path(6);
        let l = connected_components(&g).unwrap();
        assert_eq!(l.as_slice(), &[0, 0, 0, 0, 0, 0]);
    }

    fn fused_test_corpus() -> Vec<AdjacencyMatrix> {
        vec![
            generators::empty(1),
            generators::empty(5),
            generators::path(7),
            generators::ring(16),
            generators::star(9),
            generators::complete(8),
            generators::gnp(20, 0.15, 2),
            generators::gnp(13, 0.45, 11),
            generators::random_forest(18, 4, 3),
            generators::planted_components(15, 3, 0.7, 1).graph,
        ]
    }

    #[test]
    fn fused_matches_generic_labels_and_metrics() {
        for g in &fused_test_corpus() {
            let generic = HirschbergGca::new().run(g).unwrap();
            let fused = HirschbergGca::new().exec(ExecPath::Fused).run(g).unwrap();
            assert_eq!(fused.labels, generic.labels, "labels diverge on {g:?}");
            assert_eq!(fused.generations, generic.generations);
            assert_eq!(
                fused.metrics.entries(),
                generic.metrics.entries(),
                "metrics diverge on {g:?}"
            );
        }
    }

    #[test]
    fn fused_matches_generic_under_detect() {
        for g in &fused_test_corpus() {
            let generic = HirschbergGca::new()
                .convergence(Convergence::Detect)
                .run(g)
                .unwrap();
            let fused = HirschbergGca::new()
                .convergence(Convergence::Detect)
                .exec(ExecPath::Fused)
                .run(g)
                .unwrap();
            assert_eq!(fused.labels, generic.labels, "labels diverge on {g:?}");
            assert_eq!(fused.generations, generic.generations, "detect skipped differently");
            assert_eq!(fused.metrics.entries(), generic.metrics.entries());
        }
    }

    #[test]
    fn fused_stepwise_reports_match_generic() {
        // The single-step API (with full reports) must agree counter by
        // counter, not just via the metrics log.
        let g = generators::gnp(11, 0.3, 4);
        let mut a = Machine::new(&g).unwrap();
        let mut b = Machine::new(&g).unwrap().with_exec(ExecPath::Fused);
        let ra = a.init().unwrap();
        let rb = b.init().unwrap();
        assert_eq!(ra.ctx, rb.ctx);
        for _ in 0..ceil_log2(11) {
            for (gen, sub) in iteration_schedule(11) {
                let ra = a.step(gen, sub).unwrap();
                let rb = b.step(gen, sub).unwrap();
                assert_eq!(ra.ctx, rb.ctx);
                assert_eq!(ra.active_cells, rb.active_cells, "{gen:?}/{sub}");
                assert_eq!(ra.total_reads, rb.total_reads, "{gen:?}/{sub}");
                assert_eq!(ra.changed_cells, rb.changed_cells, "{gen:?}/{sub}");
                assert_eq!(ra.congestion, rb.congestion, "{gen:?}/{sub}");
            }
        }
        assert_eq!(a.labels().unwrap(), b.labels().unwrap());
    }

    #[test]
    fn fused_with_instrumentation_off_still_labels_correctly() {
        for g in &fused_test_corpus() {
            let expected = union_find_components_dense(g);
            let run = HirschbergGca::new()
                .with_engine(Engine::sequential().with_instrumentation(Instrumentation::Off))
                .exec(ExecPath::Fused)
                .run(g)
                .unwrap();
            assert_eq!(run.labels.as_slice(), expected.as_slice());
            assert_eq!(run.metrics.generations(), 0);
        }
    }

    #[test]
    fn fused_trace_falls_back_to_generic() {
        let g = generators::gnp(9, 0.3, 6);
        let m = Machine::new(&g).unwrap().with_exec(ExecPath::Fused);
        assert!(m.fused_active(), "Counts instrumentation stays fused");
        let mut traced = Machine::with_engine(
            &g,
            Engine::sequential().with_instrumentation(Instrumentation::Trace),
        )
        .unwrap()
        .with_exec(ExecPath::Fused);
        assert!(!traced.fused_active(), "Trace falls back to generic");
        let rep = traced.init().unwrap();
        // The generic evaluator materialized per-cell accesses.
        assert!(rep.accesses.is_some());
    }

    #[test]
    fn fused_early_exit_composes() {
        for seed in 0..4 {
            let g = generators::gnp(15, 0.25, seed);
            let expected = union_find_components_dense(&g);
            let run = HirschbergGca::new()
                .exec(ExecPath::Fused)
                .convergence(Convergence::Detect)
                .early_exit(true)
                .run(&g)
                .unwrap();
            assert_eq!(run.labels.as_slice(), expected.as_slice());
        }
    }

    #[test]
    fn validate_stays_fused_and_runs_clean() {
        // The replay harness must be armed (Validate does NOT fall back to
        // the generic path) and a correct kernel set must pass it with
        // labels and metrics identical to a plain Counts run.
        for g in &fused_test_corpus() {
            let m = Machine::with_engine(
                g,
                Engine::sequential().with_instrumentation(Instrumentation::Validate),
            )
            .unwrap()
            .with_exec(ExecPath::Fused);
            assert!(m.fused_active(), "Validate must stay fused");
            let reference = HirschbergGca::new().run(g).unwrap();
            let validated = HirschbergGca::new()
                .with_engine(Engine::sequential().with_instrumentation(Instrumentation::Validate))
                .exec(ExecPath::Fused)
                .run(g)
                .unwrap();
            assert_eq!(validated.labels, reference.labels, "on {g:?}");
            assert_eq!(validated.generations, reference.generations);
            assert_eq!(validated.metrics.entries(), reference.metrics.entries());
        }
    }

    #[test]
    fn validate_generic_path_runs_clean() {
        // The sanitizer on the generic path: HirschbergRule's domain hints
        // are honest, so a Validate run must succeed with Counts metrics.
        let g = generators::gnp(16, 0.3, 9);
        let reference = HirschbergGca::new().run(&g).unwrap();
        let validated = HirschbergGca::new()
            .with_engine(Engine::sequential().with_instrumentation(Instrumentation::Validate))
            .run(&g)
            .unwrap();
        assert_eq!(validated.labels, reference.labels);
        assert_eq!(validated.metrics.entries(), reference.metrics.entries());
    }

    #[test]
    fn seeded_kernel_fault_is_caught_by_replay() {
        let g = generators::gnp(12, 0.3, 5);
        let mut m = Machine::with_engine(
            &g,
            Engine::sequential().with_instrumentation(Instrumentation::Validate),
        )
        .unwrap()
        .with_exec(ExecPath::Fused);
        m.init().unwrap();
        let target = 3; // a square-field cell every iteration writes
        m.seed_fused_fault(target);
        let err = m.run_iteration().unwrap_err();
        match err {
            GcaError::KernelDivergence {
                cell,
                generation,
                phase,
            } => {
                assert_eq!(cell, target);
                assert_eq!(generation, 1, "fault seeded on the first post-init generation");
                assert_eq!(phase, Gen::BroadcastC.number());
            }
            other => panic!("expected KernelDivergence, got {other:?}"),
        }
    }

    #[test]
    fn validate_detect_convergence_matches_generic() {
        for seed in 0..3 {
            let g = generators::gnp(14, 0.25, seed);
            let generic = HirschbergGca::new()
                .convergence(Convergence::Detect)
                .run(&g)
                .unwrap();
            let validated = HirschbergGca::new()
                .with_engine(Engine::sequential().with_instrumentation(Instrumentation::Validate))
                .convergence(Convergence::Detect)
                .exec(ExecPath::Fused)
                .run(&g)
                .unwrap();
            assert_eq!(validated.labels, generic.labels);
            assert_eq!(validated.generations, generic.generations);
            assert_eq!(validated.metrics.entries(), generic.metrics.entries());
        }
    }

    #[test]
    fn parallel_fused_matches_fused_labels_and_metrics() {
        use crate::kernels::FusedParallel;
        // Threshold 0 forces the parallel drivers even on tiny corpus
        // graphs; workers 0 resolves to the hardware thread count (which
        // may legitimately be 1 → sequential fallback).
        for workers in [0usize, 2, 3, 7] {
            let exec = ExecPath::FusedParallel(FusedParallel {
                workers,
                threshold: Some(0),
            });
            for g in &fused_test_corpus() {
                let fused = HirschbergGca::new().exec(ExecPath::Fused).run(g).unwrap();
                let par = HirschbergGca::new().exec(exec).run(g).unwrap();
                assert_eq!(par.labels, fused.labels, "workers={workers} on {g:?}");
                assert_eq!(par.generations, fused.generations, "workers={workers}");
                assert_eq!(
                    par.metrics.entries(),
                    fused.metrics.entries(),
                    "metrics diverge at workers={workers} on {g:?}"
                );
            }
        }
    }

    #[test]
    fn parallel_fused_stepwise_reports_match_fused() {
        use crate::kernels::FusedParallel;
        let g = generators::gnp(11, 0.3, 4);
        let exec = ExecPath::FusedParallel(FusedParallel {
            workers: 3,
            threshold: Some(0),
        });
        let mut a = Machine::new(&g).unwrap().with_exec(ExecPath::Fused);
        let mut b = Machine::new(&g).unwrap().with_exec(exec);
        a.init().unwrap();
        let rb = b.init().unwrap();
        assert_eq!(rb.workers, 3, "init must split 12 rows across 3 chunks");
        for _ in 0..ceil_log2(11) {
            for (gen, sub) in iteration_schedule(11) {
                let ra = a.step(gen, sub).unwrap();
                let rb = b.step(gen, sub).unwrap();
                assert_eq!(ra.active_cells, rb.active_cells, "{gen:?}/{sub}");
                assert_eq!(ra.total_reads, rb.total_reads, "{gen:?}/{sub}");
                assert_eq!(ra.changed_cells, rb.changed_cells, "{gen:?}/{sub}");
                assert_eq!(ra.congestion, rb.congestion, "{gen:?}/{sub}");
                assert_eq!(ra.workers, 1, "sequential fused reports one worker");
            }
        }
        assert_eq!(a.labels().unwrap(), b.labels().unwrap());
    }

    #[test]
    fn parallel_fused_auto_threshold_falls_back_on_small_fields() {
        // Default threshold (engine tunable, 16 Ki cells): an n=12 field
        // never parallelizes, and the report says so.
        let g = generators::gnp(12, 0.3, 7);
        let expected = union_find_components_dense(&g);
        let mut m = Machine::new(&g)
            .unwrap()
            .with_exec(ExecPath::fused_parallel(4));
        let rep = m.init().unwrap();
        assert_eq!(rep.workers, 1, "below threshold must fall back");
        for _ in 0..ceil_log2(12) {
            m.run_iteration().unwrap();
        }
        assert_eq!(m.labels().unwrap().as_slice(), expected.as_slice());
    }

    #[test]
    fn validate_stays_fused_parallel_and_runs_clean() {
        use crate::kernels::FusedParallel;
        let exec = ExecPath::FusedParallel(FusedParallel {
            workers: 2,
            threshold: Some(0),
        });
        for g in &fused_test_corpus() {
            let m = Machine::with_engine(
                g,
                Engine::sequential().with_instrumentation(Instrumentation::Validate),
            )
            .unwrap()
            .with_exec(exec);
            assert!(m.fused_active(), "Validate must stay fused-parallel");
            let reference = HirschbergGca::new().run(g).unwrap();
            let validated = HirschbergGca::new()
                .with_engine(Engine::sequential().with_instrumentation(Instrumentation::Validate))
                .exec(exec)
                .run(g)
                .unwrap();
            assert_eq!(validated.labels, reference.labels, "on {g:?}");
            assert_eq!(validated.generations, reference.generations);
            assert_eq!(validated.metrics.entries(), reference.metrics.entries());
        }
    }

    #[test]
    fn parallel_fused_composes_with_detect_and_early_exit() {
        use crate::kernels::FusedParallel;
        let exec = ExecPath::FusedParallel(FusedParallel {
            workers: 2,
            threshold: Some(0),
        });
        for seed in 0..4 {
            let g = generators::gnp(15, 0.25, seed);
            let expected = union_find_components_dense(&g);
            let run = HirschbergGca::new()
                .exec(exec)
                .convergence(Convergence::Detect)
                .early_exit(true)
                .run(&g)
                .unwrap();
            assert_eq!(run.labels.as_slice(), expected.as_slice());
        }
    }

    #[test]
    fn swar_matches_generic_and_fused_labels_and_metrics() {
        for g in &fused_test_corpus() {
            let generic = HirschbergGca::new().run(g).unwrap();
            let fused = HirschbergGca::new().exec(ExecPath::Fused).run(g).unwrap();
            let swar = HirschbergGca::new()
                .exec(ExecPath::fused_swar())
                .run(g)
                .unwrap();
            assert_eq!(swar.labels, generic.labels, "labels diverge on {g:?}");
            assert_eq!(swar.generations, generic.generations, "on {g:?}");
            assert_eq!(
                swar.metrics.entries(),
                generic.metrics.entries(),
                "metrics diverge vs generic on {g:?}"
            );
            assert_eq!(
                swar.metrics.entries(),
                fused.metrics.entries(),
                "metrics diverge vs fused on {g:?}"
            );
        }
    }

    #[test]
    fn swar_matches_generic_under_detect() {
        for g in &fused_test_corpus() {
            let generic = HirschbergGca::new()
                .convergence(Convergence::Detect)
                .run(g)
                .unwrap();
            let swar = HirschbergGca::new()
                .convergence(Convergence::Detect)
                .exec(ExecPath::fused_swar())
                .run(g)
                .unwrap();
            assert_eq!(swar.labels, generic.labels, "labels diverge on {g:?}");
            assert_eq!(swar.generations, generic.generations, "detect skipped differently");
            assert_eq!(swar.metrics.entries(), generic.metrics.entries());
        }
    }

    #[test]
    fn swar_stepwise_reports_match_fused() {
        // Word-at-a-time kernel bodies must be invisible in every counter,
        // sub-generation by sub-generation — including multi-word rows
        // (n = 70 spans two adjacency words).
        let g = generators::gnp(70, 0.08, 21);
        let mut a = Machine::new(&g).unwrap().with_exec(ExecPath::Fused);
        let mut b = Machine::new(&g).unwrap().with_exec(ExecPath::fused_swar());
        a.init().unwrap();
        b.init().unwrap();
        for _ in 0..ceil_log2(70) {
            for (gen, sub) in iteration_schedule(70) {
                let ra = a.step(gen, sub).unwrap();
                let rb = b.step(gen, sub).unwrap();
                assert_eq!(ra.active_cells, rb.active_cells, "{gen:?}/{sub}");
                assert_eq!(ra.total_reads, rb.total_reads, "{gen:?}/{sub}");
                assert_eq!(ra.changed_cells, rb.changed_cells, "{gen:?}/{sub}");
                assert_eq!(ra.congestion, rb.congestion, "{gen:?}/{sub}");
            }
        }
        assert_eq!(a.labels().unwrap(), b.labels().unwrap());
    }

    #[test]
    fn swar_with_instrumentation_off_still_labels_correctly() {
        for g in &fused_test_corpus() {
            let expected = union_find_components_dense(g);
            let run = HirschbergGca::new()
                .with_engine(Engine::sequential().with_instrumentation(Instrumentation::Off))
                .exec(ExecPath::fused_swar())
                .run(g)
                .unwrap();
            assert_eq!(run.labels.as_slice(), expected.as_slice());
            assert_eq!(run.metrics.generations(), 0);
        }
    }

    #[test]
    fn validate_stays_fused_swar_and_runs_clean() {
        for g in &fused_test_corpus() {
            let m = Machine::with_engine(
                g,
                Engine::sequential().with_instrumentation(Instrumentation::Validate),
            )
            .unwrap()
            .with_exec(ExecPath::fused_swar());
            assert!(m.fused_active(), "Validate must stay fused-swar");
            let reference = HirschbergGca::new().run(g).unwrap();
            let validated = HirschbergGca::new()
                .with_engine(Engine::sequential().with_instrumentation(Instrumentation::Validate))
                .exec(ExecPath::fused_swar())
                .run(g)
                .unwrap();
            assert_eq!(validated.labels, reference.labels, "on {g:?}");
            assert_eq!(validated.generations, reference.generations);
            assert_eq!(validated.metrics.entries(), reference.metrics.entries());
        }
    }

    #[test]
    fn swar_composes_with_parallel_chunking() {
        use crate::kernels::{FusedParallel, FusedSwar};
        // SWAR inside each row chunk: the parallel driver partitions rows,
        // each chunk runs the word-parallel bodies.
        let exec = ExecPath::FusedSwar(FusedSwar {
            parallel: Some(FusedParallel {
                workers: 3,
                threshold: Some(0),
            }),
        });
        for g in &fused_test_corpus() {
            let fused = HirschbergGca::new().exec(ExecPath::Fused).run(g).unwrap();
            let par = HirschbergGca::new().exec(exec).run(g).unwrap();
            assert_eq!(par.labels, fused.labels, "labels diverge on {g:?}");
            assert_eq!(par.generations, fused.generations);
            assert_eq!(
                par.metrics.entries(),
                fused.metrics.entries(),
                "metrics diverge on {g:?}"
            );
        }
    }

    #[test]
    fn swar_composes_with_detect_and_early_exit() {
        for seed in 0..4 {
            let g = generators::gnp(15, 0.25, seed);
            let expected = union_find_components_dense(&g);
            let run = HirschbergGca::new()
                .exec(ExecPath::fused_swar())
                .convergence(Convergence::Detect)
                .early_exit(true)
                .run(&g)
                .unwrap();
            assert_eq!(run.labels.as_slice(), expected.as_slice());
        }
    }

    #[test]
    fn swar_structural_schedule_changes_nothing() {
        // Installing the structural schedule explicitly is a no-op: it keeps
        // every sub-generation live, so generations and metrics stay
        // bit-identical to the un-scheduled run.
        let g = generators::gnp(19, 0.2, 8);
        let plain = HirschbergGca::new().exec(ExecPath::fused_swar()).run(&g).unwrap();
        let scheduled = HirschbergGca::new()
            .exec(ExecPath::fused_swar())
            .with_swar_schedule(SwarSchedule::structural(19))
            .run(&g)
            .unwrap();
        assert_eq!(scheduled.labels, plain.labels);
        assert_eq!(scheduled.generations, plain.generations);
        assert_eq!(scheduled.metrics.entries(), plain.metrics.entries());
    }

    #[test]
    fn swar_schedule_for_wrong_size_falls_back_to_structural() {
        let g = generators::gnp(13, 0.3, 3);
        let plain = HirschbergGca::new().exec(ExecPath::fused_swar()).run(&g).unwrap();
        // Derived for n = 64, installed on an n = 13 machine: ignored.
        let mismatched = HirschbergGca::new()
            .exec(ExecPath::fused_swar())
            .with_swar_schedule(SwarSchedule::from_bounds(64, 1, 1, 1))
            .run(&g)
            .unwrap();
        assert_eq!(mismatched.labels, plain.labels);
        assert_eq!(mismatched.generations, plain.generations);
        assert_eq!(mismatched.metrics.entries(), plain.metrics.entries());
    }

    #[test]
    fn swar_short_schedule_skips_subgenerations() {
        // A deliberately truncated schedule must actually skip generations
        // (the machine's generation counter stays behind the structural
        // count) while the dropped tree-reduction tail is harmless on a
        // graph whose rows converge after one halving step.
        let n = 8;
        let g = generators::empty(n);
        let structural = HirschbergGca::new()
            .exec(ExecPath::fused_swar())
            .run(&g)
            .unwrap();
        let clamped = HirschbergGca::new()
            .exec(ExecPath::fused_swar())
            .with_swar_schedule(SwarSchedule::from_bounds(n, 1, 1, ceil_log2(n)))
            .run(&g)
            .unwrap();
        // ceil_log2(8) = 3 outer iterations, each dropping 2 MinReduce and
        // 2 MinReduceMembers sub-generations.
        assert_eq!(clamped.generations + 12, structural.generations);
        assert_eq!(clamped.labels, structural.labels);
        let expected = union_find_components_dense(&g);
        assert_eq!(clamped.labels.as_slice(), expected.as_slice());
    }

    #[test]
    fn swar_snapshot_restore_roundtrip_agrees_with_cellfield() {
        // The serde snapshot path captures the authoritative CellField, not
        // the SoA mirror: a snapshot taken mid-SWAR-run must restore into
        // both a fresh SWAR machine and a generic machine, and all three
        // must finish in the same state.
        let g = generators::gnp(20, 0.2, 6);
        let mut swar = Machine::new(&g).unwrap().with_exec(ExecPath::fused_swar());
        swar.init().unwrap();
        swar.run_iteration().unwrap();
        let snap = swar.snapshot();
        let mut resumed_swar = Machine::new(&g).unwrap().with_exec(ExecPath::fused_swar());
        resumed_swar.restore(&snap).unwrap();
        let mut resumed_generic = Machine::new(&g).unwrap();
        resumed_generic.restore(&snap).unwrap();
        for _ in 1..ceil_log2(20) {
            swar.run_iteration().unwrap();
            resumed_swar.run_iteration().unwrap();
            resumed_generic.run_iteration().unwrap();
        }
        assert_eq!(swar.labels().unwrap(), resumed_swar.labels().unwrap());
        assert_eq!(swar.labels().unwrap(), resumed_generic.labels().unwrap());
        assert_eq!(swar.field().states(), resumed_generic.field().states());
    }

    #[test]
    fn swar_reset_with_reloads_adjacency_plane() {
        // reset_with refills the AoS field in place; the row-aligned packed
        // adjacency plane must be rebuilt for the new graph on the next
        // fused step (stale bits would corrupt FilterNeighbors).
        let g1 = generators::gnp(12, 0.3, 1);
        let g2 = generators::ring(12);
        let mut m = Machine::new(&g1).unwrap().with_exec(ExecPath::fused_swar());
        m.init().unwrap();
        for _ in 0..ceil_log2(12) {
            m.run_iteration().unwrap();
        }
        m.reset_with(&g2).unwrap();
        m.init().unwrap();
        for _ in 0..ceil_log2(12) {
            m.run_iteration().unwrap();
        }
        let expected = union_find_components_dense(&g2);
        assert_eq!(m.labels().unwrap().as_slice(), expected.as_slice());
    }

    #[test]
    fn swar_survives_generic_steps_mid_run() {
        // Flipping the exec path between iterations exercises the
        // `soa_valid` protocol: generic steps dirty the AoS field behind
        // the SoA mirror, and the next SWAR step must reload both planes.
        let g = generators::gnp(14, 0.25, 9);
        let mut m = Machine::new(&g).unwrap();
        let mut reference = Machine::new(&g).unwrap();
        m = m.with_exec(ExecPath::fused_swar());
        m.init().unwrap();
        reference.init().unwrap();
        for it in 0..ceil_log2(14) {
            m = m.with_exec(if it % 2 == 0 {
                ExecPath::fused_swar()
            } else {
                ExecPath::Generic
            });
            for (gen, sub) in iteration_schedule(14) {
                let ra = m.step(gen, sub).unwrap();
                let rb = reference.step(gen, sub).unwrap();
                assert_eq!(ra.active_cells, rb.active_cells, "{gen:?}/{sub} at iter {it}");
                assert_eq!(ra.changed_cells, rb.changed_cells, "{gen:?}/{sub} at iter {it}");
                assert_eq!(ra.total_reads, rb.total_reads, "{gen:?}/{sub} at iter {it}");
            }
        }
        assert_eq!(m.labels().unwrap(), reference.labels().unwrap());
        assert_eq!(m.field().states(), reference.field().states());
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "symbolic-activity schedule skipped an active sub-generation")]
    fn swar_validate_cross_checks_short_schedule() {
        // Under Validate a schedule that skips an in-schedule (and thus
        // provably active — active = n · per_row > 0 is data-independent)
        // sub-generation must trip the dynamic cross-check.
        let g = generators::gnp(13, 0.3, 2);
        let _ = HirschbergGca::new()
            .with_engine(Engine::sequential().with_instrumentation(Instrumentation::Validate))
            .exec(ExecPath::fused_swar())
            .with_swar_schedule(SwarSchedule::from_bounds(13, 1, 1, ceil_log2(13)))
            .run(&g);
    }

    #[test]
    fn reset_with_reuses_machine() {
        let g1 = generators::gnp(12, 0.3, 1);
        let g2 = generators::ring(12);
        let mut m = Machine::new(&g1).unwrap().with_exec(ExecPath::Fused);
        m.init().unwrap();
        for _ in 0..ceil_log2(12) {
            m.run_iteration().unwrap();
        }
        m.reset_with(&g2).unwrap();
        assert_eq!(m.generations(), 0);
        assert_eq!(m.metrics().generations(), 0);
        m.init().unwrap();
        for _ in 0..ceil_log2(12) {
            m.run_iteration().unwrap();
        }
        let expected = union_find_components_dense(&g2);
        assert_eq!(m.labels().unwrap().as_slice(), expected.as_slice());
    }

    #[test]
    fn reset_with_rejects_wrong_size() {
        let mut m = Machine::new(&generators::ring(8)).unwrap();
        assert!(m.reset_with(&generators::ring(9)).is_err());
    }

    #[test]
    fn labels_into_matches_labels_raw() {
        let g = generators::gnp(10, 0.3, 2);
        let mut m = Machine::new(&g).unwrap();
        m.init().unwrap();
        m.run_iteration().unwrap();
        let mut out = vec![99; 3];
        m.labels_into(&mut out);
        assert_eq!(out, m.labels_raw());
        assert_eq!(out.len(), 10);
    }
}
