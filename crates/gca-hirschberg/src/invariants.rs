//! Kernel contract anchors: field-level transfer functions for every
//! schedule generation, and the live [`InvariantChecker`] that replays them
//! against a running machine.
//!
//! This module is the *dynamic mirror* of the symbolic invariant prover in
//! `gca-analysis::invariants`. Both sides share one vocabulary:
//!
//! * [`contract_step`] — the per-generation Hoare-contract transfer
//!   function: given the previous data plane and the (immutable) adjacency
//!   plane, produce the data plane the contract promises for the next
//!   generation. The prover verifies per cell that this transfer is
//!   *exactly* the shipped [`HirschbergRule`](crate::HirschbergRule) (zero
//!   machine executions); the checker replays it against live fused / SWAR
//!   / parallel / generic runs.
//! * [`InvariantClass`] — the five invariant families of the induction
//!   argument (see DESIGN.md §16).
//!
//! The checker hangs off
//! [`Instrumentation::Validate`](gca_engine::Instrumentation::Validate):
//! whenever a machine validates, every committed generation is also checked
//! against the proof model, and the first broken contract surfaces as a
//! typed [`GcaError::InvariantViolation`]. Where the differential replay
//! harness answers "does the kernel match the reference engine?", this
//! answers "does the machine match the *algorithm*?".

use crate::phase::Gen;
use crate::HCell;
use gca_engine::{GcaError, InvariantCheck, StepCtx, Word, INFINITY};
use std::fmt;

/// The five invariant families of the Hirschberg induction argument.
///
/// Each class names one clause of the inductive invariant set that the
/// symbolic prover discharges for all n = 2^k and the dynamic checker
/// asserts on live runs:
///
/// * `ContractStep` — every committed generation equals the contract
///   transfer function applied to the previous generation;
/// * `LabelRange` — at every iteration boundary all labels lie in `[0, n)`;
/// * `ForestCanonicity` — at every iteration boundary the label map is an
///   idempotent, monotone (`C(v) ≤ v`) pointer forest, which makes every
///   root the minimum of its label class;
/// * `PartitionRefinement` — each iteration only *coarsens* the label
///   partition (classes never split), stays a *refinement* of the true
///   connected components, and strictly merges every unfinished class;
/// * `DepthHalving` — each pointer-jump sub-generation at least halves
///   every cell's remaining pointer-chain distance to its terminal cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InvariantClass {
    /// Committed field equals the contract transfer of the previous field.
    ContractStep,
    /// Labels in `[0, n)` at iteration boundaries.
    LabelRange,
    /// Idempotent monotone pointer forest at iteration boundaries.
    ForestCanonicity,
    /// Partition coarsens monotonically, refines the true components, and
    /// every unfinished class merges.
    PartitionRefinement,
    /// Pointer jumping halves chain depth per sub-generation.
    DepthHalving,
}

impl InvariantClass {
    /// All classes, in proof order.
    pub const ALL: [InvariantClass; 5] = [
        InvariantClass::ContractStep,
        InvariantClass::LabelRange,
        InvariantClass::ForestCanonicity,
        InvariantClass::PartitionRefinement,
        InvariantClass::DepthHalving,
    ];

    /// Stable machine-readable name (used in error payloads and the
    /// `--seed-fault` plumbing).
    pub fn name(self) -> &'static str {
        match self {
            InvariantClass::ContractStep => "contract-step",
            InvariantClass::LabelRange => "label-range",
            InvariantClass::ForestCanonicity => "forest-canonicity",
            InvariantClass::PartitionRefinement => "partition-refinement",
            InvariantClass::DepthHalving => "depth-halving",
        }
    }
}

impl fmt::Display for InvariantClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The Hoare-contract transfer function for one `(generation,
/// sub-generation)` of the schedule, expressed over the data plane alone.
///
/// `d` is the previous generation's data plane in field order (`(n+1)·n`
/// words: square rows first, then `D_N`); `adj` is the immutable adjacency
/// plane (`n·n` booleans). Returns the data plane the contract promises
/// after the generation commits. The transfer reads only the *previous*
/// plane — double buffering is inherent, exactly like the engine.
///
/// Data-dependent pointers (generations 10 and 11) are guarded with
/// "out-of-range target keeps the cell": the schedule's `LabelRange`
/// invariant proves the guard never fires on a real run (the engine would
/// reject such a pointer with `PointerOutOfRange` anyway), and the guard
/// keeps the transfer total so the checker itself cannot panic.
pub fn contract_step(n: usize, gen: Gen, sub: u32, adj: &[bool], d: &[Word]) -> Vec<Word> {
    debug_assert_eq!(d.len(), (n + 1) * n);
    debug_assert_eq!(adj.len(), n * n);
    let mut out = d.to_vec();
    let idx = |r: usize, c: usize| r * n + c;
    let dn = |k: usize| n * n + k;
    match gen {
        // d ← row(index), everywhere (including D_N).
        Gen::Init => {
            for r in 0..=n {
                for c in 0..n {
                    out[idx(r, c)] = r as Word;
                }
            }
        }
        // Every cell of column i (including D_N) reads C(i).
        Gen::BroadcastC => {
            for r in 0..=n {
                for c in 0..n {
                    out[idx(r, c)] = d[idx(c, 0)];
                }
            }
        }
        // Square cells keep d = C(col) only across an edge joining
        // different components; D_N keeps.
        Gen::FilterNeighbors => {
            for r in 0..n {
                for c in 0..n {
                    if !(adj[idx(r, c)] && d[idx(r, c)] != d[dn(r)]) {
                        out[idx(r, c)] = INFINITY;
                    }
                }
            }
        }
        // Strided in-row tree reduction: cells at even multiples of the
        // stride combine with the cell 2^s to their right.
        Gen::MinReduce | Gen::MinReduceMembers => {
            let stride = 1usize << sub;
            for r in 0..n {
                let mut c = 0;
                while c + stride < n {
                    out[idx(r, c)] = d[idx(r, c)].min(d[idx(r, c + stride)]);
                    c += stride << 1;
                }
            }
        }
        // First column: ∞ falls back to the component label saved in D_N.
        Gen::ResolveIsolated | Gen::ResolveMembers => {
            for r in 0..n {
                if d[idx(r, 0)] == INFINITY {
                    out[idx(r, 0)] = d[dn(r)];
                }
            }
        }
        // Square cells read T(col) = C(col)[0]; D_N keeps its saved C.
        Gen::BroadcastT => {
            for r in 0..n {
                for c in 0..n {
                    out[idx(r, c)] = d[idx(c, 0)];
                }
            }
        }
        // Keep T(col) only where col is a member of component `row` and its
        // candidate differs from `row`; D_N keeps.
        Gen::FilterMembers => {
            for r in 0..n {
                for c in 0..n {
                    if !(d[dn(c)] == r as Word && d[idx(r, c)] != r as Word) {
                        out[idx(r, c)] = INFINITY;
                    }
                }
            }
        }
        // Square cells (col ≥ 1) copy T(row) from column 0; D_N gathers
        // T(col) so that D_N ← T; column 0 already holds T(row).
        Gen::CopyAndSaveT => {
            for r in 0..n {
                for c in 1..n {
                    out[idx(r, c)] = d[idx(r, 0)];
                }
            }
            for c in 0..n {
                out[dn(c)] = d[idx(c, 0)];
            }
        }
        // C(row) ← C(C(row)) on the first column.
        Gen::PointerJump => {
            for r in 0..n {
                let t = d[idx(r, 0)] as usize;
                if t < n {
                    out[idx(r, 0)] = d[idx(t, 0)];
                }
            }
        }
        // C(row) ← min(C(row), T(C(row))): column 1 still holds the
        // pre-jump T (generation 9 left it there).
        Gen::FinalMin => {
            for r in 0..n {
                let t = d[idx(r, 0)] as usize;
                if t < n {
                    out[idx(r, 0)] = d[idx(r, 0)].min(d[t * n + 1]);
                }
            }
        }
    }
    out
}

/// Distance of every node to the nearest node lying on a cycle of the
/// functional graph `v → next[v]` (cycle nodes have distance 0).
///
/// Out-of-range pointers are treated as self-loops — the `LabelRange`
/// invariant proves they cannot occur on a live run, and the total
/// function keeps the checker panic-free.
fn cycle_dist(next: &[usize]) -> Vec<u32> {
    let n = next.len();
    let step = |v: usize| if next[v] < n { next[v] } else { v };
    // 0 = unvisited, 1 = on the current path, 2 = resolved.
    let mut state = vec![0u8; n];
    let mut dist = vec![0u32; n];
    let mut path_pos = vec![0usize; n];
    for start in 0..n {
        if state[start] != 0 {
            continue;
        }
        let mut path = Vec::new();
        let mut v = start;
        while state[v] == 0 {
            state[v] = 1;
            path_pos[v] = path.len();
            path.push(v);
            v = step(v);
        }
        let base = if state[v] == 1 {
            // Closed a new cycle: everything from v's position onward is on
            // it at distance 0.
            let pos = path_pos[v];
            for &c in &path[pos..] {
                dist[c] = 0;
                state[c] = 2;
            }
            path.truncate(pos);
            0
        } else {
            dist[v]
        };
        let mut depth = base;
        for &p in path.iter().rev() {
            depth += 1;
            dist[p] = depth;
            state[p] = 2;
        }
    }
    dist
}

/// Minimum-labeled representative of each node's true connected component,
/// computed once by union-find over the adjacency plane.
fn component_minima(n: usize, adj: &[bool]) -> Vec<Word> {
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut v: usize) -> usize {
        while parent[v] != v {
            parent[v] = parent[parent[v]];
            v = parent[v];
        }
        v
    }
    for r in 0..n {
        for c in (r + 1)..n {
            if adj[r * n + c] {
                let (a, b) = (find(&mut parent, r), find(&mut parent, c));
                if a != b {
                    parent[a.max(b)] = a.min(b);
                }
            }
        }
    }
    let mut minima = vec![INFINITY; n];
    for v in 0..n {
        let root = find(&mut parent, v);
        minima[root] = minima[root].min(v as Word);
    }
    (0..n).map(|v| minima[find(&mut parent, v)]).collect()
}

/// Live invariant checker: replays the contract transfer functions against
/// every committed generation of a running machine and asserts the
/// iteration-boundary invariants of the induction argument.
///
/// One checker instance observes one run. It is armed by
/// [`Machine`](crate::Machine) whenever the engine runs under
/// [`Instrumentation::Validate`](gca_engine::Instrumentation::Validate),
/// on *all* execution paths (generic, fused, fused-parallel, fused-SWAR) —
/// the proof model is execution-path-agnostic, so one shadow plane checks
/// them all.
#[derive(Clone, Debug)]
pub struct InvariantChecker {
    n: usize,
    adj: Vec<bool>,
    true_min: Vec<Word>,
    /// Shadow data plane advanced by [`contract_step`] per observation.
    spec: Vec<Word>,
    /// Labels at the last iteration boundary (identity after Init).
    iter_labels: Vec<Word>,
    fault: Option<InvariantClass>,
}

impl InvariantChecker {
    /// Build a checker from the machine's current field contents (the
    /// *pre*-state of the next generation to run). Used both at `init()`
    /// and to re-arm after `restore()` — field snapshots are meaningful at
    /// iteration boundaries, where column 0 carries the labels.
    pub fn from_states(n: usize, states: &[HCell]) -> Self {
        debug_assert_eq!(states.len(), (n + 1) * n);
        let mut adj = vec![false; n * n];
        for (i, slot) in adj.iter_mut().enumerate() {
            *slot = states[i].a;
        }
        let true_min = component_minima(n, &adj);
        let spec: Vec<Word> = states.iter().map(|c| c.d).collect();
        let iter_labels: Vec<Word> = (0..n).map(|r| spec[r * n]).collect();
        InvariantChecker {
            n,
            adj,
            true_min,
            spec,
            iter_labels,
            fault: None,
        }
    }

    /// Arm a one-shot planted fault of the given class: the next check site
    /// of that class perturbs its own inputs so the contract *must* report
    /// a violation. Test hook for the failure-injection suite (classes
    /// other than `ContractStep`/`DepthHalving` fire at the next iteration
    /// boundary; `ForestCanonicity`/`PartitionRefinement` need n ≥ 2).
    pub fn seed_fault(&mut self, class: InvariantClass) {
        self.fault = Some(class);
    }

    fn violation(&self, class: InvariantClass, ctx: &StepCtx, cell: usize) -> GcaError {
        GcaError::InvariantViolation {
            invariant: class.name().to_string(),
            generation: ctx.generation,
            phase: ctx.phase,
            cell,
        }
    }

    fn take_fault(&mut self, class: InvariantClass) -> bool {
        if self.fault == Some(class) {
            self.fault = None;
            true
        } else {
            false
        }
    }

    /// Current shadow labels (column 0 of the spec plane).
    fn spec_labels(&self) -> Vec<Word> {
        (0..self.n).map(|r| self.spec[r * self.n]).collect()
    }

    fn check_boundary(&mut self, ctx: &StepCtx) -> Result<(), GcaError> {
        let n = self.n;
        let labels = self.spec_labels();

        // LabelRange: every label in [0, n).
        let mut ranged = labels.clone();
        if self.take_fault(InvariantClass::LabelRange) && n > 0 {
            ranged[0] = n as Word;
        }
        for (v, &l) in ranged.iter().enumerate() {
            if l >= n as Word {
                return Err(self.violation(InvariantClass::LabelRange, ctx, v * n));
            }
        }

        // ForestCanonicity: idempotent and monotone, hence every root is
        // the minimum of its class.
        let mut forest = labels.clone();
        if self.take_fault(InvariantClass::ForestCanonicity) && n > 1 {
            forest[0] = 1;
        }
        for v in 0..n {
            let l = forest[v] as usize;
            if forest[v] > v as Word || (l < n && forest[l] != forest[v]) {
                return Err(self.violation(InvariantClass::ForestCanonicity, ctx, v * n));
            }
        }

        // PartitionRefinement: the iteration only coarsened the partition,
        // the result still refines the true components, and every
        // unfinished class merged with at least one other.
        let (old, new) = if self.take_fault(InvariantClass::PartitionRefinement) && n > 1 {
            ((vec![0; n]), (0..n as Word).collect::<Vec<_>>())
        } else {
            (self.iter_labels.clone(), labels.clone())
        };
        // Coarsening: new labels are constant on old classes.
        let mut fused_to = vec![None; n];
        for v in 0..n {
            let o = old[v] as usize;
            if o >= n {
                continue; // out-of-range old labels were caught above
            }
            match fused_to[o] {
                None => fused_to[o] = Some(new[v]),
                Some(l) if l != new[v] => {
                    return Err(self.violation(InvariantClass::PartitionRefinement, ctx, v * n));
                }
                Some(_) => {}
            }
        }
        // Refinement: new classes never span two true components.
        let mut class_min = vec![None; n];
        for v in 0..n {
            let l = new[v] as usize;
            if l >= n {
                continue;
            }
            match class_min[l] {
                None => class_min[l] = Some(self.true_min[v]),
                Some(m) if m != self.true_min[v] => {
                    return Err(self.violation(InvariantClass::PartitionRefinement, ctx, v * n));
                }
                Some(_) => {}
            }
        }
        // Progress: s_new ≤ finished + ⌊(s_old − finished) / 2⌋ — every
        // class that is not yet a whole component merges with another.
        let mut comp_size = vec![0usize; n];
        for v in 0..n {
            comp_size[self.true_min[v] as usize] += 1;
        }
        let mut old_size = vec![0usize; n];
        for v in 0..n {
            let o = old[v] as usize;
            if o < n {
                old_size[o] += 1;
            }
        }
        let finished = (0..n)
            .filter(|&l| old_size[l] > 0 && old_size[l] == comp_size[self.true_min[l] as usize])
            .count();
        let s_old = old_size.iter().filter(|&&s| s > 0).count();
        let mut seen_new = vec![false; n];
        for v in 0..n {
            let l = new[v] as usize;
            if l < n {
                seen_new[l] = true;
            }
        }
        let s_new = seen_new.iter().filter(|&&s| s).count();
        if s_new > finished + (s_old - finished.min(s_old)) / 2 {
            return Err(self.violation(InvariantClass::PartitionRefinement, ctx, 0));
        }

        self.iter_labels = labels;
        Ok(())
    }
}

impl InvariantCheck<HCell> for InvariantChecker {
    fn after_generation(&mut self, ctx: &StepCtx, states: &[HCell]) -> Result<(), GcaError> {
        let n = self.n;
        let Some(gen) = Gen::from_number(ctx.phase) else {
            return Ok(()); // foreign phase tag: not ours to judge
        };

        // Chain-depth pre-image for the halving check.
        let pre_depth = (gen == Gen::PointerJump).then(|| {
            let next: Vec<usize> = self.spec_labels().iter().map(|&l| l as usize).collect();
            cycle_dist(&next)
        });

        // ContractStep: the committed plane is exactly the transfer of the
        // previous plane.
        self.spec = contract_step(n, gen, ctx.subgeneration, &self.adj, &self.spec);
        if self.take_fault(InvariantClass::ContractStep) && !self.spec.is_empty() {
            self.spec[0] = self.spec[0].wrapping_add(1);
        }
        for (i, cell) in states.iter().enumerate() {
            if cell.d != self.spec[i] {
                return Err(self.violation(InvariantClass::ContractStep, ctx, i));
            }
        }

        if gen == Gen::Init {
            // The induction base: labels are the identity forest.
            self.iter_labels = (0..n as Word).collect();
        }

        if let Some(pre) = pre_depth {
            let next: Vec<usize> = self.spec_labels().iter().map(|&l| l as usize).collect();
            let mut post = cycle_dist(&next);
            if self.take_fault(InvariantClass::DepthHalving) && n > 0 {
                post[0] = pre[0].div_ceil(2) + 1;
            }
            for v in 0..n {
                if post[v] > pre[v].div_ceil(2) {
                    return Err(self.violation(InvariantClass::DepthHalving, ctx, v * n));
                }
            }
        }

        if gen == Gen::FinalMin {
            self.check_boundary(ctx)?;
        }

        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::iteration_schedule;
    use crate::{HirschbergRule, Layout};
    use gca_engine::Engine;
    use gca_graphs::GraphBuilder;

    /// The contract transfer function is the rule: run a full schedule on a
    /// real engine and replay every generation through `contract_step`.
    #[test]
    fn contract_step_tracks_the_engine_exactly() {
        let n = 6;
        let g = GraphBuilder::new(n)
            .edge(0, 3)
            .edge(3, 5)
            .edge(1, 2)
            .build()
            .unwrap();
        let layout = Layout::new(n).unwrap();
        let mut field = layout.build_field(&g).unwrap();
        let rule = HirschbergRule::new(n);
        let mut engine = Engine::sequential();
        let adj: Vec<bool> = (0..n * n).map(|i| field.get(i).a).collect();
        let mut spec: Vec<Word> = (0..field.len()).map(|i| field.get(i).d).collect();

        let mut schedule = vec![(Gen::Init, 0)];
        for _ in 0..crate::complexity::ceil_log2(n) {
            schedule.extend(iteration_schedule(n));
        }
        for (gen, sub) in schedule {
            engine.step(&mut field, &rule, gen.number(), sub).unwrap();
            spec = contract_step(n, gen, sub, &adj, &spec);
            for i in 0..field.len() {
                assert_eq!(
                    field.get(i).d,
                    spec[i],
                    "cell {i} diverged at {gen:?} sub {sub}"
                );
            }
        }
        // And the fixed point is the component minima.
        assert_eq!(layout.extract_labels(&field), vec![0, 1, 1, 0, 4, 0]);
    }

    #[test]
    fn cycle_dist_measures_chain_depth() {
        // 0 ↔ 1 two-cycle; 2 → 1; 3 → 2; 4 → 4 self-loop.
        let next = [1usize, 0, 1, 2, 4];
        assert_eq!(cycle_dist(&next), vec![0, 0, 1, 2, 0]);
    }

    #[test]
    fn cycle_dist_tolerates_out_of_range_pointers() {
        // Out-of-range targets degrade to self-loops instead of panicking.
        assert_eq!(cycle_dist(&[7usize, 0]), vec![0, 1]);
    }

    #[test]
    fn component_minima_match_union_find() {
        let n = 5;
        let mut adj = vec![false; n * n];
        for (a, b) in [(0, 4), (1, 3)] {
            adj[a * n + b] = true;
            adj[b * n + a] = true;
        }
        assert_eq!(component_minima(n, &adj), vec![0, 1, 2, 1, 0]);
    }

    #[test]
    fn class_names_are_stable() {
        let names: Vec<&str> = InvariantClass::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(
            names,
            vec![
                "contract-step",
                "label-range",
                "forest-canonicity",
                "partition-refinement",
                "depth-halving",
            ]
        );
        assert_eq!(InvariantClass::DepthHalving.to_string(), "depth-halving");
    }
}
