//! Hirschberg's connected-components algorithm on a Global Cellular
//! Automaton — the primary contribution of the reproduced paper.
//!
//! The paper expands the six steps of the Hirschberg–Chandra–Sarwate PRAM
//! algorithm (Listing 1) into **twelve GCA generations** (Figure 2) over an
//! `(n+1) × n` cell field:
//!
//! | Gen | Step | Action |
//! |----:|-----:|--------|
//! | 0   | 1    | initialize `d ← row(index)` |
//! | 1   | 2    | broadcast vector `C` (column 0) into every row; save `C` in `D_N` |
//! | 2   | 2    | keep `d` where `A(i,j) = 1 ∧ C(i) ≠ C(j)`, else `∞` |
//! | 3   | 2    | row-wise min by tree reduction (`⌈log₂ n⌉` sub-generations) |
//! | 4   | 2    | `∞` results fall back to `C(i)` (read from `D_N`) |
//! | 5   | 3    | broadcast vector `T` into every row |
//! | 6   | 3    | keep `d` where `C(i) = j ∧ T(i) ≠ j`, else `∞` |
//! | 7   | 3    | = generation 3 |
//! | 8   | 3    | = generation 4 |
//! | 9   | 4    | copy `T` across columns; save `T` in `D_N` |
//! | 10  | 5    | pointer jumping `C(i) ← C(C(i))` (`⌈log₂ n⌉` sub-generations) |
//! | 11  | 6    | `C(i) ← min(C(i), T(C(i)))` — resolves the root 2-cycle |
//!
//! Generations 1–11 repeat for `⌈log₂ n⌉` outer iterations, for a total of
//! `1 + log n · (3·log n + 8)` generations (`O(log² n)` on `n(n+1)` cells).
//!
//! Entry points:
//!
//! * [`connected_components`] — one-call API over an adjacency matrix;
//! * [`Machine`] — the generation-level stepper (drive the state machine
//!   yourself; used by the figure/table binaries);
//! * [`HirschbergGca`] — configurable runner (backend, instrumentation,
//!   early exit, execution path);
//! * [`kernels`] — fused flat-array kernels ([`ExecPath::Fused`]), metrics-
//!   identical to the generic engine path;
//! * [`batch`] — the batched multi-graph runner (aggregate graphs/sec);
//! * [`variants`] — the design-space variants the paper discusses: an
//!   `n`-cell machine (§3's "decide between n and n² cells") and a
//!   low-congestion machine using tree-shaped reads (§4);
//! * [`complexity`] — the closed-form generation counts (Table 2);
//! * [`table1`] — the paper's activity/congestion accounting vs. measurement.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod algorithm;
pub mod batch;
mod cell;
pub mod complexity;
mod hfield;
pub mod invariants;
pub mod kernels;
mod layout;
mod phase;
mod rule;
pub mod supervise;
pub mod swar;
pub mod table1;
pub mod timing;
pub mod variants;

pub use algorithm::{connected_components, Convergence, GcaRun, HirschbergGca, Machine};
pub use batch::{BatchReport, BatchRunner, BatchStats, ContainedReport, GraphFault};
pub use cell::HCell;
pub use invariants::{contract_step, InvariantChecker, InvariantClass};
pub use kernels::{ExecPath, FusedParallel, FusedSwar};
pub use layout::Layout;
pub use supervise::SupervisedMachine;
pub use swar::SwarSchedule;
pub use phase::{iteration_schedule, Gen};
pub use rule::HirschbergRule;

use gca_engine::GcaError;
use gca_graphs::{GraphError, Labeling};

/// Wraps labels read back from a finished machine run, converting the
/// graph layer's range check into a typed engine error instead of a
/// panic. A label `≥ n` coming out of a run means the machine's final
/// state is corrupt — callers surface that as [`GcaError::BadLabel`].
pub(crate) fn machine_labeling(labels: Vec<usize>) -> Result<Labeling, GcaError> {
    let n = labels.len();
    Labeling::new(labels).map_err(|e| match e {
        GraphError::NodeOutOfRange { node, n } => GcaError::BadLabel { label: node, n },
        // `Labeling::new` only performs the range check; other graph
        // errors cannot occur here, but stay typed rather than panic.
        _ => GcaError::BadLabel { label: usize::MAX, n },
    })
}
