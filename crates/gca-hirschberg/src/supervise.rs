//! The Hirschberg machine as a [`Recoverable`] unit-of-work provider —
//! the algorithm half of the checkpoint/rollback recovery stack.
//!
//! The engine's [`gca_engine::recovery::Supervisor`] is
//! algorithm-agnostic: it drives anything that can re-execute itself in
//! *units* from captured checkpoints. For the Hirschberg schedule the
//! natural unit is one **outer iteration** (generations 1–11 with their
//! sub-generations): every generation reads only the previous
//! generation's committed state, so an iteration boundary is a
//! consistent cut — a snapshot there plus the engine's generation
//! counter reconstructs the machine exactly, including (under counting
//! instrumentation) a metrics log bit-identical to an undisturbed run.
//!
//! [`SupervisedMachine`] also carries the **degradation ladder**: the
//! four execution paths are bit-identical in labels and `Counts`
//! metrics (a property the test suite and the differential replay
//! harness enforce), so when a rung keeps diverging the supervisor can
//! step down
//!
//! ```text
//! fused-swar → fused-par → fused → generic
//! ```
//!
//! and re-execute the faulted span on a less-optimized but
//! semantically identical path. A sticky fault bound to an upper rung
//! (see [`gca_engine::faults::Persistence::Sticky`]) stops firing once
//! the ladder drops below its level — the model of a fault living in
//! an optimized kernel's own machinery.

use crate::complexity::ceil_log2;
use crate::{ExecPath, FusedParallel, HCell, Machine};
use gca_engine::recovery::{Checkpoint, Recoverable};
use gca_engine::{Engine, GcaError};
use gca_graphs::{AdjacencyMatrix, Labeling};

/// Stable rung name of an execution path (report vocabulary).
pub fn rung_name(exec: ExecPath) -> &'static str {
    match exec {
        ExecPath::Generic => "generic",
        ExecPath::Fused => "fused",
        ExecPath::FusedParallel(_) => "fused-par",
        ExecPath::FusedSwar(_) => "fused-swar",
    }
}

/// The rung one below `exec` on the degradation ladder, or `None` at
/// the bottom. A SWAR configuration carrying an inner parallel policy
/// degrades to that policy (the same worker layout, minus the SWAR row
/// bodies); a plain SWAR configuration skips to the sequential fused
/// path — there is no parallel layout to preserve.
pub fn degraded(exec: ExecPath) -> Option<ExecPath> {
    match exec {
        ExecPath::FusedSwar(cfg) => Some(match cfg.parallel {
            Some(par) => ExecPath::FusedParallel(par),
            None => ExecPath::FusedParallel(FusedParallel::with_workers(0)),
        }),
        ExecPath::FusedParallel(_) => Some(ExecPath::Fused),
        ExecPath::Fused => Some(ExecPath::Generic),
        ExecPath::Generic => None,
    }
}

/// A [`Machine`] plus the graph it runs, packaged as the
/// [`Recoverable`] the engine-level supervisor drives.
///
/// The wrapper owns the machine; the graph is borrowed because
/// [`Recoverable::start`] re-seeds the field from it on every (re)start.
pub struct SupervisedMachine<'g> {
    machine: Machine,
    graph: &'g AdjacencyMatrix,
}

impl<'g> SupervisedMachine<'g> {
    /// Builds a supervised machine for `graph` with an explicit engine
    /// and execution path.
    pub fn new(
        graph: &'g AdjacencyMatrix,
        engine: Engine,
        exec: ExecPath,
    ) -> Result<Self, GcaError> {
        let machine = Machine::with_engine(graph, engine)?.with_exec(exec);
        Ok(SupervisedMachine { machine, graph })
    }

    /// Wraps an already-configured machine (fault plan, schedule, …).
    /// The machine must have been built for `graph`'s size.
    pub fn from_machine(machine: Machine, graph: &'g AdjacencyMatrix) -> Self {
        SupervisedMachine { machine, graph }
    }

    /// The wrapped machine.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Mutable access to the wrapped machine (arming fault plans,
    /// inspecting metrics between supervised runs).
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// Consumes the wrapper, returning the machine.
    pub fn into_machine(self) -> Machine {
        self.machine
    }

    /// The final labeling of a completed supervised run.
    pub fn labels(&self) -> Result<Labeling, GcaError> {
        self.machine.labels()
    }
}

impl Recoverable for SupervisedMachine<'_> {
    type Cell = HCell;

    fn total_units(&self) -> u64 {
        u64::from(ceil_log2(self.machine.n()))
    }

    fn start(&mut self) -> Result<(), GcaError> {
        self.machine.reset_with(self.graph)?;
        self.machine.init()?;
        Ok(())
    }

    fn run_unit(&mut self) -> Result<(), GcaError> {
        self.machine.run_iteration()?;
        Ok(())
    }

    fn generations(&self) -> u64 {
        self.machine.generations()
    }

    fn capture(&self, unit: u64) -> Checkpoint<HCell> {
        Checkpoint {
            unit,
            generation: self.machine.generations(),
            snapshot: self.machine.snapshot(),
        }
    }

    fn rollback(&mut self, checkpoint: &Checkpoint<HCell>) -> Result<(), GcaError> {
        self.machine
            .rollback_to(checkpoint.generation, &checkpoint.snapshot)
    }

    fn rung(&self) -> &'static str {
        rung_name(self.machine.exec())
    }

    fn degrade(&mut self) -> Option<&'static str> {
        let next = degraded(self.machine.exec())?;
        self.machine.set_exec(next);
        Some(rung_name(next))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gca_engine::faults::{FaultKind, FaultPlan, FaultSpec};
    use gca_engine::recovery::{RecoveryOutcome, RecoveryPolicy, Supervisor};
    use gca_engine::Instrumentation;
    use gca_graphs::connectivity::union_find_components_dense;
    use gca_graphs::generators;

    fn validate_engine() -> Engine {
        Engine::sequential().with_instrumentation(Instrumentation::Validate)
    }

    #[test]
    fn ladder_walks_all_four_rungs() {
        let mut exec = ExecPath::fused_swar();
        let mut names = vec![rung_name(exec)];
        while let Some(next) = degraded(exec) {
            names.push(rung_name(next));
            exec = next;
        }
        assert_eq!(names, ["fused-swar", "fused-par", "fused", "generic"]);
    }

    #[test]
    fn clean_supervised_run_matches_union_find() {
        let g = generators::gnp(24, 0.15, 11);
        let expected = union_find_components_dense(&g);
        let mut sm =
            SupervisedMachine::new(&g, validate_engine(), ExecPath::fused_swar()).unwrap();
        let report = Supervisor::default().run(&mut sm);
        assert!(matches!(report.outcome, RecoveryOutcome::Clean), "{report}");
        assert_eq!(sm.labels().unwrap().as_slice(), expected.as_slice());
        assert_eq!(report.final_rung, "fused-swar");
    }

    #[test]
    fn transient_fault_recovers_under_retry_with_identical_labels() {
        let g = generators::path(24);
        let expected = union_find_components_dense(&g);
        // A clean run's metrics are the bit-identity reference.
        let mut clean =
            SupervisedMachine::new(&g, validate_engine(), ExecPath::Fused).unwrap();
        let clean_report = Supervisor::default().run(&mut clean);
        assert!(matches!(clean_report.outcome, RecoveryOutcome::Clean));

        let mut sm = SupervisedMachine::new(&g, validate_engine(), ExecPath::Fused).unwrap();
        // Flip a label bit in the middle of the second iteration.
        let gens_per_iter = (clean.machine().generations() - 1) / 5;
        let target = 1 + gens_per_iter + 3;
        sm.machine_mut()
            .set_fault_plan(Some(FaultPlan::new(FaultKind::BitFlip { bit: 0 }, target, 5)));
        let report = Supervisor::new(RecoveryPolicy::Retry { max_attempts: 3 }).run(&mut sm);
        assert!(matches!(report.outcome, RecoveryOutcome::Recovered), "{report}");
        assert_eq!(report.first_detector(), Some("differential-replay"));
        assert!(report.checkpoints_restored >= 1);
        assert_eq!(sm.labels().unwrap().as_slice(), expected.as_slice());
        assert_eq!(
            sm.machine().metrics().entries(),
            clean.machine().metrics().entries(),
            "recovered metrics must be bit-identical to a clean run"
        );
    }

    #[test]
    fn sticky_fault_degrades_off_the_faulty_rung() {
        let g = generators::path(20);
        let expected = union_find_components_dense(&g);
        let mut sm =
            SupervisedMachine::new(&g, validate_engine(), ExecPath::fused_swar()).unwrap();
        // Sticky at the top rung: fires on every re-execution until the
        // ladder drops below fused-swar.
        let plan = FaultSpec::parse("bitflip@5.3.1:sticky")
            .unwrap()
            .resolve(sm.machine().field().len(), 100, sm.machine().exec_level());
        sm.machine_mut().set_fault_plan(Some(plan));
        let report = Supervisor::new(RecoveryPolicy::Degrade).run(&mut sm);
        assert!(matches!(report.outcome, RecoveryOutcome::Recovered), "{report}");
        assert_eq!(report.initial_rung, "fused-swar");
        assert_eq!(report.final_rung, "fused-par");
        assert_eq!(report.degradations, 1);
        assert_eq!(sm.labels().unwrap().as_slice(), expected.as_slice());
    }

    #[test]
    fn generic_path_detects_via_invariant_checker() {
        let g = generators::path(16);
        let expected = union_find_components_dense(&g);
        let mut sm =
            SupervisedMachine::new(&g, validate_engine(), ExecPath::Generic).unwrap();
        sm.machine_mut()
            .set_fault_plan(Some(FaultPlan::new(FaultKind::BitFlip { bit: 2 }, 7, 9)));
        let report = Supervisor::new(RecoveryPolicy::Retry { max_attempts: 3 }).run(&mut sm);
        assert!(matches!(report.outcome, RecoveryOutcome::Recovered), "{report}");
        assert_eq!(report.first_detector(), Some("invariant-checker"));
        assert_eq!(sm.labels().unwrap().as_slice(), expected.as_slice());
    }

    #[test]
    fn fail_policy_propagates_the_detection() {
        let g = generators::path(16);
        let mut sm = SupervisedMachine::new(&g, validate_engine(), ExecPath::Fused).unwrap();
        sm.machine_mut()
            .set_fault_plan(Some(FaultPlan::new(FaultKind::BitFlip { bit: 0 }, 7, 9)));
        let report = Supervisor::new(RecoveryPolicy::Fail).run(&mut sm);
        assert!(matches!(report.outcome, RecoveryOutcome::Exhausted(_)), "{report}");
        assert_eq!(report.checkpoints_restored, 0);
    }
}
