use crate::{Gen, HCell};
use gca_engine::{Access, Domain, FieldShape, GcaRule, Reads, StepCtx, Word, INFINITY};

/// The uniform cell rule of Figure 2: one `(pointer operation, data
/// operation)` pair per generation, selected by [`StepCtx::phase`].
///
/// Every cell executes the same rule; position-dependent behaviour branches
/// on the cell's row/column, distinguishing the square field `D□`, the first
/// column `D[0]` and the extra bottom row `D_N` exactly as the paper's state
/// graph does. Reconstruction notes for the OCR-damaged parts of Figure 2
/// are in DESIGN.md §3:
///
/// * generation 6 points at `D_N[col]` (the member's component `C(i)`), not
///   `D_N[row]` — required by the step-3 predicate `C(i) = j ∧ T(i) ≠ j`;
/// * generation 9 also refreshes `D_N ← T` (the prose demands it;
///   generation 11 reads `T` afterwards);
/// * the generation 3/7 tree reduction only combines when
///   `col + 2^s < n`, so reads never cross a row boundary.
#[derive(Clone, Copy, Debug)]
pub struct HirschbergRule {
    n: usize,
}

impl HirschbergRule {
    /// Rule for a graph of `n` nodes on the `(n+1) × n` field.
    pub fn new(n: usize) -> Self {
        HirschbergRule { n }
    }

    /// Problem size `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Linear index of `D<row>[0]`.
    #[inline]
    fn c_index(&self, row: usize) -> usize {
        row * self.n
    }

    /// Linear index of `D_N[k]`.
    #[inline]
    fn dn_index(&self, k: usize) -> usize {
        self.n * self.n + k
    }

    /// Does the cell at `(row, col)` participate in tree-reduction
    /// sub-generation `s`? (It combines with the cell `2^s` to its right.)
    #[inline]
    fn reduces(&self, row: usize, col: usize, s: u32) -> bool {
        let stride = 1usize << s;
        row < self.n && col.is_multiple_of(stride << 1) && col + stride < self.n
    }

    fn phase(ctx: &StepCtx) -> Gen {
        Gen::from_number(ctx.phase)
            .unwrap_or_else(|| panic!("invalid Hirschberg phase {}", ctx.phase))
    }
}

impl GcaRule for HirschbergRule {
    type State = HCell;

    fn access(&self, ctx: &StepCtx, shape: &FieldShape, index: usize, own: &HCell) -> Access {
        let n = self.n;
        let row = shape.row(index);
        let col = shape.col(index);
        match Self::phase(ctx) {
            // d ← row(index): pure initialization, no global read.
            Gen::Init => Access::None,

            // P<j>[i] = <i>[0] — every cell of column i reads C(i).
            Gen::BroadcastC => Access::One(self.c_index(col)),

            // P<j>[i] = <n>[j] — square cells read C(row) from D_N.
            Gen::FilterNeighbors => {
                if row < n {
                    Access::One(self.dn_index(row))
                } else {
                    Access::None
                }
            }

            // p = index + 2^s, guarded to stay inside the row.
            Gen::MinReduce | Gen::MinReduceMembers => {
                if self.reduces(row, col, ctx.subgeneration) {
                    Access::One(index + (1 << ctx.subgeneration))
                } else {
                    Access::None
                }
            }

            // First-column cells read C(row) from D_N for the ∞ fallback.
            Gen::ResolveIsolated | Gen::ResolveMembers => {
                if col == 0 && row < n {
                    Access::One(self.dn_index(row))
                } else {
                    Access::None
                }
            }

            // Like generation 1, but the last row keeps its saved C.
            Gen::BroadcastT => {
                if row < n {
                    Access::One(self.c_index(col))
                } else {
                    Access::None
                }
            }

            // Square cells read C(col) from D_N (see DESIGN.md §3).
            Gen::FilterMembers => {
                if row < n {
                    Access::One(self.dn_index(col))
                } else {
                    Access::None
                }
            }

            // Square cells copy T(row) from column 0; the last row gathers
            // T(col) so that D_N ← T.
            Gen::CopyAndSaveT => {
                if row == n {
                    Access::One(self.c_index(col))
                } else if col == 0 {
                    Access::None
                } else {
                    Access::One(self.c_index(row))
                }
            }

            // p = d·n — data-dependent pointer: C(row) ← C(C(row)).
            Gen::PointerJump => {
                if col == 0 && row < n {
                    Access::One((own.d as usize) * n)
                } else {
                    Access::None
                }
            }

            // p = d·n + 1 — column 1 of row C still holds the pre-jump
            // T = C_step4, so d* = T(C(row)).
            Gen::FinalMin => {
                if col == 0 && row < n {
                    Access::One((own.d as usize) * n + 1)
                } else {
                    Access::None
                }
            }
        }
    }

    fn evolve(
        &self,
        ctx: &StepCtx,
        shape: &FieldShape,
        index: usize,
        own: &HCell,
        reads: Reads<'_, HCell>,
    ) -> HCell {
        let n = self.n;
        let row = shape.row(index);
        match Self::phase(ctx) {
            Gen::Init => own.with_d(row as Word),

            Gen::BroadcastC => own.with_d(reads.expect_first("gen1").d),

            Gen::FilterNeighbors => {
                if row == n {
                    *own
                } else {
                    let c_row = reads.expect_first("gen2").d;
                    // Keep d = C(col) only where an edge connects `row` to
                    // `col` and the endpoints are in different components.
                    if own.a && own.d != c_row {
                        *own
                    } else {
                        own.with_d(INFINITY)
                    }
                }
            }

            Gen::MinReduce | Gen::MinReduceMembers => match reads.first() {
                Some(neigh) => own.with_d(own.d.min(neigh.d)),
                None => *own,
            },

            Gen::ResolveIsolated | Gen::ResolveMembers => match reads.first() {
                Some(saved_c) if own.d == INFINITY => own.with_d(saved_c.d),
                _ => *own,
            },

            Gen::BroadcastT => match reads.first() {
                Some(t) => own.with_d(t.d),
                None => *own, // last row keeps the saved C
            },

            Gen::FilterMembers => {
                if row == n {
                    *own
                } else {
                    let c_col = reads.expect_first("gen6").d;
                    let j = row as Word;
                    // Keep T(col) only where col is a member of component
                    // `row` and its candidate differs from `row`.
                    if c_col == j && own.d != j {
                        *own
                    } else {
                        own.with_d(INFINITY)
                    }
                }
            }

            Gen::CopyAndSaveT => match reads.first() {
                Some(t) => own.with_d(t.d),
                None => *own, // column 0 already holds T(row)
            },

            Gen::PointerJump => match reads.first() {
                Some(target) => own.with_d(target.d),
                None => *own,
            },

            Gen::FinalMin => match reads.first() {
                Some(t_of_c) => own.with_d(own.d.min(t_of_c.d)),
                None => *own,
            },
        }
    }

    /// The active-domain hints follow Table 1's "cells performing a
    /// calculation" column: most generations only compute in the square
    /// field (`Rows(0..n)`), the first column (`Cols(0..1)`), or the strided
    /// tree-reduction set. Out-of-domain cells are identity / access-free /
    /// inactive in every branch of [`access`](Self::access) and
    /// [`evolve`](Self::evolve) above, so hinted stepping is bit-identical
    /// to dense — `table1::tests` verifies this per generation against
    /// [`gca_engine::DomainPolicy::Dense`].
    fn domain(&self, ctx: &StepCtx, _shape: &FieldShape) -> Domain {
        let n = self.n;
        match Self::phase(ctx) {
            // Whole field: init writes everywhere, gen 1 broadcasts into
            // D_N too, and gen 9 computes everywhere except column 0 of the
            // square (not a row/column shape — stay dense).
            Gen::Init | Gen::BroadcastC | Gen::CopyAndSaveT => Domain::All,

            // Square-field generations: the extra row D_N is untouched.
            Gen::FilterNeighbors | Gen::BroadcastT | Gen::FilterMembers => Domain::Rows(0..n),

            // Tree reduction: sub-generation 0 touches every other cell of
            // the square (half the field — a dense band); later strides are
            // genuinely sparse, listed explicitly.
            Gen::MinReduce | Gen::MinReduceMembers => {
                let s = ctx.subgeneration;
                if s == 0 {
                    Domain::Rows(0..n)
                } else {
                    let stride = 1usize << s;
                    let mut indices = Vec::new();
                    for row in 0..n {
                        let mut col = 0;
                        while col + stride < n {
                            indices.push(row * n + col);
                            col += stride << 1;
                        }
                    }
                    Domain::Sparse(indices)
                }
            }

            // First-column generations; cell (n, 0) is inside `Cols(0..1)`
            // but is a no-op for these phases, which is harmless.
            Gen::ResolveIsolated | Gen::ResolveMembers | Gen::PointerJump | Gen::FinalMin => {
                Domain::Cols(0..1)
            }
        }
    }

    fn is_active(&self, ctx: &StepCtx, shape: &FieldShape, index: usize, _own: &HCell) -> bool {
        let n = self.n;
        let row = shape.row(index);
        let col = shape.col(index);
        match Self::phase(ctx) {
            // "Active cells are cells that perform a calculation."
            Gen::Init | Gen::BroadcastC => true,
            Gen::FilterNeighbors | Gen::FilterMembers | Gen::BroadcastT => row < n,
            Gen::MinReduce | Gen::MinReduceMembers => self.reduces(row, col, ctx.subgeneration),
            Gen::ResolveIsolated | Gen::ResolveMembers | Gen::PointerJump | Gen::FinalMin => {
                col == 0 && row < n
            }
            Gen::CopyAndSaveT => row == n || col != 0,
        }
    }

    fn name(&self) -> &str {
        "hirschberg-gca"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Layout;
    use gca_engine::{CellField, Engine};
    use gca_graphs::GraphBuilder;

    /// Builds the field for the 2-component graph {0–1}, {2} and runs
    /// generation 0 and 1.
    fn after_broadcast() -> (Layout, CellField<HCell>, Engine, HirschbergRule) {
        let g = GraphBuilder::new(3).edge(0, 1).build().unwrap();
        let layout = Layout::new(3).unwrap();
        let mut field = layout.build_field(&g).unwrap();
        let rule = HirschbergRule::new(3);
        let mut engine = Engine::sequential();
        engine
            .step(&mut field, &rule, Gen::Init.number(), 0)
            .unwrap();
        engine
            .step(&mut field, &rule, Gen::BroadcastC.number(), 0)
            .unwrap();
        (layout, field, engine, rule)
    }

    #[test]
    fn init_sets_row_numbers() {
        let g = GraphBuilder::new(3).build().unwrap();
        let layout = Layout::new(3).unwrap();
        let mut field = layout.build_field(&g).unwrap();
        let rule = HirschbergRule::new(3);
        let mut engine = Engine::sequential();
        let rep = engine
            .step(&mut field, &rule, Gen::Init.number(), 0)
            .unwrap();
        for idx in 0..field.len() {
            assert_eq!(field.get(idx).d as usize, layout.shape().row(idx));
        }
        // All n(n+1) cells are active, none read (Table 1, generation 0).
        assert_eq!(rep.active_cells, 12);
        assert_eq!(rep.total_reads, 0);
    }

    #[test]
    fn broadcast_copies_c_into_rows_and_dn() {
        let (layout, field, _, _) = after_broadcast();
        // After init C = [0, 1, 2]; after broadcast every row holds C.
        for j in 0..4 {
            for i in 0..3 {
                assert_eq!(field.at(j, i).d, i as Word, "cell ({j}, {i})");
            }
        }
        assert_eq!(layout.extract_dn(&field), vec![0, 1, 2]);
    }

    #[test]
    fn broadcast_congestion_matches_table1() {
        let g = GraphBuilder::new(4).build().unwrap();
        let layout = Layout::new(4).unwrap();
        let mut field = layout.build_field(&g).unwrap();
        let rule = HirschbergRule::new(4);
        let mut engine = Engine::sequential();
        engine
            .step(&mut field, &rule, Gen::Init.number(), 0)
            .unwrap();
        let rep = engine
            .step(&mut field, &rule, Gen::BroadcastC.number(), 0)
            .unwrap();
        // Table 1, generation 1: n cells are read with δ = n + 1 each,
        // n² cells with δ = 0.
        let hist = rep.congestion.unwrap();
        let groups = hist.groups();
        assert_eq!(groups.get(&5), Some(&4)); // n = 4 → δ = 5 on 4 cells
        assert_eq!(groups.get(&0), Some(&16));
        assert_eq!(rep.active_cells, 20); // n(n+1)
    }

    #[test]
    fn filter_neighbors_keeps_only_cross_component_edges() {
        let (layout, mut field, mut engine, rule) = after_broadcast();
        let rep = engine
            .step(&mut field, &rule, Gen::FilterNeighbors.number(), 0)
            .unwrap();
        // Row 0 (node 0): edge to node 1, C(1)=1 ≠ C(0)=0 → keep d=1 at col 1.
        assert_eq!(field.at(0, 0).d, INFINITY); // diagonal-ish: no self edge
        assert_eq!(field.at(0, 1).d, 1);
        assert_eq!(field.at(0, 2).d, INFINITY);
        // Row 2 (node 2): isolated → all ∞.
        assert_eq!(field.at(2, 0).d, INFINITY);
        assert_eq!(field.at(2, 1).d, INFINITY);
        assert_eq!(field.at(2, 2).d, INFINITY);
        // Last row untouched (still C).
        assert_eq!(layout.extract_dn(&field), vec![0, 1, 2]);
        // Table 1, generation 2: n² active cells; D_N read with δ = n.
        assert_eq!(rep.active_cells, 9);
        let hist = rep.congestion.unwrap();
        assert_eq!(hist.reads_of(layout.dn_index(0)), 3);
    }

    #[test]
    fn min_reduce_computes_row_minima() {
        let layout = Layout::new(4).unwrap();
        let g = GraphBuilder::new(4).build().unwrap();
        let mut field = layout.build_field(&g).unwrap();
        // Hand-craft row contents to reduce.
        let rows = [
            [7u32, 3, 9, 1],
            [INFINITY, INFINITY, INFINITY, INFINITY],
            [2, INFINITY, 0, 5],
            [8, 8, 8, 8],
        ];
        for (j, r) in rows.iter().enumerate() {
            for (i, &v) in r.iter().enumerate() {
                field.set(layout.shape().index(j, i), HCell::new(v));
            }
        }
        let rule = HirschbergRule::new(4);
        let mut engine = Engine::sequential();
        for s in 0..2 {
            engine
                .step(&mut field, &rule, Gen::MinReduce.number(), s)
                .unwrap();
        }
        assert_eq!(field.at(0, 0).d, 1);
        assert_eq!(field.at(1, 0).d, INFINITY);
        assert_eq!(field.at(2, 0).d, 0);
        assert_eq!(field.at(3, 0).d, 8);
    }

    #[test]
    fn min_reduce_handles_non_power_of_two() {
        let n = 5;
        let layout = Layout::new(n).unwrap();
        let g = GraphBuilder::new(n).build().unwrap();
        let mut field = layout.build_field(&g).unwrap();
        let values = [9u32, 4, 7, 2, 6];
        for (i, &v) in values.iter().enumerate() {
            field.set(layout.shape().index(0, i), HCell::new(v));
        }
        let rule = HirschbergRule::new(n);
        let mut engine = Engine::sequential();
        for s in 0..crate::complexity::ceil_log2(n) {
            engine
                .step(&mut field, &rule, Gen::MinReduce.number(), s)
                .unwrap();
        }
        assert_eq!(field.at(0, 0).d, 2);
    }

    #[test]
    fn resolve_isolated_falls_back_to_saved_c() {
        let layout = Layout::new(3).unwrap();
        let g = GraphBuilder::new(3).build().unwrap();
        let mut field = layout.build_field(&g).unwrap();
        field.set(layout.c_index(0), HCell::new(INFINITY));
        field.set(layout.c_index(1), HCell::new(0));
        field.set(layout.c_index(2), HCell::new(INFINITY));
        field.set(layout.dn_index(0), HCell::new(0));
        field.set(layout.dn_index(1), HCell::new(1));
        field.set(layout.dn_index(2), HCell::new(2));
        let rule = HirschbergRule::new(3);
        let mut engine = Engine::sequential();
        let rep = engine
            .step(&mut field, &rule, Gen::ResolveIsolated.number(), 0)
            .unwrap();
        assert_eq!(layout.extract_labels(&field), vec![0, 0, 2]);
        assert_eq!(rep.active_cells, 3); // the n first-column cells
    }

    #[test]
    fn pointer_jump_shortcuts() {
        let layout = Layout::new(4).unwrap();
        let g = GraphBuilder::new(4).build().unwrap();
        let mut field = layout.build_field(&g).unwrap();
        // C = [0, 0, 1, 2]: a chain 3 → 2 → 1 → 0.
        for (j, c) in [0u32, 0, 1, 2].into_iter().enumerate() {
            field.set(layout.c_index(j), HCell::new(c));
        }
        let rule = HirschbergRule::new(4);
        let mut engine = Engine::sequential();
        for s in 0..2 {
            engine
                .step(&mut field, &rule, Gen::PointerJump.number(), s)
                .unwrap();
        }
        assert_eq!(layout.extract_labels(&field), vec![0, 0, 0, 0]);
    }

    #[test]
    fn final_min_resolves_two_cycle() {
        let n = 4;
        let layout = Layout::new(n).unwrap();
        let g = GraphBuilder::new(n).build().unwrap();
        let mut field = layout.build_field(&g).unwrap();
        // Pre-jump T (= C after step 4): 0 ↔ 1 two-cycle, 2 → 0, 3 → 1.
        let t = [1u32, 0, 0, 1];
        // Column 1 holds T (as generation 9 leaves it) …
        for (j, &tv) in t.iter().enumerate() {
            field.set(layout.shape().index(j, 1), HCell::new(tv));
        }
        // … and column 0 holds the post-jump C: jumping the 2-cycle an even
        // number of times returns each node's own cycle entry point.
        for (j, c) in [0u32, 1, 0, 1].into_iter().enumerate() {
            field.set(layout.c_index(j), HCell::new(c));
        }
        let rule = HirschbergRule::new(n);
        let mut engine = Engine::sequential();
        engine
            .step(&mut field, &rule, Gen::FinalMin.number(), 0)
            .unwrap();
        // min over the cycle {0, 1} is 0 for everybody.
        assert_eq!(layout.extract_labels(&field), vec![0, 0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "invalid Hirschberg phase")]
    fn invalid_phase_panics() {
        let layout = Layout::new(2).unwrap();
        let g = GraphBuilder::new(2).build().unwrap();
        let mut field = layout.build_field(&g).unwrap();
        let rule = HirschbergRule::new(2);
        let mut engine = Engine::sequential();
        let _ = engine.step(&mut field, &rule, 42, 0);
    }
}
