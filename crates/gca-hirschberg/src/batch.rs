//! Batched multi-graph execution: run many independent component-labeling
//! problems concurrently, one worker thread per contiguous slice of the
//! batch, with per-worker [`Machine`] state reused across graphs.
//!
//! This is the throughput-oriented counterpart to [`crate::HirschbergGca`]
//! (which optimizes the latency of one run and its instrumentation): the
//! serving scenario is *B* same-sized graphs per batch, and the quantity of
//! interest is aggregate **graphs per second**. Parallelism therefore goes
//! *across* graphs (each worker drives a sequential engine) instead of
//! across the cells of one field, and steady-state processing performs no
//! per-graph allocation — workers reload their machine in place via
//! [`Machine::reset_with`] and extract labels via [`Machine::labels_into`].

use crate::complexity::ceil_log2;
use crate::kernels::FusedParallel;
use crate::{Convergence, ExecPath, Machine};
use gca_engine::faults::FaultPlan;
use gca_engine::{Engine, GcaError, Instrumentation, Word};
use gca_graphs::AdjacencyMatrix;
use rayon::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// Configuration for running a batch of independent graphs.
///
/// Defaults favor throughput: [`ExecPath::Fused`] kernels,
/// [`Instrumentation::Off`] (no congestion accounting), the paper's fixed
/// sub-generation schedule, and one worker per hardware thread.
///
/// ```
/// use gca_graphs::generators;
/// use gca_hirschberg::BatchRunner;
///
/// let graphs: Vec<_> = (0..8).map(|s| generators::gnp(16, 0.2, s)).collect();
/// let report = BatchRunner::new().run(&graphs).unwrap();
/// assert_eq!(report.labels.len(), 8);
/// ```
#[derive(Clone, Debug)]
pub struct BatchRunner {
    exec: ExecPath,
    convergence: Convergence,
    instrumentation: Instrumentation,
    workers: usize,
    split_idle_workers: bool,
    /// Test-only failure injection for the contained API: a fault plan
    /// armed on the machine processing the graph at this batch index.
    inject: Option<(usize, FaultPlan)>,
    /// Test-only failure injection for the contained API: panic while
    /// processing the graph at this batch index.
    panic_at: Option<usize>,
}

impl Default for BatchRunner {
    fn default() -> Self {
        BatchRunner::new()
    }
}

impl BatchRunner {
    /// Throughput defaults: fused kernels, instrumentation off, fixed
    /// schedule, auto worker count.
    pub fn new() -> Self {
        BatchRunner {
            exec: ExecPath::Fused,
            convergence: Convergence::Fixed,
            instrumentation: Instrumentation::Off,
            workers: 0,
            split_idle_workers: false,
            inject: None,
            panic_at: None,
        }
    }

    /// Sets the execution path each worker uses.
    #[must_use]
    pub fn exec(mut self, exec: ExecPath) -> Self {
        self.exec = exec;
        self
    }

    /// Sets the sub-generation convergence policy.
    #[must_use]
    pub fn convergence(mut self, convergence: Convergence) -> Self {
        self.convergence = convergence;
        self
    }

    /// Sets the per-worker instrumentation level. Batch runs discard the
    /// metrics logs; anything above [`Instrumentation::Off`] only costs.
    #[must_use]
    pub fn instrumentation(mut self, instrumentation: Instrumentation) -> Self {
        self.instrumentation = instrumentation;
        self
    }

    /// Sets the number of worker threads; `0` (the default) means one per
    /// hardware thread. The batch is split into at most this many
    /// contiguous chunks, one machine per chunk.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Lets small batches spend otherwise-idle workers *inside* each
    /// graph's fused run.
    ///
    /// **Policy.** Outer (across-graph) parallelism always wins: the batch
    /// is first split over `min(workers, batch)` machines as usual, because
    /// independent graphs parallelize perfectly while intra-graph
    /// parallelism pays per-generation synchronization. Only when the batch
    /// is *smaller* than the configured worker count — so `workers / batch`
    /// hardware threads per graph would sit idle — and the configured exec
    /// path is the plain [`ExecPath::Fused`], each machine is upgraded to
    /// [`ExecPath::FusedParallel`] over the idle share (threshold inherited
    /// from the engine tunable, so tiny graphs still fall back to
    /// sequential kernels). Explicitly configured [`ExecPath::Generic`] or
    /// [`ExecPath::FusedParallel`] paths are never overridden. Labels are
    /// bit-identical either way; only throughput changes.
    #[must_use]
    pub fn split_idle_workers(mut self, enabled: bool) -> Self {
        self.split_idle_workers = enabled;
        self
    }

    /// The worker count a batch of `batch` graphs would actually use.
    pub fn effective_workers(&self, batch: usize) -> usize {
        self.configured_workers().clamp(1, batch.max(1))
    }

    fn configured_workers(&self) -> usize {
        if self.workers == 0 {
            rayon::current_num_threads()
        } else {
            self.workers
        }
    }

    /// The execution path each worker machine actually runs for a batch of
    /// `batch` graphs (see [`BatchRunner::split_idle_workers`] for the
    /// upgrade policy).
    pub fn effective_exec(&self, batch: usize) -> ExecPath {
        let outer = self.effective_workers(batch);
        let idle_share = self.configured_workers() / outer.max(1);
        if self.split_idle_workers && idle_share >= 2 && self.exec == ExecPath::Fused {
            ExecPath::FusedParallel(FusedParallel {
                workers: idle_share,
                threshold: None,
            })
        } else {
            self.exec
        }
    }

    /// Labels every graph, allocating fresh output vectors.
    pub fn run(&self, graphs: &[AdjacencyMatrix]) -> Result<BatchReport, GcaError> {
        let mut labels = Vec::new();
        let stats = self.run_into(graphs, &mut labels)?;
        Ok(BatchReport { labels, stats })
    }

    /// Labels every graph into `out`, reusing its allocations (outer vector
    /// and per-graph label vectors) — the steady-state API for callers that
    /// process batches repeatedly. `out` is resized to `graphs.len()`.
    ///
    /// On error the first failure (by graph order within the earliest
    /// failing worker) is returned; `out` then holds a mixture of new and
    /// stale labels and should be discarded.
    pub fn run_into(
        &self,
        graphs: &[AdjacencyMatrix],
        out: &mut Vec<Vec<Word>>,
    ) -> Result<BatchStats, GcaError> {
        let started = Instant::now();
        if graphs.is_empty() {
            out.clear();
            return Ok(BatchStats {
                graphs: 0,
                workers: 0,
                elapsed: started.elapsed(),
            });
        }
        let workers = self.effective_workers(graphs.len());
        let exec = self.effective_exec(graphs.len());
        let chunk = graphs.len().div_ceil(workers);
        out.resize_with(graphs.len(), Vec::new);
        let mut failures: Vec<Option<GcaError>> = vec![None; workers];
        graphs
            .par_chunks(chunk)
            .zip(out.par_chunks_mut(chunk))
            .zip(failures.par_iter_mut())
            .for_each(|((graphs, outs), failure)| {
                let mut machine: Option<Machine> = None;
                for (graph, out) in graphs.iter().zip(outs.iter_mut()) {
                    if let Err(e) = self.run_one(&mut machine, graph, out, exec) {
                        *failure = Some(e);
                        return;
                    }
                }
            });
        if let Some(e) = failures.into_iter().flatten().next() {
            return Err(e);
        }
        Ok(BatchStats {
            graphs: graphs.len(),
            workers,
            elapsed: started.elapsed(),
        })
    }

    /// Test-only hook for the failure-injection suite: arms `plan` on the
    /// worker machine while it processes the graph at batch `index` of a
    /// [`BatchRunner::run_contained`] call (disarmed again afterwards, so
    /// machine reuse across the chunk stays clean). Detection requires
    /// [`Instrumentation::Validate`], like any other injected fault.
    #[doc(hidden)]
    pub fn seed_graph_fault(&mut self, index: usize, plan: FaultPlan) {
        self.inject = Some((index, plan));
    }

    /// Test-only hook for the failure-injection suite: panics while
    /// processing the graph at batch `index` of a
    /// [`BatchRunner::run_contained`] call — the stand-in for a worker
    /// dying mid-graph (corrupted scratch, arithmetic bug, …).
    #[doc(hidden)]
    pub fn seed_graph_panic(&mut self, index: usize) {
        self.panic_at = Some(index);
    }

    /// Labels every graph with **per-graph fault containment**: a worker
    /// whose graph fails — a detector error *or* a panic — records a typed
    /// [`GraphFault`] for that graph only, discards its (potentially
    /// poisoned) machine, and continues with the next graph in its chunk.
    /// The rest of the batch always completes; unlike [`BatchRunner::run`],
    /// one bad graph can no longer take its siblings' results down with it.
    pub fn run_contained(&self, graphs: &[AdjacencyMatrix]) -> ContainedReport {
        let started = Instant::now();
        if graphs.is_empty() {
            return ContainedReport {
                results: Vec::new(),
                stats: BatchStats {
                    graphs: 0,
                    workers: 0,
                    elapsed: started.elapsed(),
                },
            };
        }
        let workers = self.effective_workers(graphs.len());
        let exec = self.effective_exec(graphs.len());
        let chunk = graphs.len().div_ceil(workers);
        let mut results: Vec<Result<Vec<Word>, GraphFault>> =
            (0..graphs.len()).map(|_| Ok(Vec::new())).collect();
        graphs
            .par_chunks(chunk)
            .zip(results.par_chunks_mut(chunk))
            .enumerate()
            .for_each(|(chunk_idx, (graphs, outs))| {
                let mut machine: Option<Machine> = None;
                for (offset, (graph, slot)) in graphs.iter().zip(outs.iter_mut()).enumerate() {
                    let index = chunk_idx * chunk + offset;
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        if self.panic_at == Some(index) {
                            panic!("seeded batch panic at graph {index}");
                        }
                        let armed = self
                            .inject
                            .as_ref()
                            .filter(|(at, _)| *at == index)
                            .map(|(_, p)| p.clone());
                        let mut out = Vec::new();
                        self.run_one_armed(&mut machine, graph, &mut out, exec, armed)
                            .map(|()| out)
                    }));
                    match outcome {
                        Ok(Ok(labels)) => *slot = Ok(labels),
                        Ok(Err(e)) => {
                            *slot = Err(GraphFault::Error(e));
                            // A detector fired mid-run: the machine's field
                            // holds a partially executed (possibly corrupt)
                            // state. Rebuild for the next graph.
                            machine = None;
                        }
                        Err(payload) => {
                            *slot = Err(GraphFault::Panic(panic_message(payload.as_ref())));
                            machine = None;
                        }
                    }
                    if let Some(m) = machine.as_mut() {
                        m.set_fault_plan(None);
                    }
                }
            });
        ContainedReport {
            stats: BatchStats {
                graphs: graphs.len(),
                workers,
                elapsed: started.elapsed(),
            },
            results,
        }
    }

    /// [`BatchRunner::run_one`] with an optional fault plan to arm on the
    /// machine before the run (covers the fresh-build path, where the plan
    /// cannot be armed from outside).
    fn run_one_armed(
        &self,
        machine: &mut Option<Machine>,
        graph: &AdjacencyMatrix,
        out: &mut Vec<Word>,
        exec: ExecPath,
        plan: Option<FaultPlan>,
    ) -> Result<(), GcaError> {
        let m = match machine {
            Some(m) if m.n() == graph.n() => {
                m.reset_with(graph)?;
                m
            }
            _ => machine.insert(self.build_machine(graph, exec)?),
        };
        if let Some(plan) = plan {
            m.set_fault_plan(Some(plan));
        }
        m.init()?;
        for _ in 0..ceil_log2(graph.n()) {
            m.run_iteration()?;
        }
        m.labels_into(out);
        Ok(())
    }

    /// Runs one graph on the worker's machine, rebuilding it only when the
    /// problem size changes.
    fn run_one(
        &self,
        machine: &mut Option<Machine>,
        graph: &AdjacencyMatrix,
        out: &mut Vec<Word>,
        exec: ExecPath,
    ) -> Result<(), GcaError> {
        let m = match machine {
            Some(m) if m.n() == graph.n() => {
                m.reset_with(graph)?;
                m
            }
            _ => machine.insert(self.build_machine(graph, exec)?),
        };
        m.init()?;
        for _ in 0..ceil_log2(graph.n()) {
            m.run_iteration()?;
        }
        m.labels_into(out);
        Ok(())
    }

    fn build_machine(&self, graph: &AdjacencyMatrix, exec: ExecPath) -> Result<Machine, GcaError> {
        let engine = Engine::sequential().with_instrumentation(self.instrumentation);
        Ok(Machine::with_engine(graph, engine)?
            .with_convergence(self.convergence)
            .with_exec(exec))
    }
}

/// Why one graph of a contained batch run produced no labels. The other
/// graphs of the batch are unaffected — that is the containment contract
/// of [`BatchRunner::run_contained`].
#[derive(Clone, Debug)]
pub enum GraphFault {
    /// A detector (CROW sanitizer, differential replay, invariant
    /// checker) or a structural check rejected the run.
    Error(GcaError),
    /// The worker panicked mid-graph; carries the panic message. The
    /// worker's machine was discarded (its scratch may be poisoned) and
    /// rebuilt for the next graph.
    Panic(String),
}

impl GraphFault {
    /// The detector that caught the failure — [`GcaError::detector`] for
    /// typed errors, `"panic"` for caught panics.
    pub fn detector(&self) -> &'static str {
        match self {
            GraphFault::Error(e) => e.detector(),
            GraphFault::Panic(_) => "panic",
        }
    }
}

impl std::fmt::Display for GraphFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphFault::Error(e) => write!(f, "{e}"),
            GraphFault::Panic(msg) => write!(f, "worker panicked: {msg}"),
        }
    }
}

/// Extracts a human-readable message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Per-graph results plus timing of one contained batch run.
#[derive(Clone, Debug)]
pub struct ContainedReport {
    /// One entry per input graph, in input order: raw labels, or the
    /// typed fault that stopped that graph.
    pub results: Vec<Result<Vec<Word>, GraphFault>>,
    /// Batch timing.
    pub stats: BatchStats,
}

impl ContainedReport {
    /// Number of graphs that failed.
    pub fn failed(&self) -> usize {
        self.results.iter().filter(|r| r.is_err()).count()
    }
}

/// Timing of one batch run.
#[derive(Clone, Copy, Debug)]
pub struct BatchStats {
    /// Graphs processed.
    pub graphs: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock duration of the batch.
    pub elapsed: Duration,
}

impl BatchStats {
    /// Aggregate throughput in graphs per second (`0.0` for an empty or
    /// instantaneous batch).
    pub fn graphs_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.graphs as f64 / secs
        } else {
            0.0
        }
    }
}

/// Labels plus timing of one batch run.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// Per-graph raw label vectors, in input order.
    pub labels: Vec<Vec<Word>>,
    /// Batch timing.
    pub stats: BatchStats,
}

#[cfg(test)]
mod tests {
    use super::*;
    use gca_graphs::connectivity::union_find_components_dense;
    use gca_graphs::generators;

    fn expected_raw(graph: &AdjacencyMatrix) -> Vec<Word> {
        union_find_components_dense(graph)
            .as_slice()
            .iter()
            .map(|&l| l as Word)
            .collect()
    }

    fn mixed_batch() -> Vec<AdjacencyMatrix> {
        (0..12)
            .map(|s| match s % 4 {
                0 => generators::gnp(17, 0.15, s as u64),
                1 => generators::random_forest(17, 3, s as u64),
                2 => generators::ring(17),
                _ => generators::star(17),
            })
            .collect()
    }

    #[test]
    fn batch_matches_union_find() {
        let graphs = mixed_batch();
        let report = BatchRunner::new().run(&graphs).unwrap();
        assert_eq!(report.labels.len(), graphs.len());
        assert_eq!(report.stats.graphs, graphs.len());
        for (graph, labels) in graphs.iter().zip(&report.labels) {
            assert_eq!(labels, &expected_raw(graph));
        }
    }

    #[test]
    fn generic_path_matches_too() {
        let graphs = mixed_batch();
        let fused = BatchRunner::new().run(&graphs).unwrap();
        let generic = BatchRunner::new()
            .exec(ExecPath::Generic)
            .run(&graphs)
            .unwrap();
        assert_eq!(fused.labels, generic.labels);
    }

    #[test]
    fn worker_counts_agree() {
        let graphs = mixed_batch();
        let reference = BatchRunner::new().workers(1).run(&graphs).unwrap();
        for workers in [2, 3, 8] {
            let report = BatchRunner::new().workers(workers).run(&graphs).unwrap();
            assert_eq!(report.labels, reference.labels, "workers = {workers}");
        }
    }

    #[test]
    fn run_into_reuses_outer_allocation() {
        let graphs = mixed_batch();
        let runner = BatchRunner::new();
        let mut out = Vec::new();
        runner.run_into(&graphs, &mut out).unwrap();
        let ptrs: Vec<*const Word> = out.iter().map(|v| v.as_ptr()).collect();
        runner.run_into(&graphs, &mut out).unwrap();
        // Same sizes both times: every per-graph vector must be reused.
        assert_eq!(ptrs, out.iter().map(|v| v.as_ptr()).collect::<Vec<_>>());
        for (graph, labels) in graphs.iter().zip(&out) {
            assert_eq!(labels, &expected_raw(graph));
        }
    }

    #[test]
    fn mixed_sizes_rebuild_machines() {
        let graphs: Vec<AdjacencyMatrix> = vec![
            generators::path(9),
            generators::gnp(13, 0.3, 1),
            generators::ring(9),
            generators::complete(4),
        ];
        let report = BatchRunner::new().workers(1).run(&graphs).unwrap();
        for (graph, labels) in graphs.iter().zip(&report.labels) {
            assert_eq!(labels, &expected_raw(graph));
        }
    }

    #[test]
    fn empty_batch() {
        let report = BatchRunner::new().run(&[]).unwrap();
        assert!(report.labels.is_empty());
        assert_eq!(report.stats.graphs, 0);
        assert_eq!(report.stats.graphs_per_sec(), 0.0);
    }

    #[test]
    fn effective_workers_clamps() {
        let runner = BatchRunner::new().workers(64);
        assert_eq!(runner.effective_workers(3), 3);
        assert_eq!(runner.effective_workers(0), 1);
        assert!(BatchRunner::new().effective_workers(1000) >= 1);
    }

    #[test]
    fn split_idle_workers_upgrades_small_batches_only() {
        let runner = BatchRunner::new().workers(4).split_idle_workers(true);
        // Two graphs over four configured workers: two idle each → each
        // machine gets a two-worker fused-parallel path.
        assert_eq!(
            runner.effective_exec(2),
            ExecPath::FusedParallel(FusedParallel {
                workers: 2,
                threshold: None,
            })
        );
        // Batch ≥ workers: every worker is busy, nothing to split.
        assert_eq!(runner.effective_exec(8), ExecPath::Fused);
        // The upgrade never touches a non-default exec path.
        let generic = BatchRunner::new()
            .workers(4)
            .exec(ExecPath::Generic)
            .split_idle_workers(true);
        assert_eq!(generic.effective_exec(2), ExecPath::Generic);
        // Disabled by default.
        assert_eq!(BatchRunner::new().workers(4).effective_exec(2), ExecPath::Fused);
    }

    #[test]
    fn split_idle_workers_labels_bit_identical() {
        let graphs: Vec<AdjacencyMatrix> =
            (0..2).map(|s| generators::gnp(33, 0.1, s as u64)).collect();
        let plain = BatchRunner::new().workers(4).run(&graphs).unwrap();
        let split = BatchRunner::new()
            .workers(4)
            .split_idle_workers(true)
            .run(&graphs)
            .unwrap();
        assert_eq!(plain.labels, split.labels);
        for (graph, labels) in graphs.iter().zip(&split.labels) {
            assert_eq!(labels, &expected_raw(graph));
        }
    }

    #[test]
    fn contained_run_matches_plain_run_when_clean() {
        let graphs = mixed_batch();
        let plain = BatchRunner::new().run(&graphs).unwrap();
        let contained = BatchRunner::new().run_contained(&graphs);
        assert_eq!(contained.failed(), 0);
        for (labels, result) in plain.labels.iter().zip(&contained.results) {
            assert_eq!(result.as_ref().unwrap(), labels);
        }
    }

    #[test]
    fn injected_fault_fails_only_its_graph() {
        use gca_engine::faults::FaultKind;
        let graphs = mixed_batch();
        let faulted = 5;
        let mut runner = BatchRunner::new()
            .workers(3)
            .instrumentation(Instrumentation::Validate);
        runner.seed_graph_fault(faulted, FaultPlan::new(FaultKind::BitFlip { bit: 0 }, 3, 9));
        let report = runner.run_contained(&graphs);
        assert_eq!(report.failed(), 1);
        for (i, (graph, result)) in graphs.iter().zip(&report.results).enumerate() {
            if i == faulted {
                let fault = result.as_ref().unwrap_err();
                assert!(
                    matches!(fault, GraphFault::Error(GcaError::KernelDivergence { .. })),
                    "graph {i}: {fault}"
                );
                assert_eq!(fault.detector(), "differential-replay");
            } else {
                assert_eq!(
                    result.as_ref().unwrap(),
                    &expected_raw(graph),
                    "sibling graph {i} must complete correctly"
                );
            }
        }
    }

    #[test]
    fn panicking_worker_fails_only_its_graph() {
        let graphs = mixed_batch();
        let dead = 2;
        let mut runner = BatchRunner::new().workers(2);
        runner.seed_graph_panic(dead);
        let report = runner.run_contained(&graphs);
        assert_eq!(report.failed(), 1);
        for (i, (graph, result)) in graphs.iter().zip(&report.results).enumerate() {
            if i == dead {
                let fault = result.as_ref().unwrap_err();
                assert!(matches!(fault, GraphFault::Panic(_)), "graph {i}: {fault}");
                assert_eq!(fault.detector(), "panic");
                assert!(fault.to_string().contains("seeded batch panic"));
            } else {
                // In particular the graphs *after* the panic in the same
                // chunk: the worker rebuilt its machine and carried on.
                assert_eq!(result.as_ref().unwrap(), &expected_raw(graph), "graph {i}");
            }
        }
    }

    #[test]
    fn contained_empty_batch() {
        let report = BatchRunner::new().run_contained(&[]);
        assert!(report.results.is_empty());
        assert_eq!(report.failed(), 0);
    }

    #[test]
    fn detect_convergence_composes() {
        let graphs = mixed_batch();
        let report = BatchRunner::new()
            .convergence(Convergence::Detect)
            .run(&graphs)
            .unwrap();
        for (graph, labels) in graphs.iter().zip(&report.labels) {
            assert_eq!(labels, &expected_raw(graph));
        }
    }
}
