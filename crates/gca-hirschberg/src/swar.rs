//! SWAR (SIMD-within-a-register) kernel bodies for
//! [`crate::kernels::ExecPath::FusedSwar`], plus the symbolic-activity
//! generation schedule the SWAR driver consults.
//!
//! Every function here is a drop-in replacement for the matching `*_rows`
//! row-range body in [`crate::kernels`]: same row-slice signature shape,
//! same per-cell *semantics* (each cell's new value and its contribution to
//! the `changed` counter are computed by the same rule), so labels and
//! `Counts` metrics stay bit-identical to the scalar fused path by
//! construction. What changes is the *iteration structure*:
//!
//! * the adjacency- and membership-gated filters (generations 2 and 6) walk
//!   the row-aligned bit-packed plane one [`AdjWord`] — [`WORD_BITS`] cells
//!   — at a time: an all-zero word collapses to one vectorizable
//!   count-and-fill of `∞` (no per-cell branch, no bit extraction), a
//!   non-zero word visits only its set bits via `trailing_zeros` and fills
//!   the gaps between them;
//! * broadcast/copy fills (generations 0, 1, 5, 9) compare whole rows with
//!   `memcmp`-shaped slice equality and fill with `copy_from_slice`/`fill`
//!   instead of a branchy per-cell store — in the converged steady state
//!   most rows already hold the broadcast vector and the kernel degrades to
//!   a pure scan;
//! * the tree reductions (generations 3, 7) run branch-free
//!   (`min` + difference-count) so the disjoint-column passes vectorize.
//!
//! The zero-word skip is sound because the packed plane is **row-aligned**
//! (see `hfield`): a word never spans two rows and its tail bits
//! beyond column `n` are zero, so "word = 0" exactly means "no live cell
//! among these `≤ WORD_BITS` cells of this row", and the scalar path would
//! have written `∞` to every one of them. The metric-identity argument is
//! written out in DESIGN.md §14.
//!
//! The module (including its word-level bodies) is public so that
//! `gca-analysis`'s lane verifier can drive every branch-free formula
//! directly against the scalar row-range semantics of [`crate::kernels`]
//! (DESIGN.md §15): the functions here are *verification surface*, not an
//! API — they assume the row-aligned packed-plane invariants stated on
//! each and are only meaningful through the fused executor (`kernels`).

use crate::complexity::ceil_log2;
use crate::Gen;
use gca_engine::{AdjWord, Word, INFINITY, WORD_BITS};

/// Writes `∞` over a gap of dead cells, returning how many actually
/// changed — the same tally the scalar per-cell loop produces.
#[inline]
pub fn fill_inf(cells: &mut [Word]) -> usize {
    let changed = cells.iter().filter(|&&c| c != INFINITY).count();
    if changed > 0 {
        cells.fill(INFINITY);
    }
    changed
}

/// Set-bit count below which a non-zero word is cheaper to process by
/// walking its set bits (`trailing_zeros`) than by the branch-free
/// per-lane select sweep. Both strategies implement the identical per-cell
/// rule, so the crossover is purely a speed knob.
pub const SPARSE_BITS: u32 = 8;

/// Filters one row against one row of packed live-bits: live cells
/// (set bits) keep their value unless it equals `keep` (then `∞`), dead
/// cells become `∞`. Shared by generations 2 (`keep = C(row)`, bits =
/// adjacency) and 6 (`keep = row`, bits = membership mask).
///
/// Three regimes per word, chosen by population count: all-zero words
/// collapse to one count-and-fill; sparsely populated words walk their set
/// bits and fill the gaps; dense words run a branch-free select per lane
/// (`keep`-mask arithmetic, no data-dependent branches — the scalar fused
/// body loses ~4 ns/cell to branch mispredicts on random adjacency here).
///
/// As a byproduct the filter writes the row's *occupancy word(s)* into
/// `occ_row`: the exact set of post-filter non-`∞` cells (zero words emit
/// `0`, sparse words accumulate bits as they walk, dense words repack the
/// filtered cells in a separate vectorizable pass). The reduction contract
/// only *requires* a superset — a spurious bit costs a no-op fold,
/// `min(x, ∞) = x` — but exactness is what makes the plane collapse as
/// labels converge, which is where the occupancy-guided reduction wins.
/// The subsequent min-reduction tree consumes this plane to skip folds
/// whose source is provably `∞` (see [`min_reduce_rows_occ`]).
#[inline]
pub fn filter_row(row: &mut [Word], words: &[AdjWord], keep: Word, occ_row: &mut [AdjWord]) -> usize {
    let mut changed = 0;
    for (wi, &bits) in words.iter().enumerate() {
        let lo = wi * WORD_BITS;
        let hi = (lo + WORD_BITS).min(row.len());
        let cells = &mut row[lo..hi];
        let (delta, occ) = if bits == 0 {
            // Word-skip: no live cell in these WORD_BITS columns.
            (fill_inf(cells), 0)
        } else if bits.count_ones() <= SPARSE_BITS {
            filter_word_sparse(cells, bits, keep)
        } else {
            (filter_word_dense(cells, bits, keep), pack_occupancy(cells))
        };
        changed += delta;
        occ_row[wi] = occ;
    }
    changed
}

/// One sparsely populated word: visit only the set bits, fill the gaps.
/// Returns `(changed, occupancy)`.
#[inline]
pub fn filter_word_sparse(cells: &mut [Word], bits: AdjWord, keep: Word) -> (usize, AdjWord) {
    let mut changed = 0;
    let mut occ: AdjWord = 0;
    let mut prev = 0usize;
    let mut b = bits;
    while b != 0 {
        // Row alignment guarantees off < cells.len(): tail bits are 0.
        let off = b.trailing_zeros() as usize;
        changed += fill_inf(&mut cells[prev..off]);
        let cell = &mut cells[off];
        if *cell == keep {
            changed += usize::from(*cell != INFINITY);
            *cell = INFINITY;
        } else {
            occ |= AdjWord::from(*cell != INFINITY) << off;
        }
        prev = off + 1;
        b &= b - 1;
    }
    changed += fill_inf(&mut cells[prev..]);
    (changed, occ)
}

/// Packs one word's post-filter occupancy: bit `lane` ⇔ `cells[lane] ≠
/// ∞`. A separate pass on purpose — fused into the filter sweep the
/// cross-lane accumulation blocks vectorization of the value updates;
/// standalone, the compare-and-pack is the movemask shape the
/// autovectorizer handles.
#[inline]
pub fn pack_occupancy(cells: &[Word]) -> AdjWord {
    let mut occ: AdjWord = 0;
    for (lane, &c) in cells.iter().enumerate() {
        occ |= AdjWord::from(c != INFINITY) << lane;
    }
    occ
}

/// One densely populated word: branch-free select per lane. `live & (cell
/// ≠ keep)` keeps the cell, everything else becomes `∞`; with `∞ = !0` the
/// select is a single `cell | !mask`, and the changed tally is the
/// dead-and-not-yet-`∞` count — exactly the scalar rule's. No per-lane
/// occupancy accumulation: the caller packs it in a second sweep, so
/// this loop stays a pure lane-wise select the compiler can vectorize.
#[inline]
pub fn filter_word_dense(cells: &mut [Word], bits: AdjWord, keep: Word) -> usize {
    let mut changed = 0;
    let mut b = bits;
    for cell in cells.iter_mut() {
        let cur = *cell;
        let live = (b & 1) as Word;
        b >>= 1;
        let mask = (live & Word::from(cur != keep)).wrapping_neg();
        let new = cur | !mask;
        changed += usize::from(new != cur);
        *cell = new;
    }
    changed
}

/// Generation 0 over whole rows: difference-count scan, then `fill`.
pub fn init_rows(seg: &mut [Word], base_row: usize, n: usize) -> usize {
    let mut changed = 0;
    for (r, row) in seg.chunks_mut(n).enumerate() {
        let v = (base_row + r) as Word;
        let diffs = row.iter().filter(|&&c| c != v).count();
        if diffs > 0 {
            row.fill(v);
        }
        changed += diffs;
    }
    changed
}

/// Generations 1 and 5 over whole rows: slice-equality fast path, then a
/// single `copy_from_slice` per differing row.
pub fn broadcast_rows(seg: &mut [Word], labels: &[Word]) -> usize {
    let mut changed = 0;
    for row in seg.chunks_mut(labels.len().max(1)) {
        if row == labels {
            // Read-only fast path: a converged row costs one compare scan
            // (the common case for BroadcastC after the first iteration).
            continue;
        }
        // One fused difference-count-and-copy pass, branch-free per lane
        // (a separate count pass plus `copy_from_slice` would read the
        // row twice).
        for (cell, &v) in row.iter_mut().zip(labels) {
            changed += usize::from(*cell != v);
            *cell = v;
        }
    }
    changed
}

/// Generation 2 over whole rows: word-walks the row-aligned adjacency
/// plane (`wpr` words per row, absolute row indexing), writing each row's
/// occupancy words into the row-partitioned `occ` segment.
pub fn filter_neighbor_rows(
    seg: &mut [Word],
    occ: &mut [AdjWord],
    a: &[AdjWord],
    dn: &[Word],
    base_row: usize,
    n: usize,
    wpr: usize,
) -> usize {
    let mut changed = 0;
    for ((r, row), occ_row) in seg.chunks_mut(n).enumerate().zip(occ.chunks_mut(wpr)) {
        let row_idx = base_row + r;
        let words = &a[row_idx * wpr..(row_idx + 1) * wpr];
        changed += filter_row(row, words, dn[row_idx], occ_row);
    }
    changed
}

/// Generations 3 and 7 over whole rows, branch-free: `min` plus a
/// difference count instead of a compare-and-store branch per cell.
/// Sub-generation 0 (stride 1 — half of all folds) reduces adjacent pairs
/// through `chunks_exact`, a shape the autovectorizer turns into
/// deinterleaved word-wise `min` passes.
pub fn min_reduce_rows(seg: &mut [Word], stride: usize, n: usize) -> usize {
    seg.chunks_mut(n)
        .map(|row| fold_row_full(row, stride, n))
        .sum()
}

/// One row's full fold at `stride`: every target column (`≡ 0 mod
/// 2·stride`) takes the `min` with its source `stride` to the right,
/// occupancy-blind. Stride 1 goes through `chunks_exact` pairs (a shape
/// the autovectorizer turns into deinterleaved word-wise `min` passes);
/// odd `n` leaves the last column untouched — no right-hand neighbor,
/// exactly the scalar loop's exit condition.
#[inline]
pub fn fold_row_full(row: &mut [Word], stride: usize, n: usize) -> usize {
    let mut changed = 0;
    if stride == 1 {
        for pair in row.chunks_exact_mut(2) {
            let m = pair[0].min(pair[1]);
            changed += usize::from(m != pair[0]);
            pair[0] = m;
        }
        return changed;
    }
    let mut col = 0;
    while col + stride < n {
        let cur = row[col];
        let m = cur.min(row[col + stride]);
        changed += usize::from(m != cur);
        row[col] = m;
        col += stride << 1;
    }
    changed
}

/// The per-word mask selecting this sub-generation's fold *sources*
/// (columns `≡ stride (mod 2·stride)`) within packed word `wi`.
///
/// For `stride < WORD_BITS` the period `2·stride` divides the word width,
/// so the mask is one word-independent bit pattern; for larger strides the
/// sources are isolated word-aligned columns `stride·(2j+1)`, so a word
/// carries at most bit 0.
#[inline]
pub fn source_mask(stride: usize, wi: usize) -> AdjWord {
    if stride < WORD_BITS {
        let mut m: AdjWord = 0;
        let mut k = stride;
        while k < WORD_BITS {
            m |= 1 << k;
            k += stride << 1;
        }
        m
    } else {
        let q = stride / WORD_BITS;
        AdjWord::from(wi.is_multiple_of(q) && (wi / q) % 2 == 1)
    }
}

/// Row-occupancy fraction above which a row's fold runs the full strided
/// sweep instead of the occupancy bit-walk: the sweep is sequential and
/// branch-free while the bit-walk pays a data-dependent branch per
/// source, so the sweep wins once roughly a quarter of the row is
/// occupied. Both bodies implement the identical fold, so the crossover
/// is purely a speed knob.
pub const FULL_FOLD_POP_NUM: usize = 1;
/// Denominator of the [`FULL_FOLD_POP_NUM`] crossover fraction.
pub const FULL_FOLD_POP_DEN: usize = 4;

/// Occupancy-guided variant of [`min_reduce_rows`]: rows whose occupancy
/// plane is sparse visit only folds whose *source* cell (`col + stride`)
/// may be non-`∞`, word-skipping over the plane the filter generations
/// produced; dense rows run the full branch-free sweep (the plane then
/// advances by pure bit math).
///
/// Identical per-cell semantics either way: a fold with an `∞` source can
/// change neither the target (`min(cur, ∞) = cur`) nor the `changed`
/// tally, so skipping it is unobservable, and a spurious occupancy bit
/// (the plane is a superset) only re-adds such a no-op fold. The superset
/// invariant is preserved across sub-generations — a fold target is
/// non-`∞` afterwards only if the target or its source was before, and
/// both leave a bit behind (the bit-walk sets the target's bit on
/// improvement; the full sweep ORs the source pattern onto the targets).
pub fn min_reduce_rows_occ(
    seg: &mut [Word],
    occ: &mut [AdjWord],
    stride: usize,
    n: usize,
    wpr: usize,
) -> usize {
    let mut changed = 0;
    // For sub-word strides the source pattern is word-independent — hoist
    // it out of the per-row-per-word loops (rebuilt there it would cost a
    // `WORD_BITS / 2·stride`-iteration loop per word).
    let intra = (stride < WORD_BITS).then(|| source_mask(stride, 0));
    for (row, occ_row) in seg.chunks_mut(n).zip(occ.chunks_mut(wpr)) {
        let pop: u32 = occ_row.iter().map(|w| w.count_ones()).sum();
        if pop as usize * FULL_FOLD_POP_DEN >= n * FULL_FOLD_POP_NUM {
            changed += fold_row_full(row, stride, n);
            // target ← target ∪ source: a masked shift-OR per word (for
            // word-spanning strides the source pattern is bit 0 of words
            // `q·(2j+1)`, `q = stride / WORD_BITS`, folding into bit 0 of
            // the word `q` to its left).
            if let Some(mask) = intra {
                for w in occ_row.iter_mut() {
                    *w |= (*w & mask) >> stride;
                }
            } else {
                let q = stride / WORD_BITS;
                let mut wi = q;
                while wi < wpr {
                    occ_row[wi - q] |= occ_row[wi] & 1;
                    wi += q << 1;
                }
            }
            continue;
        }
        for wi in 0..wpr {
            let mut srcs = occ_row[wi] & intra.unwrap_or_else(|| source_mask(stride, wi));
            while srcs != 0 {
                // Occupancy tail bits are zero, so src < n, and the source
                // pattern guarantees src ≥ stride with src − stride a fold
                // target (≡ 0 mod 2·stride).
                let src = wi * WORD_BITS + srcs.trailing_zeros() as usize;
                srcs &= srcs - 1;
                let col = src - stride;
                let neigh = row[src];
                if neigh < row[col] {
                    // target ← non-∞ source: its occupancy bit turns on.
                    // (An unimproved target was already ≤ a non-∞ source,
                    // hence non-∞ with its bit already set — and a
                    // spurious ∞ source never improves anything.)
                    row[col] = neigh;
                    changed += 1;
                    occ_row[col / WORD_BITS] |= 1 << (col % WORD_BITS);
                }
            }
        }
    }
    changed
}

/// Generation 6 over whole rows: word-walks the per-generation membership
/// mask built by [`build_member_mask`] — cell `(row, col)` is live iff
/// `D_N[col] = row`, and a live cell keeps its value unless it equals the
/// row index. Writes each row's occupancy words into the row-partitioned
/// `occ` segment.
pub fn filter_member_rows(
    seg: &mut [Word],
    occ: &mut [AdjWord],
    mask: &[AdjWord],
    base_row: usize,
    n: usize,
    wpr: usize,
) -> usize {
    let mut changed = 0;
    for ((r, row), occ_row) in seg.chunks_mut(n).enumerate().zip(occ.chunks_mut(wpr)) {
        let row_idx = base_row + r;
        let words = &mask[row_idx * wpr..(row_idx + 1) * wpr];
        changed += filter_row(row, words, row_idx as Word, occ_row);
    }
    changed
}

/// Builds the row-aligned membership mask of generation 6: bit `(r, c)`
/// set iff `dn[c] = r`. One `O(n · wpr)` zeroing pass plus one set-bit per
/// column — cheaper than the `n²` membership tests it replaces.
pub fn build_member_mask(mask: &mut Vec<AdjWord>, dn: &[Word], n: usize, wpr: usize) {
    mask.clear();
    mask.resize(n * wpr, 0);
    for (col, &v) in dn[..n].iter().enumerate() {
        let r = v as usize;
        if r < n {
            mask[r * wpr + col / WORD_BITS] |= 1 << (col % WORD_BITS);
        }
    }
}

/// One row of the fused broadcast-then-filter pass (generations 1+2 and
/// 5+6 in the batched hot loop): the row conceptually takes the broadcast
/// vector `labels` and is immediately filtered against `words`/`keep`, in
/// a single load+store sweep instead of the broadcast's store pass plus
/// the filter's load+store pass.
///
/// Returns the exact `(broadcast_changed, filter_changed)` pair the two
/// separate passes would have produced: the broadcast tally compares the
/// old cell against `labels[col]`, the filter tally compares the filtered
/// value against the broadcast one — every compared value is already in
/// hand, so fusing the passes changes neither count. The intermediate
/// post-broadcast cell values are never materialized, which is why the
/// driver only takes this path when they are unobservable (no counting,
/// no validation, no single-stepping).
///
/// The win is cache locality, not fewer instructions: each 64-cell word
/// gets both generations' work while it is hot in L1, instead of two full
/// sweeps of the `n²` plane through the outer cache levels. Every
/// micro-pass stays a vectorizable shape — the broadcast tally is a plain
/// compare-count, and the filter half reuses [`filter_row`]'s per-word
/// regimes (all-zero fill, sparse-bit walk over a pre-filled gap, dense
/// branch-free select). The occupancy plane gets the same exact bits
/// [`filter_row`] produces.
#[inline]
pub fn broadcast_filter_row(
    row: &mut [Word],
    words: &[AdjWord],
    labels: &[Word],
    keep: Word,
    occ_row: &mut [AdjWord],
) -> (usize, usize) {
    let mut b_changed = 0;
    let mut f_changed = 0;
    for (wi, &bits) in words.iter().enumerate() {
        let lo = wi * WORD_BITS;
        let hi = (lo + WORD_BITS).min(row.len());
        let cells = &mut row[lo..hi];
        let labs = &labels[lo..hi];
        // Broadcast tally: old cell vs. broadcast value, lane-parallel.
        b_changed += cells.iter().zip(labs).filter(|(c, l)| c != l).count();
        if bits == 0 {
            // Word-skip: every lane filters to ∞; the filter tally only
            // needs the broadcast values.
            f_changed += labs.iter().filter(|&&l| l != INFINITY).count();
            cells.fill(INFINITY);
            occ_row[wi] = 0;
        } else if bits.count_ones() <= SPARSE_BITS {
            // Sparse: count the all-∞ outcome wholesale, fill, then walk
            // the set bits restoring survivors and correcting the tally.
            f_changed += labs.iter().filter(|&&l| l != INFINITY).count();
            cells.fill(INFINITY);
            let mut occ: AdjWord = 0;
            let mut b = bits;
            while b != 0 {
                let lane = b.trailing_zeros() as usize;
                b &= b - 1;
                let lab = labs[lane];
                if lab != keep {
                    // Survivor: the filter keeps the broadcast value, so
                    // the ∞-transition counted above never happened.
                    f_changed -= usize::from(lab != INFINITY);
                    cells[lane] = lab;
                    occ |= AdjWord::from(lab != INFINITY) << lane;
                }
            }
            occ_row[wi] = occ;
        } else {
            // Dense: the filtered value depends only on the broadcast
            // value and the live bit, so it is computed straight from
            // `labs` — one store per lane, the broadcast word is never
            // materialized. The tally pass then counts the ∞-transitions
            // lane-parallel against `labs`.
            let mut b = bits;
            for (cell, &lab) in cells.iter_mut().zip(labs) {
                let live = (b & 1) as Word;
                b >>= 1;
                let mask = (live & Word::from(lab != keep)).wrapping_neg();
                *cell = lab | !mask;
            }
            f_changed += cells.iter().zip(labs).filter(|(c, l)| c != l).count();
            occ_row[wi] = pack_occupancy(cells);
        }
    }
    (b_changed, f_changed)
}

/// Fused generations 1+2 over whole square rows (`keep = C(row) =
/// labels[row]` — after the broadcast, `D_N[row]` holds exactly
/// `labels[row]`, so reading the gathered vector is reading `D_N`).
/// The `D_N` row of the broadcast is handled by the caller.
pub fn broadcast_filter_neighbor_rows(
    seg: &mut [Word],
    occ: &mut [AdjWord],
    a: &[AdjWord],
    labels: &[Word],
    base_row: usize,
    n: usize,
    wpr: usize,
) -> (usize, usize) {
    let mut b_changed = 0;
    let mut f_changed = 0;
    for ((r, row), occ_row) in seg.chunks_mut(n).enumerate().zip(occ.chunks_mut(wpr)) {
        let row_idx = base_row + r;
        let words = &a[row_idx * wpr..(row_idx + 1) * wpr];
        let (b, f) = broadcast_filter_row(row, words, labels, labels[row_idx], occ_row);
        b_changed += b;
        f_changed += f;
    }
    (b_changed, f_changed)
}

/// Fused generations 1+2 over whole square rows when the gathered label
/// vector is *uniform* (a run converged to one component — the steady
/// state of every connected workload's trailing iterations): every live
/// cell then has `lab == keep`, so no cell survives the filter and the
/// pair collapses to the broadcast tally, one `fill(∞)` and a zeroed
/// occupancy row — no per-lane select at all. The filter tally is the
/// same for live and dead lanes (`lab → ∞` iff `lab ≠ ∞`), hence
/// `rows · |{c : labels[c] ≠ ∞}|`, computed by the caller.
pub fn broadcast_kill_rows(
    seg: &mut [Word],
    occ: &mut [AdjWord],
    labels: &[Word],
    n: usize,
    wpr: usize,
) -> usize {
    let mut b_changed = 0;
    for (row, occ_row) in seg.chunks_mut(n).zip(occ.chunks_mut(wpr)) {
        b_changed += row.iter().zip(labels).filter(|(c, l)| c != l).count();
        row.fill(INFINITY);
        occ_row.fill(0);
    }
    b_changed
}

/// Fused generations 5+6 over whole square rows (`keep = row`, live bits
/// from the membership mask — generation 5 leaves `D_N` untouched, so the
/// mask built before this pass is the mask generation 6 would have seen).
pub fn broadcast_filter_member_rows(
    seg: &mut [Word],
    occ: &mut [AdjWord],
    mask: &[AdjWord],
    labels: &[Word],
    base_row: usize,
    n: usize,
    wpr: usize,
) -> (usize, usize) {
    let mut b_changed = 0;
    let mut f_changed = 0;
    for ((r, row), occ_row) in seg.chunks_mut(n).enumerate().zip(occ.chunks_mut(wpr)) {
        let row_idx = base_row + r;
        let words = &mask[row_idx * wpr..(row_idx + 1) * wpr];
        let (b, f) = broadcast_filter_row(row, words, labels, row_idx as Word, occ_row);
        b_changed += b;
        f_changed += f;
    }
    (b_changed, f_changed)
}

/// Generation 9 over whole rows: difference-count scan of columns `1..`,
/// then one `fill` per differing row.
pub fn copy_save_rows(seg: &mut [Word], dn: &mut [Word], n: usize) -> usize {
    let mut changed = 0;
    for (r, row) in seg.chunks_mut(n).enumerate() {
        let t = row[0];
        changed += usize::from(dn[r] != t);
        dn[r] = t;
        let rest = &mut row[1..];
        let diffs = rest.iter().filter(|&&c| c != t).count();
        if diffs > 0 {
            rest.fill(t);
        }
        changed += diffs;
    }
    changed
}

/// Sub-generation bounds for the iterated phases of one problem size —
/// the symbolic-activity schedule the [`crate::kernels::ExecPath::FusedSwar`]
/// driver consults before running a sub-generation.
///
/// [`SwarSchedule::structural`] carries the paper's structural bounds
/// (`⌈log₂ n⌉` sub-generations per iterated phase). `gca-analysis`'s
/// activity layer derives the same bounds from its symbolic activity
/// closed forms (`gca_analysis::activity::swar_schedule`) — provably equal
/// for every `n ≥ 2`, so consulting the schedule never changes observable
/// behavior; the machinery exists so that a *shorter* schedule (a
/// hypothetical zero-activity tail) is skipped, and under
/// [`gca_engine::Instrumentation::Validate`] such a skip is cross-checked
/// against dynamic activity by a debug assertion instead of trusted.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SwarSchedule {
    n: usize,
    min_reduce_subs: u32,
    member_subs: u32,
    jump_subs: u32,
}

impl SwarSchedule {
    /// The structural schedule of problem size `n`: every iterated phase
    /// runs its full `⌈log₂ n⌉` sub-generations.
    pub fn structural(n: usize) -> Self {
        let l = ceil_log2(n);
        SwarSchedule {
            n,
            min_reduce_subs: l,
            member_subs: l,
            jump_subs: l,
        }
    }

    /// A schedule with explicit sub-generation bounds for generations 3,
    /// 7 and 10 (in that order) — how `gca-analysis` hands over bounds
    /// derived from its activity polynomials, and how tests construct
    /// deliberately short schedules to exercise the skip/assertion paths.
    pub fn from_bounds(n: usize, min_reduce: u32, members: u32, jump: u32) -> Self {
        SwarSchedule {
            n,
            min_reduce_subs: min_reduce,
            member_subs: members,
            jump_subs: jump,
        }
    }

    /// The problem size this schedule was derived for.
    pub fn n(&self) -> usize {
        self.n
    }

    /// How many sub-generations of `gen` the schedule keeps (non-iterated
    /// generations always run their single sub-generation).
    pub fn subgenerations(&self, gen: Gen) -> u32 {
        match gen {
            Gen::MinReduce => self.min_reduce_subs,
            Gen::MinReduceMembers => self.member_subs,
            Gen::PointerJump => self.jump_subs,
            g => g.subgenerations(self.n),
        }
    }

    /// Is sub-generation `sub` of `gen` scheduled (predicted non-zero
    /// activity)?
    pub fn live(&self, gen: Gen, sub: u32) -> bool {
        sub < self.subgenerations(gen)
    }

    /// Does this schedule equal the structural one (no skips)?
    pub fn is_structural(&self) -> bool {
        *self == SwarSchedule::structural(self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structural_schedule_keeps_every_subgeneration() {
        for n in [0usize, 1, 2, 3, 5, 8, 64, 100] {
            let s = SwarSchedule::structural(n);
            assert!(s.is_structural());
            for g in [Gen::MinReduce, Gen::MinReduceMembers, Gen::PointerJump] {
                assert_eq!(s.subgenerations(g), g.subgenerations(n), "n={n} {g:?}");
                for sub in 0..g.subgenerations(n) {
                    assert!(s.live(g, sub));
                }
                assert!(!s.live(g, g.subgenerations(n)));
            }
            // Non-iterated generations are untouched by the bounds.
            assert_eq!(s.subgenerations(Gen::BroadcastC), 1);
        }
    }

    #[test]
    fn short_schedule_drops_the_tail() {
        let s = SwarSchedule::from_bounds(16, 3, 4, 2);
        assert!(!s.is_structural());
        assert!(s.live(Gen::MinReduce, 2));
        assert!(!s.live(Gen::MinReduce, 3));
        assert!(s.live(Gen::MinReduceMembers, 3));
        assert!(!s.live(Gen::PointerJump, 2));
    }

    #[test]
    fn filter_row_matches_scalar_semantics_across_word_boundaries() {
        // 70 columns = two adjacency words with a 6-bit zero tail.
        let n = 70usize;
        let wpr = n.div_ceil(WORD_BITS);
        let keep: Word = 7;
        // Pseudo-random row values and live bits (deterministic LCG).
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut row: Vec<Word> = (0..n)
            .map(|_| match next() % 4 {
                0 => INFINITY,
                1 => keep,
                v => v as Word,
            })
            .collect();
        let mut words = vec![0 as AdjWord; wpr];
        for col in 0..n {
            if next() % 3 == 0 {
                words[col / WORD_BITS] |= 1 << (col % WORD_BITS);
            }
        }
        // Scalar reference: the per-cell rule of crate::kernels.
        let mut expect = row.clone();
        let mut expect_changed = 0;
        for (col, cell) in expect.iter_mut().enumerate() {
            let live = (words[col / WORD_BITS] >> (col % WORD_BITS)) & 1 == 1;
            if !(live && *cell != keep) {
                expect_changed += usize::from(*cell != INFINITY);
                *cell = INFINITY;
            }
        }
        let mut occ = vec![0 as AdjWord; wpr];
        let changed = filter_row(&mut row, &words, keep, &mut occ);
        assert_eq!(row, expect);
        assert_eq!(changed, expect_changed);
        // The occupancy byproduct is a superset of the non-∞ cells (so a
        // guided fold never misses a live source), bounded above by the
        // live bits (so tail bits stay zero and spurious bits stay rare).
        for (col, &cell) in row.iter().enumerate() {
            let bit = (occ[col / WORD_BITS] >> (col % WORD_BITS)) & 1 == 1;
            let live = (words[col / WORD_BITS] >> (col % WORD_BITS)) & 1 == 1;
            assert!(bit || cell == INFINITY, "missing occupancy at col {col}");
            assert!(live || !bit, "occupancy outside live bits at col {col}");
        }
    }

    #[test]
    fn fused_broadcast_filter_row_matches_the_separate_passes() {
        // 70 columns = two words with a zero tail; word 1 of the live bits
        // is left all-zero so the word-skip regime runs alongside the
        // branch-free one.
        let n = 70usize;
        let wpr = n.div_ceil(WORD_BITS);
        let keep: Word = 9;
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let labels: Vec<Word> = (0..n).map(|_| (next() % 64) as Word).collect();
        let mut row: Vec<Word> = (0..n)
            .map(|_| match next() % 4 {
                0 => INFINITY,
                v => v as Word,
            })
            .collect();
        let mut words = vec![0 as AdjWord; wpr];
        for col in 0..WORD_BITS.min(n) {
            if next() % 3 == 0 {
                words[0] |= 1 << col;
            }
        }
        // Reference: the separate broadcast pass then the filter pass.
        let mut expect = row.clone();
        let mut expect_occ = vec![0 as AdjWord; wpr];
        let expect_b = broadcast_rows(&mut expect, &labels);
        let expect_f = filter_row(&mut expect, &words, keep, &mut expect_occ);
        let mut occ = vec![0 as AdjWord; wpr];
        let (b, f) = broadcast_filter_row(&mut row, &words, &labels, keep, &mut occ);
        assert_eq!(row, expect);
        assert_eq!(occ, expect_occ);
        assert_eq!(b, expect_b, "broadcast tally");
        assert_eq!(f, expect_f, "filter tally");
    }

    #[test]
    fn source_mask_selects_exactly_the_fold_sources() {
        for s in 0..10u32 {
            let stride = 1usize << s;
            for wi in 0..8usize {
                let mask = source_mask(stride, wi);
                for bit in 0..WORD_BITS {
                    let col = wi * WORD_BITS + bit;
                    let is_source = col % (stride << 1) == stride;
                    assert_eq!(
                        (mask >> bit) & 1 == 1,
                        is_source,
                        "stride {stride} word {wi} bit {bit}"
                    );
                }
            }
        }
    }

    #[test]
    fn occupancy_guided_reduce_matches_scalar_folds() {
        // A dense instance (~1/3 occupied: rows take the full-sweep body)
        // and a sparse one (~1/16: rows take the bit-walk), so both fold
        // bodies and the crossover are exercised.
        occupancy_guided_reduce_case(3);
        occupancy_guided_reduce_case(16);
    }

    fn occupancy_guided_reduce_case(inf_one_in: u64) {
        // Two 70-column rows (wpr = 2, zero tail), folded through every
        // sub-generation with the occupancy plane threaded across subs —
        // exactly the generation-3/7 trajectory.
        let n = 70usize;
        let wpr = n.div_ceil(WORD_BITS);
        let rows = 2usize;
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut seg: Vec<Word> = (0..rows * n)
            .map(|_| {
                if next() % inf_one_in != 0 {
                    INFINITY
                } else {
                    (next() % 97) as Word
                }
            })
            .collect();
        let mut occ = vec![0 as AdjWord; rows * wpr];
        for (i, &c) in seg.iter().enumerate() {
            let (r, col) = (i / n, i % n);
            occ[r * wpr + col / WORD_BITS] |= AdjWord::from(c != INFINITY) << (col % WORD_BITS);
        }
        let mut expect = seg.clone();
        for s in 0..ceil_log2(n) {
            let stride = 1usize << s;
            let mut expect_changed = 0;
            for row in expect.chunks_mut(n) {
                let mut col = 0;
                while col + stride < n {
                    let m = row[col].min(row[col + stride]);
                    expect_changed += usize::from(m != row[col]);
                    row[col] = m;
                    col += stride << 1;
                }
            }
            let changed = min_reduce_rows_occ(&mut seg, &mut occ, stride, n, wpr);
            assert_eq!(seg, expect, "plane after sub {s}");
            assert_eq!(changed, expect_changed, "changed after sub {s}");
            for (i, &c) in seg.iter().enumerate() {
                let (r, col) = (i / n, i % n);
                let bit = (occ[r * wpr + col / WORD_BITS] >> (col % WORD_BITS)) & 1 == 1;
                // Superset invariant: no non-∞ cell ever loses its bit.
                assert!(bit || c == INFINITY, "missing occupancy after sub {s} at {i}");
            }
            for (wi, &w) in occ.iter().enumerate() {
                if wi % wpr == wpr - 1 {
                    // Tail columns (≥ n) must stay unoccupied: the guided
                    // walk indexes `row[src]` straight off these bits.
                    assert_eq!(w >> (n - (wpr - 1) * WORD_BITS), 0, "tail bits after sub {s}");
                }
            }
        }
    }
}
