//! Fused flat-array kernels for the Hirschberg rule ([`ExecPath::Fused`],
//! [`ExecPath::FusedParallel`] and [`ExecPath::FusedSwar`]).
//!
//! The generic engine path evaluates every generation through per-cell
//! [`gca_engine::GcaRule`] dispatch: each cell re-derives its row/column,
//! re-matches the phase enum, resolves an [`gca_engine::Access`], and the
//! engine copies every untouched cell from the previous to the next buffer.
//! For the iterated phases (the two `⌈log₂ n⌉` min-reduction trees and
//! pointer jumping) that copy alone is `O(n²)` work per sub-generation for
//! `O(n)` useful updates.
//!
//! This module implements each of Figure 2's generations as a specialized
//! kernel over the struct-of-arrays `HField` data plane instead:
//!
//! * **broadcasts** (generations 1, 5, 9) gather the column-0 vector into a
//!   reusable scratch once, then fill rows with strided writes;
//! * **tree reductions** (generations 3, 7) update the current buffer in
//!   place — within one sub-generation the written columns
//!   (`col ≡ 0 (mod 2^{s+1})`) and the read columns (`col + 2^s`) are
//!   disjoint, so synchrony holds without any buffer copy, and the `log n`
//!   sub-generations fuse into consecutive passes over the same buffer;
//! * **pointer jumping** (generation 10) chases pointers through two
//!   ping-pong label vectors of length `n` (`FusedExecutor::gather_labels`
//!   / `FusedExecutor::scatter_labels`), touching the `n²`-cell field not
//!   at all between sub-generations — the existing
//!   [`crate::Convergence::Detect`] fixed point composes unchanged.
//!
//! **SWAR execution.** [`ExecPath::FusedSwar`] swaps each row-range body
//! for the word-parallel equivalent in the [`crate::swar`] module — identical per-cell
//! semantics (so labels and `Counts` metrics stay bit-identical), but the
//! bit-gated filters walk the row-aligned packed adjacency plane a word at
//! a time (zero-word skip + `trailing_zeros` set-bit walks) and the fills
//! and reductions run branch-free over whole slices. The dispatch is a
//! per-kernel function-pointer/closure selection on
//! `FusedExecutor::set_swar`, so the chunking, accounting and histogram
//! machinery below is shared verbatim by all three fused paths.
//!
//! **Parallel execution.** Every kernel body is a *row-range function*
//! (`*_rows` below) over a contiguous slice of whole rows. The sequential
//! path runs it once over the full range; [`ExecPath::FusedParallel`] runs
//! the same function over disjoint `par_chunks_mut` row partitions, one
//! `ChunkReport` accumulator per chunk, merged after the join. Because
//! both paths execute the identical per-cell code and integer counter sums
//! commute, labels *and* metrics are bit-identical by construction. The
//! per-generation race-freedom argument (why row partitions never alias) is
//! written out in DESIGN.md §13.
//!
//! **Metrics contract.** Every kernel produces the exact counters the
//! generic path produces: active cells per Table 1, total reads, changed
//! cells (the convergence signal), and — when counting — the per-target
//! read histogram in `FusedExecutor::reads`. Statically addressed phases
//! recount their histogram in a data-independent pass on the calling
//! thread; the data-dependent pointer chases (generations 10 and 11)
//! accumulate compact per-chunk histograms (indexed by the chased label,
//! `≤ n`) that are folded into the shared histogram after the join.
//! `tests/property_based.rs` asserts labelings *and* `Counts` metrics are
//! bit-identical across all three paths; `Instrumentation::Trace` needs
//! per-cell access lists only the generic evaluator materializes, so
//! [`crate::Machine`] falls back to it.

use crate::hfield::{a_bit, HField};
use crate::{swar, Gen, HCell};
use gca_engine::{AdjWord, CellField, GcaError, StepCtx, Word, INFINITY, WORD_BITS};
use rayon::prelude::*;

/// Which implementation executes the state machine's generations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ExecPath {
    /// The engine's generic per-cell `access`/`evolve` dispatch — the
    /// reference semantics, supporting every [`gca_engine::Instrumentation`]
    /// level and [`gca_engine::Backend`].
    #[default]
    Generic,
    /// The fused flat-array kernels of [`crate::kernels`], sequential.
    /// Bit-identical labelings and `Counts` metrics; steps with
    /// [`gca_engine::Instrumentation::Trace`] fall back to the generic path
    /// (access traces require the per-cell evaluator).
    Fused,
    /// The fused kernels with row-partitioned data parallelism *within* one
    /// graph (see [`FusedParallel`]). Falls back to sequential kernel
    /// execution per generation when the touched region is below the
    /// threshold, exactly like [`gca_engine::Backend::Parallel`] does for
    /// the generic path. Labels and `Counts` metrics stay bit-identical to
    /// [`ExecPath::Fused`]; `Trace` falls back to generic like `Fused`.
    FusedParallel(FusedParallel),
    /// The fused kernels with SWAR (SIMD-within-a-register) row bodies from
    /// the `swar` module: word-skip + `trailing_zeros` walks over the
    /// bit-packed adjacency plane, slice-equality broadcast fast paths and
    /// branch-free tree reductions — 64 cells per ALU operation on the
    /// filter generations. Optionally composes with row partitioning
    /// ([`FusedSwar::parallel`]): SWAR inside each chunk. Labels and
    /// `Counts` metrics stay bit-identical to [`ExecPath::Fused`]; `Trace`
    /// falls back to generic like `Fused`. The machine driver additionally
    /// consults a [`crate::SwarSchedule`] (structural by default, derivable
    /// from `gca-analysis`'s symbolic activity forms) to skip provably
    /// zero-activity sub-generations.
    FusedSwar(FusedSwar),
}

/// Configuration of the data-parallel fused path
/// ([`ExecPath::FusedParallel`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub struct FusedParallel {
    /// Worker (chunk) count; `0` means one per hardware thread
    /// ([`rayon::current_num_threads`]). An explicit count is honored
    /// exactly — even on small fields — so non-power-of-two partitions can
    /// be exercised deterministically.
    pub workers: usize,
    /// Minimum touched cells per generation before a kernel goes parallel;
    /// `None` inherits the engine's tunable
    /// ([`gca_engine::Engine::min_parallel_cells`]), sharing one fallback
    /// knob with [`gca_engine::Backend::Parallel`].
    pub threshold: Option<usize>,
}

impl FusedParallel {
    /// A configuration with an explicit worker count and the shared engine
    /// threshold.
    pub fn with_workers(workers: usize) -> Self {
        FusedParallel {
            workers,
            threshold: None,
        }
    }
}

/// Configuration of the SWAR fused path ([`ExecPath::FusedSwar`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub struct FusedSwar {
    /// Row-partitioned parallelism *inside* the SWAR kernels; `None` runs
    /// the SWAR bodies sequentially (the honest single-thread
    /// configuration the benches report).
    pub parallel: Option<FusedParallel>,
}

impl ExecPath {
    /// Shorthand for [`ExecPath::FusedParallel`] with `workers` workers
    /// (`0` = auto) and the engine-shared threshold.
    pub fn fused_parallel(workers: usize) -> Self {
        ExecPath::FusedParallel(FusedParallel::with_workers(workers))
    }

    /// Shorthand for the sequential [`ExecPath::FusedSwar`] configuration.
    pub fn fused_swar() -> Self {
        ExecPath::FusedSwar(FusedSwar::default())
    }
}

/// The resolved per-step parallel policy [`crate::Machine`] hands the
/// executor: worker count already defaulted (≥ 2, or the machine would not
/// pass a policy at all) and threshold resolved against the engine tunable.
#[derive(Clone, Copy, Debug)]
pub struct ParPolicy {
    /// Target chunk count.
    pub workers: usize,
    /// Minimum touched cells before a kernel parallelizes.
    pub threshold: usize,
    /// `true` when the worker count was configured explicitly (honor it
    /// exactly); `false` for auto counts (clamp chunks to a minimum size so
    /// scoped-thread spawns stay amortized, mirroring the engine backend).
    pub explicit: bool,
}

/// Minimum data-plane cells per parallel chunk under an *auto* worker
/// count (mirrors `gca-engine`'s `MIN_PAR_CHUNK`); explicit worker counts
/// bypass it.
pub const MIN_PAR_CHUNK_CELLS: usize = 8 * 1024;

/// Decides the row partitioning of one kernel: `None` → run sequentially,
/// `Some(rows_per_chunk)` → split `rows` rows (each `row_width` data-plane
/// cells wide) into `par_chunks_mut` partitions.
///
/// Public as verification surface: `gca-analysis`'s partition prover
/// (DESIGN.md §15) enumerates this exact planner over every kernel
/// geometry to prove the resulting `par_chunks_mut` intervals are
/// pairwise disjoint and exactly cover the field.
pub fn plan_rows(
    par: Option<ParPolicy>,
    touched: usize,
    rows: usize,
    row_width: usize,
) -> Option<usize> {
    let p = par?;
    if touched < p.threshold || rows < 2 {
        return None;
    }
    let mut rows_per = rows.div_ceil(p.workers).max(1);
    if !p.explicit {
        rows_per = rows_per.max(MIN_PAR_CHUNK_CELLS.div_ceil(row_width.max(1)));
    }
    (rows.div_ceil(rows_per) >= 2).then_some(rows_per)
}

/// Counters of one fused generation — the kernel-side mirror of
/// [`gca_engine::StepReport`]'s counter fields.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct KernelReport {
    /// Cells that performed a calculation (Table 1's activity column).
    pub active: usize,
    /// Total global reads issued.
    pub reads: u64,
    /// Cells whose new state differs from their previous state.
    pub changed: usize,
    /// Cells the kernel visited.
    pub evaluated: usize,
    /// Worker chunks that executed the kernel (`1` = sequential, including
    /// the below-threshold auto-fallback).
    pub workers: usize,
}

impl KernelReport {
    fn sequential(active: usize, reads: u64, changed: usize) -> Self {
        KernelReport {
            active,
            reads,
            changed,
            evaluated: active,
            workers: 1,
        }
    }
}

/// One parallel chunk's accumulator: a changed-cell tally, a compact
/// per-label read histogram for the data-dependent kernels (merged into
/// the shared histogram after the join) and an error slot. Owned by the
/// executor so the buffers stay warm across generations.
#[derive(Clone, Debug, Default)]
struct ChunkReport {
    changed: usize,
    hist: Vec<u32>,
    error: Option<GcaError>,
}

/// Clears (and histogram-sizes) the first `count` chunk accumulators,
/// growing the pool on demand.
fn chunk_slots(
    chunks: &mut Vec<ChunkReport>,
    count: usize,
    hist_len: Option<usize>,
) -> &mut [ChunkReport] {
    if chunks.len() < count {
        chunks.resize_with(count, ChunkReport::default);
    }
    let slots = &mut chunks[..count];
    for c in slots.iter_mut() {
        c.changed = 0;
        c.error = None;
        c.hist.clear();
        if let Some(len) = hist_len {
            c.hist.resize(len, 0);
        }
    }
    slots
}

/// Reusable scratch and per-generation kernels for one problem size `n`.
///
/// Owned by [`crate::Machine`]; all buffers (including the [`HField`] SoA
/// mirror of the machine's field) are allocated once and reused, so fused
/// steady-state stepping performs no allocation (under
/// `Instrumentation::Off`) beyond what the metrics log itself appends.
#[derive(Clone, Debug, Default)]
pub(crate) struct FusedExecutor {
    n: usize,
    /// The SoA mirror the kernels execute on; synced with the machine's
    /// `CellField<HCell>` at the `Machine` boundary.
    hfield: HField,
    /// Gathered column-0 (`C`/`T`) values — the broadcast source and the
    /// "ping" label buffer of pointer jumping.
    labels: Vec<Word>,
    /// The "pong" label buffer of pointer jumping.
    labels_next: Vec<Word>,
    /// Per-target read counts of the last executed generation (the Table-1
    /// congestion histogram), filled when counting.
    reads: Vec<u32>,
    /// Per-chunk accumulators of the parallel path.
    chunks: Vec<ChunkReport>,
    /// Route row bodies through the SWAR kernels of [`crate::swar`]
    /// ([`ExecPath::FusedSwar`]); set by the machine at SoA sync time.
    swar: bool,
    /// Generation 6 scratch of the SWAR path: the row-aligned membership
    /// mask (`bit (r, c) ⇔ D_N[c] = r`), rebuilt each FilterMembers.
    member_mask: Vec<AdjWord>,
    /// SWAR occupancy plane over the square field: bit `(r, c)` set iff
    /// cell `(r, c)` is not `∞`. Written exactly by the filter kernels
    /// (generations 2 and 6), maintained by the occupancy-guided tree
    /// reductions, and meaningful only while `occ_valid`.
    occ: Vec<AdjWord>,
    /// Whether `occ` currently mirrors the square plane. True only in the
    /// filter → min-reduce windows of a SWAR run; any other kernel (or a
    /// SoA reload) invalidates it, dropping the reductions back to their
    /// occupancy-free bodies.
    occ_valid: bool,
    /// Test-only seeded fault: the next *parallel counting* broadcast
    /// accounts one boundary cell as if two adjacent row partitions
    /// overlapped on it, so the replay harness can prove it catches a
    /// mispartitioned kernel.
    overlap_fault: bool,
}

impl FusedExecutor {
    /// An executor for problem size `n`.
    pub fn new(n: usize) -> Self {
        let hfield = HField::new(n);
        let occ = vec![0; n * hfield.words_per_row];
        FusedExecutor {
            n,
            hfield,
            labels: Vec::with_capacity(n),
            labels_next: vec![0; n],
            reads: Vec::new(),
            chunks: Vec::new(),
            swar: false,
            member_mask: Vec::new(),
            occ,
            occ_valid: false,
            overlap_fault: false,
        }
    }

    /// Selects the SWAR row bodies ([`ExecPath::FusedSwar`]) for every
    /// subsequent kernel call.
    pub fn set_swar(&mut self, swar: bool) {
        if self.swar != swar {
            self.occ_valid = false;
        }
        self.swar = swar;
    }

    /// Reloads the SoA mirror from the authoritative AoS field.
    pub fn load(&mut self, field: &CellField<HCell>) {
        self.hfield.load(field);
        self.occ_valid = false;
    }

    /// Writes the SoA data plane back into the AoS field (adjacency bits
    /// are immutable and never flow back).
    pub fn store_d(&self, field: &mut CellField<HCell>) {
        self.hfield.store_d(field);
    }

    /// Per-target read counts of the last kernel executed with
    /// `counting = true` (empty otherwise).
    pub fn reads(&self) -> &[u32] {
        &self.reads
    }

    /// Zero-fills the read-count scratch for a directly driven kernel call
    /// ([`FusedExecutor::jump_once`]); [`FusedExecutor::step`] does this
    /// itself.
    pub fn reset_reads(&mut self, len: usize) {
        self.reads.clear();
        self.reads.resize(len, 0);
    }

    /// Arms the seeded partition-overlap fault (see
    /// [`crate::Machine::seed_partition_fault`]).
    pub fn seed_partition_fault(&mut self) {
        self.overlap_fault = true;
    }

    /// The data-plane word of linear cell `i`, or `None` when out of
    /// range — the fault-injection hooks' read surface.
    pub fn word_at(&self, i: usize) -> Option<Word> {
        self.hfield.d.get(i).copied()
    }

    /// Overwrites the data-plane word of linear cell `i` (out-of-range
    /// writes are ignored) — the fault-injection hooks' write surface.
    pub fn set_word(&mut self, i: usize, w: Word) {
        if let Some(slot) = self.hfield.d.get_mut(i) {
            *slot = w;
        }
    }

    /// Copies the whole data plane into `out` (reusing its allocation) —
    /// the pre-generation capture of a dropped-generation fault.
    pub fn save_plane(&self, out: &mut Vec<Word>) {
        out.clear();
        out.extend_from_slice(&self.hfield.d);
    }

    /// Restores a data plane captured by [`FusedExecutor::save_plane`].
    /// Ignored on length mismatch (a stale capture from another size).
    pub fn load_plane(&mut self, plane: &[Word]) {
        if plane.len() == self.hfield.d.len() {
            self.hfield.d.copy_from_slice(plane);
        }
    }

    /// Clears the occupancy-plane bit of square cell `i` — the stale-
    /// occupancy fault surface: a filter marked the cell occupied, the
    /// occupancy write is lost, and the next occupancy-guided tree
    /// reduction skips a live value. No-op unless the plane is currently
    /// authoritative (SWAR path, inside a filter → min-reduce window) or
    /// `i` lies outside the square plane.
    pub fn clear_occ_bit(&mut self, i: usize) {
        if !(self.occ_valid && self.swar) || self.n == 0 || i >= self.n * self.n {
            return;
        }
        let (row, col) = (i / self.n, i % self.n);
        self.occ[row * self.hfield.words_per_row + col / WORD_BITS] &=
            !(1 << (col % WORD_BITS));
    }

    /// Increments the read-count of cell `i` behind the kernels' back —
    /// the corrupted-histogram-merge fault surface (a chunk's congestion
    /// accumulator folded in twice). No-op when the scratch is not sized
    /// (non-counting step) or `i` is out of range.
    pub fn bump_read(&mut self, i: usize) {
        if let Some(r) = self.reads.get_mut(i) {
            *r += 1;
        }
    }

    /// Executes one `(generation, sub-generation)` over the SoA mirror,
    /// dispatching to the matching kernel. `par` carries the resolved
    /// parallel policy (`None` = sequential fused path). On error the data
    /// plane is left on its previous generation, like
    /// [`gca_engine::Engine::step`].
    pub fn step(
        &mut self,
        ctx: &StepCtx,
        counting: bool,
        par: Option<ParPolicy>,
    ) -> Result<KernelReport, GcaError> {
        let gen = Gen::from_number(ctx.phase)
            .unwrap_or_else(|| panic!("invalid Hirschberg phase {}", ctx.phase));
        let n = self.n;
        self.reads.clear();
        if counting {
            self.reads.resize(self.hfield.d.len(), 0);
        }
        if n == 0 {
            return Ok(KernelReport {
                workers: 1,
                ..KernelReport::default()
            });
        }
        // Occupancy lifecycle: the SWAR filters produce an exact plane,
        // the tree reductions keep it exact, everything else (including
        // errors, which leave the plane mid-state) invalidates it.
        let occ_was_valid = self.occ_valid;
        self.occ_valid = false;
        match gen {
            Gen::Init => Ok(self.init(par)),
            Gen::BroadcastC => Ok(self.broadcast(counting, true, par)),
            Gen::FilterNeighbors => {
                let rep = self.filter_neighbors(counting, par);
                self.occ_valid = self.swar;
                Ok(rep)
            }
            Gen::MinReduce | Gen::MinReduceMembers => {
                let rep = self.min_reduce(ctx.subgeneration, counting, occ_was_valid, par);
                self.occ_valid = self.swar && occ_was_valid;
                Ok(rep)
            }
            Gen::ResolveIsolated | Gen::ResolveMembers => Ok(self.resolve(counting, par)),
            Gen::BroadcastT => Ok(self.broadcast(counting, false, par)),
            Gen::FilterMembers => {
                let rep = self.filter_members(counting, par);
                self.occ_valid = self.swar;
                Ok(rep)
            }
            Gen::CopyAndSaveT => Ok(self.copy_and_save_t(counting, par)),
            Gen::PointerJump => {
                self.gather_labels();
                let rep = self.jump_once(ctx, counting, par)?;
                self.scatter_labels();
                Ok(rep)
            }
            Gen::FinalMin => self.final_min(ctx, counting, par),
        }
    }

    /// Generation 0: `d ← row(index)` everywhere, no reads.
    fn init(&mut self, par: Option<ParPolicy>) -> KernelReport {
        let n = self.n;
        let rows = n + 1;
        let touched = rows * n;
        let run: fn(&mut [Word], usize, usize) -> usize = if self.swar {
            swar::init_rows
        } else {
            init_rows
        };
        let (changed, workers) = match plan_rows(par, touched, rows, n) {
            None => (run(&mut self.hfield.d, 0, n), 1),
            Some(rows_per) => {
                let count = rows.div_ceil(rows_per);
                let slots = chunk_slots(&mut self.chunks, count, None);
                self.hfield
                    .d
                    .par_chunks_mut(rows_per * n)
                    .zip(slots.par_iter_mut())
                    .enumerate()
                    .for_each(|(ci, (seg, acc))| {
                        acc.changed = run(seg, ci * rows_per, n);
                    });
                (slots.iter().map(|c| c.changed).sum(), count)
            }
        };
        KernelReport {
            active: touched,
            reads: 0,
            changed,
            evaluated: touched,
            workers,
        }
    }

    /// Generations 1 and 5: fill every row with the gathered column-0
    /// vector. Generation 1 (`include_dn`) also overwrites `D_N` (saving
    /// `C`); generation 5 leaves `D_N` on its saved copy.
    fn broadcast(
        &mut self,
        counting: bool,
        include_dn: bool,
        par: Option<ParPolicy>,
    ) -> KernelReport {
        let n = self.n;
        self.labels.clear();
        {
            let d = &self.hfield.d;
            self.labels.extend((0..n).map(|j| d[j * n]));
        }
        let rows = if include_dn { n + 1 } else { n };
        let touched = rows * n;
        let run: fn(&mut [Word], &[Word]) -> usize = if self.swar {
            swar::broadcast_rows
        } else {
            broadcast_rows
        };
        let (changed, workers) = match plan_rows(par, touched, rows, n) {
            None => (run(&mut self.hfield.d[..touched], &self.labels), 1),
            Some(rows_per) => {
                let count = rows.div_ceil(rows_per);
                let slots = chunk_slots(&mut self.chunks, count, None);
                let labels = &self.labels;
                self.hfield.d[..touched]
                    .par_chunks_mut(rows_per * n)
                    .zip(slots.par_iter_mut())
                    .for_each(|(seg, acc)| acc.changed = run(seg, labels));
                (slots.iter().map(|c| c.changed).sum(), count)
            }
        };
        if counting {
            for col in 0..n {
                // rows ≤ n + 1 and the layout caps n below u32::MAX.
                self.reads[col * n] += rows as u32; // gca-lint: allow(truncating-cast)
            }
            if workers > 1 && self.overlap_fault {
                // Seeded fault: account the first column-0 cell once more,
                // exactly what an off-by-one row partition (two chunks both
                // covering row 0) would have produced. Safe Rust makes a
                // real aliasing overlap unrepresentable (`par_chunks_mut`
                // hands out disjoint `&mut` slices), so the injectable
                // fault is the accounting effect the replay harness must
                // flag as `KernelDivergence`.
                self.overlap_fault = false;
                self.reads[0] += 1;
            }
        }
        KernelReport {
            active: touched,
            reads: touched as u64,
            changed,
            evaluated: touched,
            workers,
        }
    }

    /// Fused broadcast + filter: generations 1+2 (`members = false`) or
    /// 5+6 (`members = true`) in one sweep over the square plane — one
    /// load+store per cell instead of the broadcast's store pass plus the
    /// filter's load+store pass. SWAR-only, and only reached from the
    /// batched driver when the post-broadcast intermediate state is
    /// unobservable (instrumentation off, no validation, no
    /// single-stepping): per-generation read accounting is not produced
    /// here. The returned pair carries the two generations' reports with
    /// the exact `changed` counts the separate passes produce (see
    /// [`swar::broadcast_filter_neighbor_rows`]).
    pub(crate) fn broadcast_filter(
        &mut self,
        members: bool,
        par: Option<ParPolicy>,
    ) -> (KernelReport, KernelReport) {
        debug_assert!(self.swar, "fused broadcast+filter is a SWAR body");
        let n = self.n;
        let wpr = self.hfield.words_per_row;
        self.labels.clear();
        {
            let d = &self.hfield.d;
            self.labels.extend((0..n).map(|j| d[j * n]));
        }
        if members {
            // Generation 5 leaves D_N untouched, so the mask built here is
            // the mask generation 6 would have seen after the broadcast.
            swar::build_member_mask(&mut self.member_mask, &self.hfield.d[n * n..], n, wpr);
        }
        let occ = &mut self.occ;
        let (square, dn) = self.hfield.d.split_at_mut(n * n);
        let labels = &self.labels;
        let a = &self.hfield.a;
        let mask = &self.member_mask;
        // A uniform label vector (run converged to one component) means no
        // cell survives generation 2's `lab ≠ C(row)` test: the pair
        // degenerates to tally + fill. Not applicable to generation 6,
        // whose `keep` varies by row.
        let uniform_kill = !members && labels.iter().all(|&l| l == labels[0]);
        let kill_f_per_row = labels.iter().filter(|&&l| l != INFINITY).count();
        let run = |seg: &mut [Word], occ_seg: &mut [AdjWord], base_row: usize| {
            if uniform_kill {
                let rows = seg.len() / n.max(1);
                (
                    swar::broadcast_kill_rows(seg, occ_seg, labels, n, wpr),
                    rows * kill_f_per_row,
                )
            } else if members {
                swar::broadcast_filter_member_rows(seg, occ_seg, mask, labels, base_row, n, wpr)
            } else {
                swar::broadcast_filter_neighbor_rows(seg, occ_seg, a, labels, base_row, n, wpr)
            }
        };
        let ((mut b_changed, f_changed), workers) = match plan_rows(par, n * n, n, n) {
            None => (run(square, occ, 0), 1),
            Some(rows_per) => {
                let count = n.div_ceil(rows_per);
                // Two tallies per chunk, so the shared `ChunkReport` slots
                // (one counter) don't fit; `count` is at most the worker
                // budget, so a fresh accumulator vector is cheap.
                let mut slots: Vec<(usize, usize)> = vec![(0, 0); count];
                square
                    .par_chunks_mut(rows_per * n)
                    .zip(occ.par_chunks_mut(rows_per * wpr))
                    .zip(slots.par_iter_mut())
                    .enumerate()
                    .for_each(|(ci, ((seg, occ_seg), acc))| {
                        *acc = run(seg, occ_seg, ci * rows_per);
                    });
                (
                    slots
                        .iter()
                        .fold((0, 0), |(b, f), &(cb, cf)| (b + cb, f + cf)),
                    count,
                )
            }
        };
        // Generation 1's broadcast also writes the D_N row (saving `C`);
        // generation 5's leaves D_N on the saved copy.
        let bcast_rows = if members { n } else { n + 1 };
        if !members {
            for (cell, &lab) in dn[..n].iter_mut().zip(labels) {
                b_changed += usize::from(*cell != lab);
                *cell = lab;
            }
        }
        // The filter half wrote an exact occupancy plane, exactly as the
        // separate SWAR filter generation would have.
        self.occ_valid = true;
        let bcast = KernelReport {
            active: bcast_rows * n,
            reads: (bcast_rows * n) as u64,
            changed: b_changed,
            evaluated: bcast_rows * n,
            workers,
        };
        let filter = KernelReport {
            active: n * n,
            reads: (n * n) as u64,
            changed: f_changed,
            evaluated: n * n,
            workers,
        };
        (bcast, filter)
    }

    /// Generation 2: keep `d = C(col)` only where an edge connects `row` to
    /// `col` and the endpoints are in different components (`d ≠ C(row)`,
    /// with `C(row)` read from `D_N`); else `∞`.
    fn filter_neighbors(&mut self, counting: bool, par: Option<ParPolicy>) -> KernelReport {
        let n = self.n;
        let wpr = self.hfield.words_per_row;
        let swar = self.swar;
        let occ = &mut self.occ;
        let (square, dn) = self.hfield.d.split_at_mut(n * n);
        let a = &self.hfield.a;
        let run = |seg: &mut [Word], occ_seg: &mut [AdjWord], base_row: usize, dn: &[Word]| {
            if swar {
                swar::filter_neighbor_rows(seg, occ_seg, a, dn, base_row, n, wpr)
            } else {
                filter_neighbor_rows(seg, a, dn, base_row, n, wpr)
            }
        };
        let (changed, workers) = match plan_rows(par, n * n, n, n) {
            None => (run(square, occ, 0, dn), 1),
            Some(rows_per) => {
                let count = n.div_ceil(rows_per);
                let slots = chunk_slots(&mut self.chunks, count, None);
                let dn = &dn[..];
                // The occupancy plane is row-partitioned exactly like the
                // square plane, so chunks stay disjoint (and untouched by
                // the scalar bodies).
                square
                    .par_chunks_mut(rows_per * n)
                    .zip(occ.par_chunks_mut(rows_per * wpr))
                    .zip(slots.par_iter_mut())
                    .enumerate()
                    .for_each(|(ci, ((seg, occ_seg), acc))| {
                        acc.changed = run(seg, occ_seg, ci * rows_per, dn);
                    });
                (slots.iter().map(|c| c.changed).sum(), count)
            }
        };
        if counting {
            for row in 0..n {
                // The layout caps n below u32::MAX.
                self.reads[n * n + row] += n as u32; // gca-lint: allow(truncating-cast)
            }
        }
        KernelReport {
            active: n * n,
            reads: (n * n) as u64,
            changed,
            evaluated: n * n,
            workers,
        }
    }

    /// Generations 3 and 7, one sub-generation: every participating cell
    /// (`col ≡ 0 (mod 2^{s+1})`, `col + 2^s < n`) folds in the cell `2^s` to
    /// its right. In place: written and read columns are disjoint, and both
    /// stay inside the cell's own row, so row partitions never alias.
    fn min_reduce(
        &mut self,
        s: u32,
        counting: bool,
        occ_valid: bool,
        par: Option<ParPolicy>,
    ) -> KernelReport {
        let n = self.n;
        let wpr = self.hfield.words_per_row;
        let stride = 1usize << s;
        let per_row = if n > stride {
            (n - stride - 1) / (stride << 1) + 1
        } else {
            0
        };
        let active = n * per_row;
        let use_occ = self.swar && occ_valid;
        let occ = &mut self.occ;
        let square = &mut self.hfield.d[..n * n];
        let run = |seg: &mut [Word], occ_seg: &mut [AdjWord]| {
            if use_occ {
                swar::min_reduce_rows_occ(seg, occ_seg, stride, n, wpr)
            } else if self.swar {
                swar::min_reduce_rows(seg, stride, n)
            } else {
                min_reduce_rows(seg, stride, n)
            }
        };
        let (changed, workers) = match plan_rows(par, active, n, n) {
            None => (run(square, occ), 1),
            Some(rows_per) => {
                let count = n.div_ceil(rows_per);
                let slots = chunk_slots(&mut self.chunks, count, None);
                square
                    .par_chunks_mut(rows_per * n)
                    .zip(occ.par_chunks_mut(rows_per * wpr))
                    .zip(slots.par_iter_mut())
                    .for_each(|((seg, occ_seg), acc)| acc.changed = run(seg, occ_seg));
                (slots.iter().map(|c| c.changed).sum(), count)
            }
        };
        if counting {
            for row in 0..n {
                let base = row * n;
                let mut col = 0;
                while col + stride < n {
                    self.reads[base + col + stride] += 1;
                    col += stride << 1;
                }
            }
        }
        KernelReport {
            active,
            reads: active as u64,
            changed,
            evaluated: active,
            workers,
        }
    }

    /// Generations 4 and 8: column-0 cells still holding `∞` fall back to
    /// the saved `C(row)` from `D_N`.
    fn resolve(&mut self, counting: bool, par: Option<ParPolicy>) -> KernelReport {
        let n = self.n;
        let (square, dn) = self.hfield.d.split_at_mut(n * n);
        let (changed, workers) = match plan_rows(par, n, n, 1) {
            None => (resolve_rows(square, dn, n), 1),
            Some(rows_per) => {
                let count = n.div_ceil(rows_per);
                let slots = chunk_slots(&mut self.chunks, count, None);
                square
                    .par_chunks_mut(rows_per * n)
                    .zip(dn[..n].par_chunks(rows_per))
                    .zip(slots.par_iter_mut())
                    .for_each(|((seg, dns), acc)| acc.changed = resolve_rows(seg, dns, n));
                (slots.iter().map(|c| c.changed).sum(), count)
            }
        };
        if counting {
            for row in 0..n {
                self.reads[n * n + row] += 1;
            }
        }
        KernelReport::sequential(n, n as u64, changed).with_workers(workers)
    }

    /// Generation 6: keep `d = T(col)` only where `col` is a member of
    /// component `row` (`C(col) = row`, read from `D_N`) and its candidate
    /// differs from `row`; else `∞`.
    fn filter_members(&mut self, counting: bool, par: Option<ParPolicy>) -> KernelReport {
        let n = self.n;
        let wpr = self.hfield.words_per_row;
        let swar = self.swar;
        if swar {
            // One O(n) pass turns the n² membership tests into a packed
            // row mask the word-walk can zero-skip (built before the plane
            // split: D_N is read-only for this generation).
            swar::build_member_mask(&mut self.member_mask, &self.hfield.d[n * n..], n, wpr);
        }
        let mask = &self.member_mask;
        let occ = &mut self.occ;
        let (square, dn) = self.hfield.d.split_at_mut(n * n);
        let run = |seg: &mut [Word], occ_seg: &mut [AdjWord], base_row: usize, dn: &[Word]| {
            if swar {
                swar::filter_member_rows(seg, occ_seg, mask, base_row, n, wpr)
            } else {
                filter_member_rows(seg, dn, base_row, n)
            }
        };
        let (changed, workers) = match plan_rows(par, n * n, n, n) {
            None => (run(square, occ, 0, dn), 1),
            Some(rows_per) => {
                let count = n.div_ceil(rows_per);
                let slots = chunk_slots(&mut self.chunks, count, None);
                let dn = &dn[..];
                square
                    .par_chunks_mut(rows_per * n)
                    .zip(occ.par_chunks_mut(rows_per * wpr))
                    .zip(slots.par_iter_mut())
                    .enumerate()
                    .for_each(|(ci, ((seg, occ_seg), acc))| {
                        acc.changed = run(seg, occ_seg, ci * rows_per, dn);
                    });
                (slots.iter().map(|c| c.changed).sum(), count)
            }
        };
        if counting {
            for col in 0..n {
                // The layout caps n below u32::MAX.
                self.reads[n * n + col] += n as u32; // gca-lint: allow(truncating-cast)
            }
        }
        KernelReport {
            active: n * n,
            reads: (n * n) as u64,
            changed,
            evaluated: n * n,
            workers,
        }
    }

    /// Generation 9: spread `T(row)` (column 0) across each square row and
    /// save `T` into `D_N`. Column 0 itself is never written, so both fills
    /// read stable sources; the `D_N` save of row `k` reads only row `k`'s
    /// column 0, keeping the fused per-row form race-free under row
    /// partitioning.
    fn copy_and_save_t(&mut self, counting: bool, par: Option<ParPolicy>) -> KernelReport {
        let n = self.n;
        let (square, dn) = self.hfield.d.split_at_mut(n * n);
        let run: fn(&mut [Word], &mut [Word], usize) -> usize = if self.swar {
            swar::copy_save_rows
        } else {
            copy_save_rows
        };
        let (changed, workers) = match plan_rows(par, n * n, n, n) {
            None => (run(square, dn, n), 1),
            Some(rows_per) => {
                let count = n.div_ceil(rows_per);
                let slots = chunk_slots(&mut self.chunks, count, None);
                square
                    .par_chunks_mut(rows_per * n)
                    .zip(dn[..n].par_chunks_mut(rows_per))
                    .zip(slots.par_iter_mut())
                    .for_each(|((seg, dns), acc)| acc.changed = run(seg, dns, n));
                (slots.iter().map(|c| c.changed).sum(), count)
            }
        };
        if counting {
            for row in 0..n {
                // The layout caps n below u32::MAX.
                self.reads[row * n] += n as u32; // gca-lint: allow(truncating-cast)
            }
        }
        KernelReport {
            active: n * n,
            reads: (n * n) as u64,
            changed,
            evaluated: n * n,
            workers,
        }
    }

    /// Copies column 0 of the square field into the ping label buffer —
    /// the entry point of a fused pointer-jump sequence.
    pub fn gather_labels(&mut self) {
        let n = self.n;
        let d = &self.hfield.d;
        self.labels.clear();
        self.labels.extend((0..n).map(|j| d[j * n]));
    }

    /// Writes the ping label buffer back into column 0 of the square field —
    /// the exit point of a fused pointer-jump sequence. Committed
    /// sub-generations stay visible even when a later one failed, matching
    /// the generic engine (a failed step leaves the previous generation in
    /// place).
    pub fn scatter_labels(&mut self) {
        let n = self.n;
        for (j, &v) in self.labels.iter().enumerate() {
            self.hfield.d[j * n] = v;
        }
    }

    /// One pointer-jump sub-generation over the gathered labels:
    /// `C(i) ← C(C(i))`, computed into the pong buffer and swapped on
    /// success. The field is only consulted for the `d = n` corner (the
    /// data-dependent pointer then lands on `D_N[0]`, which this generation
    /// never writes) and for bounds reporting.
    pub fn jump_once(
        &mut self,
        ctx: &StepCtx,
        counting: bool,
        par: Option<ParPolicy>,
    ) -> Result<KernelReport, GcaError> {
        let n = self.n;
        let len = self.hfield.d.len();
        let dn0 = if len > n * n {
            self.hfield.d[n * n]
        } else {
            INFINITY
        };
        let plan = plan_rows(par, n, n, 1);
        let rows_per = plan.unwrap_or(n.max(1));
        let count = n.div_ceil(rows_per.max(1)).max(1);
        let hist_len = counting.then_some(n + 1);
        {
            let slots = chunk_slots(&mut self.chunks, count, hist_len);
            let labels = &self.labels;
            let out = &mut self.labels_next[..n];
            let run = |base: usize, seg: &mut [Word], acc: &mut ChunkReport| {
                let hist = if counting {
                    Some(acc.hist.as_mut_slice())
                } else {
                    None
                };
                match jump_rows(seg, base, labels, dn0, n, len, ctx.generation, hist) {
                    Ok(c) => acc.changed = c,
                    Err(e) => acc.error = Some(e),
                }
            };
            if plan.is_none() {
                run(0, out, &mut slots[0]);
            } else {
                out.par_chunks_mut(rows_per)
                    .zip(slots.par_iter_mut())
                    .enumerate()
                    .for_each(|(ci, (seg, acc))| run(ci * rows_per, seg, acc));
            }
        }
        // Chunks are ordered by row range, and each reports its first
        // error, so the first erroring chunk carries the globally smallest
        // erroring cell — the same error the sequential loop raises.
        for ci in 0..count {
            if let Some(e) = self.chunks[ci].error.take() {
                return Err(e);
            }
        }
        let changed: usize = self.chunks[..count].iter().map(|c| c.changed).sum();
        if counting {
            for ci in 0..count {
                for d in 0..=n {
                    let c = self.chunks[ci].hist[d];
                    if c > 0 {
                        self.reads[d * n] += c;
                    }
                }
            }
        }
        std::mem::swap(&mut self.labels, &mut self.labels_next);
        Ok(KernelReport::sequential(n, n as u64, changed).with_workers(if plan.is_some() {
            count
        } else {
            1
        }))
    }

    /// Generation 11: `C(i) ← min(C(i), T(C(i)))`, reading column 1 of row
    /// `C(i)` (which still holds the pre-jump `T`). Computed gather →
    /// per-row min into the pong buffer → scatter: the data-dependent
    /// target `d·n + 1` is never in column 0 (for `n = 1` it lands in
    /// `D_N`, also unwritten), so the whole data plane stays read-shared
    /// during the compute and the column-0 writes land only on success.
    fn final_min(
        &mut self,
        ctx: &StepCtx,
        counting: bool,
        par: Option<ParPolicy>,
    ) -> Result<KernelReport, GcaError> {
        let n = self.n;
        let len = self.hfield.d.len();
        self.gather_labels();
        let plan = plan_rows(par, n, n, 1);
        let rows_per = plan.unwrap_or(n.max(1));
        let count = n.div_ceil(rows_per.max(1)).max(1);
        let hist_len = counting.then_some(n + 1);
        {
            let slots = chunk_slots(&mut self.chunks, count, hist_len);
            let labels = &self.labels;
            let d = &self.hfield.d;
            let out = &mut self.labels_next[..n];
            let run = |base: usize, seg: &mut [Word], acc: &mut ChunkReport| {
                let hist = if counting {
                    Some(acc.hist.as_mut_slice())
                } else {
                    None
                };
                match final_min_rows(seg, base, labels, d, n, len, ctx.generation, hist) {
                    Ok(c) => acc.changed = c,
                    Err(e) => acc.error = Some(e),
                }
            };
            if plan.is_none() {
                run(0, out, &mut slots[0]);
            } else {
                out.par_chunks_mut(rows_per)
                    .zip(slots.par_iter_mut())
                    .enumerate()
                    .for_each(|(ci, (seg, acc))| run(ci * rows_per, seg, acc));
            }
        }
        // First error by chunk (row) order = globally smallest erroring
        // cell, like the sequential loop. On error nothing is scattered:
        // the field stays on its previous generation.
        for ci in 0..count {
            if let Some(e) = self.chunks[ci].error.take() {
                return Err(e);
            }
        }
        let changed: usize = self.chunks[..count].iter().map(|c| c.changed).sum();
        if counting {
            for ci in 0..count {
                for d in 0..=n {
                    let c = self.chunks[ci].hist[d];
                    if c > 0 {
                        self.reads[d * n + 1] += c;
                    }
                }
            }
        }
        for (j, &v) in self.labels_next[..n].iter().enumerate() {
            self.hfield.d[j * n] = v;
        }
        Ok(KernelReport::sequential(n, n as u64, changed).with_workers(if plan.is_some() {
            count
        } else {
            1
        }))
    }
}

impl KernelReport {
    fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }
}

// ---------------------------------------------------------------------------
// Row-range kernel bodies. Each operates on a contiguous slice of whole
// rows; the sequential path passes the full range, the parallel path
// disjoint `par_chunks_mut` partitions. Identical per-cell code on both
// paths is what makes the bit-identity guarantee hold by construction.
// Public as verification surface: these free functions ARE the scalar
// reference semantics `gca-analysis`'s lane verifier checks the SWAR
// bodies of `crate::swar` against, lane by lane (DESIGN.md §15).
// ---------------------------------------------------------------------------

/// `d ← base_row + local_row` over whole rows (generation 0).
pub fn init_rows(seg: &mut [Word], base_row: usize, n: usize) -> usize {
    let mut changed = 0;
    for (r, row) in seg.chunks_mut(n).enumerate() {
        let v = (base_row + r) as Word;
        for cell in row {
            changed += usize::from(*cell != v);
            *cell = v;
        }
    }
    changed
}

/// Fills whole rows with the gathered column-0 vector (generations 1, 5).
pub fn broadcast_rows(seg: &mut [Word], labels: &[Word]) -> usize {
    let mut changed = 0;
    for row in seg.chunks_mut(labels.len().max(1)) {
        for (cell, &v) in row.iter_mut().zip(labels) {
            changed += usize::from(*cell != v);
            *cell = v;
        }
    }
    changed
}

/// Generation 2 over whole rows: reads are the row's `D_N` entry and the
/// immutable adjacency plane — both disjoint from the square writes.
pub fn filter_neighbor_rows(
    seg: &mut [Word],
    a: &[AdjWord],
    dn: &[Word],
    base_row: usize,
    n: usize,
    wpr: usize,
) -> usize {
    let mut changed = 0;
    for (r, row) in seg.chunks_mut(n).enumerate() {
        let row_idx = base_row + r;
        let c_row = dn[row_idx];
        for (col, cell) in row.iter_mut().enumerate() {
            if !(a_bit(a, wpr, row_idx, col) && *cell != c_row) {
                changed += usize::from(*cell != INFINITY);
                *cell = INFINITY;
            }
        }
    }
    changed
}

/// Generations 3 and 7 over whole rows: strictly row-local reads/writes.
pub fn min_reduce_rows(seg: &mut [Word], stride: usize, n: usize) -> usize {
    let mut changed = 0;
    for row in seg.chunks_mut(n) {
        let mut col = 0;
        while col + stride < n {
            let neigh = row[col + stride];
            if neigh < row[col] {
                row[col] = neigh;
                changed += 1;
            }
            col += stride << 1;
        }
    }
    changed
}

/// Generations 4 and 8 over whole rows: each row writes only its own
/// column-0 cell and reads only its own `D_N` entry.
pub fn resolve_rows(seg: &mut [Word], dn: &[Word], n: usize) -> usize {
    let mut changed = 0;
    for (r, &saved) in dn.iter().enumerate() {
        let cell = &mut seg[r * n];
        if *cell == INFINITY {
            changed += usize::from(saved != INFINITY);
            *cell = saved;
        }
    }
    changed
}

/// Generation 6 over whole rows: reads only the (unwritten) `D_N` plane.
pub fn filter_member_rows(seg: &mut [Word], dn: &[Word], base_row: usize, n: usize) -> usize {
    let mut changed = 0;
    for (r, row) in seg.chunks_mut(n).enumerate() {
        let j = (base_row + r) as Word;
        for (col, cell) in row.iter_mut().enumerate() {
            if !(dn[col] == j && *cell != j) {
                changed += usize::from(*cell != INFINITY);
                *cell = INFINITY;
            }
        }
    }
    changed
}

/// Generation 9, fused per row: save `T(row)` (the row's column 0, never
/// written) into the row's `D_N` slot, then fill columns `1..` with it.
pub fn copy_save_rows(seg: &mut [Word], dn: &mut [Word], n: usize) -> usize {
    let mut changed = 0;
    for (r, row) in seg.chunks_mut(n).enumerate() {
        let t = row[0];
        changed += usize::from(dn[r] != t);
        dn[r] = t;
        for cell in &mut row[1..] {
            changed += usize::from(*cell != t);
            *cell = t;
        }
    }
    changed
}

/// One pointer-jump sub-generation over a segment of the pong buffer.
/// `hist` (when counting) is the compact per-label histogram: slot `d`
/// accumulates the reads the sequential path books at field index `d·n`.
#[allow(clippy::too_many_arguments)]
pub fn jump_rows(
    seg: &mut [Word],
    base: usize,
    labels: &[Word],
    dn0: Word,
    n: usize,
    len: usize,
    generation: u64,
    mut hist: Option<&mut [u32]>,
) -> Result<usize, GcaError> {
    let mut changed = 0;
    for (k, slot) in seg.iter_mut().enumerate() {
        let i = base + k;
        let d = labels[i] as usize;
        if d.checked_mul(n).filter(|&t| t < len).is_none() {
            return Err(GcaError::PointerOutOfRange {
                cell: i * n,
                target: d.saturating_mul(n),
                len,
                generation,
            });
        }
        // target = d·n is column 0 of row d when d < n; the only other
        // in-range multiple of n is n² = D_N[0].
        let v = if d < n { labels[d] } else { dn0 };
        if let Some(h) = hist.as_deref_mut() {
            h[d] += 1;
        }
        changed += usize::from(v != labels[i]);
        *slot = v;
    }
    Ok(changed)
}

/// Generation 11 over a segment of the pong buffer: `min(C(i), T(C(i)))`
/// with `T` read from the shared data plane (column 1, never written).
/// `hist` slot `d` accumulates the reads the sequential path books at
/// field index `d·n + 1`.
#[allow(clippy::too_many_arguments)]
pub fn final_min_rows(
    seg: &mut [Word],
    base: usize,
    labels: &[Word],
    d_plane: &[Word],
    n: usize,
    len: usize,
    generation: u64,
    mut hist: Option<&mut [u32]>,
) -> Result<usize, GcaError> {
    let mut changed = 0;
    for (k, slot) in seg.iter_mut().enumerate() {
        let row = base + k;
        let cur = labels[row];
        let d = cur as usize;
        let target = d
            .checked_mul(n)
            .and_then(|t| t.checked_add(1))
            .filter(|&t| t < len)
            .ok_or_else(|| GcaError::PointerOutOfRange {
                cell: row * n,
                target: d.saturating_mul(n).saturating_add(1),
                len,
                generation,
            })?;
        let t = d_plane[target];
        if let Some(h) = hist.as_deref_mut() {
            h[d] += 1;
        }
        if t < cur {
            *slot = t;
            changed += 1;
        } else {
            *slot = cur;
        }
    }
    Ok(changed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_honors_threshold_and_explicit_workers() {
        let explicit = ParPolicy {
            workers: 3,
            threshold: 0,
            explicit: true,
        };
        // Explicit workers split even tiny fields (8 rows / 3 → 3 per chunk).
        assert_eq!(plan_rows(Some(explicit), 64, 8, 8), Some(3));
        // Below the threshold: sequential.
        let gated = ParPolicy {
            threshold: 1 << 20,
            ..explicit
        };
        assert_eq!(plan_rows(Some(gated), 64, 8, 8), None);
        // No policy at all: sequential.
        assert_eq!(plan_rows(None, 1 << 30, 1 << 10, 1 << 10), None);
        // One row can never split.
        assert_eq!(plan_rows(Some(explicit), 64, 1, 64), None);
    }

    #[test]
    fn plan_clamps_auto_chunks_to_amortized_size() {
        let auto = ParPolicy {
            workers: 8,
            threshold: 0,
            explicit: false,
        };
        // 64 rows of width 64 = 4096 cells: one 8 KiB chunk minimum means
        // no split is worth it.
        assert_eq!(plan_rows(Some(auto), 4096, 64, 64), None);
        // 1024 rows of width 1024: 8 chunks of 128 rows each.
        assert_eq!(plan_rows(Some(auto), 1 << 20, 1024, 1024), Some(128));
    }

    #[test]
    fn swar_kernels_match_scalar_on_multiword_rows() {
        // n = 70 exercises wpr = 2 adjacency words per row plus a zero
        // tail — geometry the n ≤ 64 property corpus cannot reach.
        let n = 70usize;
        let g = gca_graphs::generators::gnp(n, 0.13, 99);
        let layout = crate::Layout::new(n).unwrap();
        let field = layout.build_field(&g).unwrap();

        let mut scalar = FusedExecutor::new(n);
        let mut swar_exec = FusedExecutor::new(n);
        swar_exec.set_swar(true);
        scalar.load(&field);
        swar_exec.load(&field);

        for (generation, &(phase, sub)) in [
            (Gen::Init, 0u32),
            (Gen::BroadcastC, 0),
            (Gen::FilterNeighbors, 0),
            (Gen::MinReduce, 0),
            (Gen::MinReduce, 1),
            (Gen::MinReduce, 3),
            (Gen::MinReduce, 6),
            (Gen::ResolveIsolated, 0),
            (Gen::BroadcastT, 0),
            (Gen::FilterMembers, 0),
            (Gen::MinReduceMembers, 0),
            (Gen::ResolveMembers, 0),
            (Gen::CopyAndSaveT, 0),
            (Gen::PointerJump, 0),
            (Gen::FinalMin, 0),
        ]
        .iter()
        .enumerate()
        {
            let ctx = StepCtx {
                generation: generation as u64,
                phase: phase.number(),
                subgeneration: sub,
            };
            let a = scalar.step(&ctx, true, None).unwrap();
            let b = swar_exec.step(&ctx, true, None).unwrap();
            assert_eq!(scalar.hfield.d, swar_exec.hfield.d, "{phase:?}/{sub} plane");
            assert_eq!(a.active, b.active, "{phase:?}/{sub} active");
            assert_eq!(a.reads, b.reads, "{phase:?}/{sub} reads");
            assert_eq!(a.changed, b.changed, "{phase:?}/{sub} changed");
            assert_eq!(scalar.reads(), swar_exec.reads(), "{phase:?}/{sub} hist");
        }
    }

    #[test]
    fn remainder_partitions_cover_every_row() {
        // workers = 3 over 8 rows → chunks of 3, 3, 2 rows.
        let n = 8;
        let mut exec = FusedExecutor::new(n);
        for (i, v) in exec.hfield.d.iter_mut().enumerate() {
            *v = i as Word;
        }
        let before = exec.hfield.d.clone();
        let par = Some(ParPolicy {
            workers: 3,
            threshold: 0,
            explicit: true,
        });
        let rep = exec.init(par);
        assert_eq!(rep.workers, 3);
        for (i, &v) in exec.hfield.d.iter().enumerate() {
            assert_eq!(v as usize, i / n, "row value at {i}");
        }
        assert_eq!(
            rep.changed,
            before
                .iter()
                .enumerate()
                .filter(|&(i, &v)| v as usize != i / n)
                .count()
        );
    }
}
