//! Fused flat-array kernels for the Hirschberg rule ([`ExecPath::Fused`]).
//!
//! The generic engine path evaluates every generation through per-cell
//! [`gca_engine::GcaRule`] dispatch: each cell re-derives its row/column,
//! re-matches the phase enum, resolves an [`gca_engine::Access`], and the
//! engine copies every untouched cell from the previous to the next buffer.
//! For the iterated phases (the two `⌈log₂ n⌉` min-reduction trees and
//! pointer jumping) that copy alone is `O(n²)` work per sub-generation for
//! `O(n)` useful updates.
//!
//! This module implements each of Figure 2's generations as a specialized
//! kernel over the flat [`HCell`] buffer instead:
//!
//! * **broadcasts** (generations 1, 5, 9) gather the column-0 vector into a
//!   reusable scratch once, then fill rows with strided writes;
//! * **tree reductions** (generations 3, 7) update the current buffer in
//!   place — within one sub-generation the written columns
//!   (`col ≡ 0 (mod 2^{s+1})`) and the read columns (`col + 2^s`) are
//!   disjoint, so synchrony holds without any buffer copy, and the `log n`
//!   sub-generations fuse into consecutive passes over the same buffer;
//! * **pointer jumping** (generation 10) chases pointers through two
//!   ping-pong label vectors of length `n` (`FusedExecutor::gather_labels`
//!   / `FusedExecutor::scatter_labels`), touching the `n²`-cell field not
//!   at all between sub-generations — the existing
//!   [`crate::Convergence::Detect`] fixed point composes unchanged.
//!
//! **Metrics contract.** Every kernel produces the exact counters the
//! generic path produces: active cells per Table 1, total reads, changed
//! cells (the convergence signal), and — when counting — the per-target
//! read histogram in `FusedExecutor::reads`. `tests/property_based.rs`
//! asserts labelings *and* `Counts` metrics are bit-identical between the
//! two paths; `Instrumentation::Trace` needs per-cell access lists only the
//! generic evaluator materializes, so [`crate::Machine`] falls back to it.

use crate::{Gen, HCell};
use gca_engine::{CellField, GcaError, StepCtx, Word, INFINITY};

/// Which implementation executes the state machine's generations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ExecPath {
    /// The engine's generic per-cell `access`/`evolve` dispatch — the
    /// reference semantics, supporting every [`gca_engine::Instrumentation`]
    /// level and [`gca_engine::Backend`].
    #[default]
    Generic,
    /// The fused flat-array kernels of [`crate::kernels`]. Bit-identical
    /// labelings and `Counts` metrics; steps with
    /// [`gca_engine::Instrumentation::Trace`] fall back to the generic path
    /// (access traces require the per-cell evaluator).
    Fused,
}

/// Counters of one fused generation — the kernel-side mirror of
/// [`gca_engine::StepReport`]'s counter fields.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct KernelReport {
    /// Cells that performed a calculation (Table 1's activity column).
    pub active: usize,
    /// Total global reads issued.
    pub reads: u64,
    /// Cells whose new state differs from their previous state.
    pub changed: usize,
    /// Cells the kernel visited.
    pub evaluated: usize,
}

/// Reusable scratch and per-generation kernels for one problem size `n`.
///
/// Owned by [`crate::Machine`]; all buffers are allocated once and reused,
/// so fused steady-state stepping performs no allocation (under
/// `Instrumentation::Off`) beyond what the metrics log itself appends.
#[derive(Clone, Debug, Default)]
pub(crate) struct FusedExecutor {
    n: usize,
    /// Gathered column-0 (`C`/`T`) values — the broadcast source and the
    /// "ping" label buffer of pointer jumping.
    labels: Vec<Word>,
    /// The "pong" label buffer of pointer jumping.
    labels_next: Vec<Word>,
    /// Per-target read counts of the last executed generation (the Table-1
    /// congestion histogram), filled when counting.
    reads: Vec<u32>,
}

impl FusedExecutor {
    /// An executor for problem size `n`.
    pub fn new(n: usize) -> Self {
        FusedExecutor {
            n,
            labels: Vec::with_capacity(n),
            labels_next: vec![0; n],
            reads: Vec::new(),
        }
    }

    /// Per-target read counts of the last kernel executed with
    /// `counting = true` (empty otherwise).
    pub fn reads(&self) -> &[u32] {
        &self.reads
    }

    /// Zero-fills the read-count scratch for a directly driven kernel call
    /// ([`FusedExecutor::jump_once`]); [`FusedExecutor::step`] does this
    /// itself.
    pub fn reset_reads(&mut self, len: usize) {
        self.reads.clear();
        self.reads.resize(len, 0);
    }

    /// Executes one `(generation, sub-generation)` over the current buffer
    /// of `field`, dispatching to the matching kernel. On error the field is
    /// left on its previous generation, like [`gca_engine::Engine::step`].
    pub fn step(
        &mut self,
        field: &mut CellField<HCell>,
        ctx: &StepCtx,
        counting: bool,
    ) -> Result<KernelReport, GcaError> {
        let gen = Gen::from_number(ctx.phase)
            .unwrap_or_else(|| panic!("invalid Hirschberg phase {}", ctx.phase));
        let n = self.n;
        self.reads.clear();
        if counting {
            self.reads.resize(field.len(), 0);
        }
        if n == 0 {
            return Ok(KernelReport::default());
        }
        match gen {
            Gen::Init => Ok(init(field.states_mut(), n)),
            Gen::BroadcastC => Ok(self.broadcast(field.states_mut(), counting, true)),
            Gen::FilterNeighbors => Ok(self.filter_neighbors(field.states_mut(), counting)),
            Gen::MinReduce | Gen::MinReduceMembers => {
                Ok(self.min_reduce(field.states_mut(), ctx.subgeneration, counting))
            }
            Gen::ResolveIsolated | Gen::ResolveMembers => {
                Ok(self.resolve(field.states_mut(), counting))
            }
            Gen::BroadcastT => Ok(self.broadcast(field.states_mut(), counting, false)),
            Gen::FilterMembers => Ok(self.filter_members(field.states_mut(), counting)),
            Gen::CopyAndSaveT => Ok(self.copy_and_save_t(field.states_mut(), counting)),
            Gen::PointerJump => {
                self.gather_labels(field);
                let rep = self.jump_once(field.states(), ctx, counting)?;
                self.scatter_labels(field);
                Ok(rep)
            }
            Gen::FinalMin => self.final_min(field.states_mut(), ctx, counting),
        }
    }

    /// Generations 1 and 5: fill every row with the gathered column-0
    /// vector. Generation 1 (`include_dn`) also overwrites `D_N` (saving
    /// `C`); generation 5 leaves `D_N` on its saved copy.
    fn broadcast(&mut self, cells: &mut [HCell], counting: bool, include_dn: bool) -> KernelReport {
        let n = self.n;
        self.labels.clear();
        self.labels.extend((0..n).map(|j| cells[j * n].d));
        let rows = if include_dn { n + 1 } else { n };
        let mut changed = 0;
        for row_cells in cells[..rows * n].chunks_mut(n) {
            for (col, cell) in row_cells.iter_mut().enumerate() {
                let v = self.labels[col];
                changed += usize::from(cell.d != v);
                cell.d = v;
            }
        }
        if counting {
            for col in 0..n {
                // rows ≤ n + 1 and the layout caps n below u32::MAX.
                self.reads[col * n] += rows as u32; // gca-lint: allow(truncating-cast)
            }
        }
        let touched = rows * n;
        KernelReport {
            active: touched,
            reads: touched as u64,
            changed,
            evaluated: touched,
        }
    }

    /// Generation 2: keep `d = C(col)` only where an edge connects `row` to
    /// `col` and the endpoints are in different components (`d ≠ C(row)`,
    /// with `C(row)` read from `D_N`); else `∞`.
    fn filter_neighbors(&mut self, cells: &mut [HCell], counting: bool) -> KernelReport {
        let n = self.n;
        let (square, dn) = cells.split_at_mut(n * n);
        let mut changed = 0;
        for (row, row_cells) in square.chunks_mut(n).enumerate() {
            let c_row = dn[row].d;
            for cell in row_cells.iter_mut() {
                if !(cell.a && cell.d != c_row) {
                    changed += usize::from(cell.d != INFINITY);
                    cell.d = INFINITY;
                }
            }
        }
        if counting {
            for row in 0..n {
                // The layout caps n below u32::MAX.
                self.reads[n * n + row] += n as u32; // gca-lint: allow(truncating-cast)
            }
        }
        KernelReport {
            active: n * n,
            reads: (n * n) as u64,
            changed,
            evaluated: n * n,
        }
    }

    /// Generations 3 and 7, one sub-generation: every participating cell
    /// (`col ≡ 0 (mod 2^{s+1})`, `col + 2^s < n`) folds in the cell `2^s` to
    /// its right. In place: written and read columns are disjoint.
    fn min_reduce(&mut self, cells: &mut [HCell], s: u32, counting: bool) -> KernelReport {
        let n = self.n;
        let stride = 1usize << s;
        let mut active = 0;
        let mut changed = 0;
        for row in 0..n {
            let base = row * n;
            let mut col = 0;
            while col + stride < n {
                let i = base + col;
                let neigh = cells[i + stride].d;
                if counting {
                    self.reads[i + stride] += 1;
                }
                if neigh < cells[i].d {
                    cells[i].d = neigh;
                    changed += 1;
                }
                active += 1;
                col += stride << 1;
            }
        }
        KernelReport {
            active,
            reads: active as u64,
            changed,
            evaluated: active,
        }
    }

    /// Generations 4 and 8: column-0 cells still holding `∞` fall back to
    /// the saved `C(row)` from `D_N`.
    fn resolve(&mut self, cells: &mut [HCell], counting: bool) -> KernelReport {
        let n = self.n;
        let (square, dn) = cells.split_at_mut(n * n);
        let mut changed = 0;
        for row in 0..n {
            let saved = dn[row].d;
            if counting {
                self.reads[n * n + row] += 1;
            }
            let cell = &mut square[row * n];
            if cell.d == INFINITY {
                changed += usize::from(saved != INFINITY);
                cell.d = saved;
            }
        }
        KernelReport {
            active: n,
            reads: n as u64,
            changed,
            evaluated: n,
        }
    }

    /// Generation 6: keep `d = T(col)` only where `col` is a member of
    /// component `row` (`C(col) = row`, read from `D_N`) and its candidate
    /// differs from `row`; else `∞`.
    fn filter_members(&mut self, cells: &mut [HCell], counting: bool) -> KernelReport {
        let n = self.n;
        let (square, dn) = cells.split_at_mut(n * n);
        let mut changed = 0;
        for (row, row_cells) in square.chunks_mut(n).enumerate() {
            let j = row as Word;
            for (col, cell) in row_cells.iter_mut().enumerate() {
                if !(dn[col].d == j && cell.d != j) {
                    changed += usize::from(cell.d != INFINITY);
                    cell.d = INFINITY;
                }
            }
        }
        if counting {
            for col in 0..n {
                // The layout caps n below u32::MAX.
                self.reads[n * n + col] += n as u32; // gca-lint: allow(truncating-cast)
            }
        }
        KernelReport {
            active: n * n,
            reads: (n * n) as u64,
            changed,
            evaluated: n * n,
        }
    }

    /// Generation 9: spread `T(row)` (column 0) across each square row and
    /// save `T` into `D_N`. Column 0 itself is never written, so both fills
    /// read stable sources.
    fn copy_and_save_t(&mut self, cells: &mut [HCell], counting: bool) -> KernelReport {
        let n = self.n;
        let (square, dn) = cells.split_at_mut(n * n);
        let mut changed = 0;
        for (col, cell) in dn.iter_mut().enumerate() {
            let t = square[col * n].d;
            changed += usize::from(cell.d != t);
            cell.d = t;
        }
        for row_cells in square.chunks_mut(n) {
            let t = row_cells[0].d;
            for cell in &mut row_cells[1..] {
                changed += usize::from(cell.d != t);
                cell.d = t;
            }
        }
        if counting {
            for row in 0..n {
                // The layout caps n below u32::MAX.
                self.reads[row * n] += n as u32; // gca-lint: allow(truncating-cast)
            }
        }
        KernelReport {
            active: n * n,
            reads: (n * n) as u64,
            changed,
            evaluated: n * n,
        }
    }

    /// Copies column 0 of the square field into the ping label buffer —
    /// the entry point of a fused pointer-jump sequence.
    pub fn gather_labels(&mut self, field: &CellField<HCell>) {
        let n = self.n;
        self.labels.clear();
        self.labels
            .extend((0..n).map(|j| field.get(j * n).d));
    }

    /// Writes the ping label buffer back into column 0 of the square field —
    /// the exit point of a fused pointer-jump sequence. Committed
    /// sub-generations stay visible even when a later one failed, matching
    /// the generic engine (a failed step leaves the previous generation in
    /// place).
    pub fn scatter_labels(&self, field: &mut CellField<HCell>) {
        let n = self.n;
        let cells = field.states_mut();
        for (j, &v) in self.labels.iter().enumerate() {
            cells[j * n].d = v;
        }
    }

    /// One pointer-jump sub-generation over the gathered labels:
    /// `C(i) ← C(C(i))`, computed into the pong buffer and swapped on
    /// success. `cells` is only consulted for the `d = n` corner (the
    /// data-dependent pointer then lands on `D_N[0]`, which this generation
    /// never writes) and for bounds reporting.
    pub fn jump_once(
        &mut self,
        cells: &[HCell],
        ctx: &StepCtx,
        counting: bool,
    ) -> Result<KernelReport, GcaError> {
        let n = self.n;
        let len = cells.len();
        let mut changed = 0;
        for (i, slot) in self.labels_next.iter_mut().enumerate() {
            let d = self.labels[i] as usize;
            let target = d.checked_mul(n).filter(|&t| t < len).ok_or_else(|| {
                GcaError::PointerOutOfRange {
                    cell: i * n,
                    target: d.saturating_mul(n),
                    len,
                    generation: ctx.generation,
                }
            })?;
            // target = d·n is column 0 of row d when d < n; the only other
            // in-range multiple of n is n² = D_N[0].
            let v = if d < n { self.labels[d] } else { cells[target].d };
            if counting {
                self.reads[target] += 1;
            }
            changed += usize::from(v != self.labels[i]);
            *slot = v;
        }
        std::mem::swap(&mut self.labels, &mut self.labels_next);
        Ok(KernelReport {
            active: n,
            reads: n as u64,
            changed,
            evaluated: n,
        })
    }

    /// Generation 11: `C(i) ← min(C(i), T(C(i)))`, reading column 1 of row
    /// `C(i)` (which still holds the pre-jump `T`). In place: only column 0
    /// is written and the data-dependent target `d·n + 1` is never in
    /// column 0 (for `n = 1` it lands in `D_N`, also unwritten).
    fn final_min(
        &mut self,
        cells: &mut [HCell],
        ctx: &StepCtx,
        counting: bool,
    ) -> Result<KernelReport, GcaError> {
        let n = self.n;
        let len = cells.len();
        let mut changed = 0;
        for row in 0..n {
            let i = row * n;
            let d = cells[i].d as usize;
            let target = d
                .checked_mul(n)
                .and_then(|t| t.checked_add(1))
                .filter(|&t| t < len)
                .ok_or_else(|| GcaError::PointerOutOfRange {
                    cell: i,
                    target: d.saturating_mul(n).saturating_add(1),
                    len,
                    generation: ctx.generation,
                })?;
            let t = cells[target].d;
            if counting {
                self.reads[target] += 1;
            }
            if t < cells[i].d {
                cells[i].d = t;
                changed += 1;
            }
        }
        Ok(KernelReport {
            active: n,
            reads: n as u64,
            changed,
            evaluated: n,
        })
    }
}

/// Generation 0: `d ← row(index)` everywhere, no reads.
fn init(cells: &mut [HCell], n: usize) -> KernelReport {
    let mut changed = 0;
    for (row, row_cells) in cells.chunks_mut(n).enumerate() {
        let d = row as Word;
        for cell in row_cells {
            changed += usize::from(cell.d != d);
            cell.d = d;
        }
    }
    KernelReport {
        active: cells.len(),
        reads: 0,
        changed,
        evaluated: cells.len(),
    }
}
