//! Snapshot/restore and rollback roundtrip properties across all four
//! execution paths — the state-capture half of the recovery stack.
//!
//! The recovery supervisor's correctness rests on one claim: a machine
//! restored from an iteration-boundary checkpoint and re-run is
//! **bit-identical** — labels, field states and `Counts` metrics — to a
//! machine that never stopped. These properties pin that claim on every
//! execution path, including the paths with hidden state beyond the
//! field: the fused SoA mirror (`soa_valid` must drop on restore so the
//! kernels reload it) and the SWAR occupancy plane (rebuilt inside the
//! filter → min-reduce window after any reload).

use gca_engine::snapshot::FieldSnapshot;
use gca_engine::{Engine, Instrumentation};
use gca_graphs::connectivity::union_find_components_dense;
use gca_graphs::AdjacencyMatrix;
use gca_hirschberg::complexity::ceil_log2;
use gca_hirschberg::{ExecPath, HCell, Machine};
use proptest::prelude::*;
use serde::{Deserialize, Serialize};

fn arb_graph(min_n: usize, max_n: usize) -> impl Strategy<Value = AdjacencyMatrix> {
    (min_n..=max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..60).prop_map(move |pairs| {
            let mut g = AdjacencyMatrix::new(n);
            for (u, v) in pairs {
                if u != v {
                    g.add_edge(u, v).unwrap();
                }
            }
            g
        })
    })
}

const PATHS: [ExecPath; 4] = [
    ExecPath::Generic,
    ExecPath::Fused,
    ExecPath::FusedParallel(gca_hirschberg::FusedParallel {
        workers: 3,
        threshold: Some(0),
    }),
    ExecPath::FusedSwar(gca_hirschberg::FusedSwar { parallel: None }),
];

fn counting_machine(g: &AdjacencyMatrix, exec: ExecPath) -> Machine {
    Machine::with_engine(g, Engine::sequential().with_instrumentation(Instrumentation::Counts))
        .unwrap()
        .with_exec(exec)
}

/// Runs `iters` full iterations (after init) and returns the machine.
fn run_to(g: &AdjacencyMatrix, exec: ExecPath, iters: u32) -> Machine {
    let mut m = counting_machine(g, exec);
    m.init().unwrap();
    for _ in 0..iters {
        m.run_iteration().unwrap();
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Restore into a *fresh* machine continues to the reference
    /// labeling on every path: the snapshot alone (plus the generation
    /// counter) is a complete consistent cut. The fresh machine's SoA
    /// mirror and occupancy plane start stale by construction, so a
    /// passing run proves `restore` invalidates and the kernels rebuild
    /// them.
    #[test]
    fn restore_into_fresh_machine_resumes(g in arb_graph(2, 14), cut in 0u32..4) {
        let n = g.n();
        let total = ceil_log2(n);
        let cut = cut.min(total.saturating_sub(1));
        let expected = union_find_components_dense(&g);
        for exec in PATHS {
            let donor = run_to(&g, exec, cut);
            let snapshot = donor.snapshot();

            let mut resumed = counting_machine(&g, exec);
            resumed.restore(&snapshot).unwrap();
            for _ in cut..total {
                resumed.run_iteration().unwrap();
            }
            prop_assert_eq!(
                resumed.labels().unwrap().as_slice(),
                expected.as_slice(),
                "path {:?}, cut {}", exec, cut
            );
        }
    }

    /// `rollback_to` rewinds field, generation counter *and* metrics:
    /// running forward again yields labels, field states and a metrics
    /// log bit-identical to a machine that never rolled back.
    #[test]
    fn rollback_reexecution_is_bit_identical(g in arb_graph(2, 14), cut in 1u32..4) {
        let n = g.n();
        let total = ceil_log2(n).max(1);
        let cut = cut.min(total);
        for exec in PATHS {
            let reference = run_to(&g, exec, total);

            let mut m = counting_machine(&g, exec);
            m.init().unwrap();
            for _ in 0..cut {
                m.run_iteration().unwrap();
            }
            let generation = m.generations();
            let snapshot = m.snapshot();
            // Disturb the future: run to completion, then roll back.
            for _ in cut..total {
                m.run_iteration().unwrap();
            }
            m.rollback_to(generation, &snapshot).unwrap();
            prop_assert_eq!(m.generations(), generation);
            for _ in cut..total {
                m.run_iteration().unwrap();
            }

            prop_assert_eq!(
                m.labels().unwrap().as_slice(),
                reference.labels().unwrap().as_slice(),
                "labels diverged on {:?}", exec
            );
            prop_assert_eq!(
                m.field().states(),
                reference.field().states(),
                "field states diverged on {:?}", exec
            );
            prop_assert_eq!(
                m.metrics().entries(),
                reference.metrics().entries(),
                "metrics log diverged on {:?}", exec
            );
        }
    }

    /// The snapshot survives a JSON roundtrip bit-exactly (the artifact
    /// form a checkpoint would take on disk), and the deserialized copy
    /// resumes to the same labeling.
    #[test]
    fn snapshot_json_roundtrip_resumes(g in arb_graph(2, 12)) {
        let n = g.n();
        let total = ceil_log2(n);
        let expected = union_find_components_dense(&g);
        let donor = run_to(&g, ExecPath::fused_swar(), 1.min(total));
        let snapshot = donor.snapshot();

        let json = snapshot.to_json_value();
        let back = FieldSnapshot::<HCell>::from_json_value(&json).unwrap();
        prop_assert_eq!(&back, &snapshot);

        let mut resumed = counting_machine(&g, ExecPath::fused_swar());
        resumed.restore(&back).unwrap();
        for _ in 1.min(total)..total {
            resumed.run_iteration().unwrap();
        }
        prop_assert_eq!(resumed.labels().unwrap().as_slice(), expected.as_slice());
    }
}
