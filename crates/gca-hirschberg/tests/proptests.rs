//! Property-based tests for the Hirschberg GCA machines: generation-level
//! invariants of the state machine that the integration suite (which treats
//! the machines as black boxes) cannot see.

use gca_engine::{Engine, Instrumentation, INFINITY};
use gca_graphs::connectivity::union_find_components_dense;
use gca_graphs::AdjacencyMatrix;
use gca_hirschberg::variants::{low_congestion, n_cells};
use gca_hirschberg::{
    complexity, iteration_schedule, ExecPath, Gen, HirschbergGca, Machine,
};
use proptest::prelude::*;

fn arb_graph(min_n: usize, max_n: usize) -> impl Strategy<Value = AdjacencyMatrix> {
    (min_n..=max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..50).prop_map(move |pairs| {
            let mut g = AdjacencyMatrix::new(n);
            for (u, v) in pairs {
                if u != v {
                    g.add_edge(u, v).unwrap();
                }
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Mid-run invariants of one iteration: after generation 1 every row
    /// holds C and D_N = C; after generation 4 column 0 holds the step-2 T
    /// with no ∞ left; after generation 9, D_N holds T.
    #[test]
    fn generation_postconditions(g in arb_graph(2, 14)) {
        let n = g.n();
        let mut m = Machine::new(&g).unwrap();
        m.init().unwrap();

        // Walk one iteration by hand, checking the documented
        // postconditions at the milestones.
        let c_before: Vec<u32> = m.labels_raw();
        for (gen, sub) in iteration_schedule(n) {
            m.step(gen, sub).unwrap();
            match (gen, sub) {
                (Gen::BroadcastC, _) => {
                    // Every row of D (incl. D_N) equals the old C.
                    for j in 0..=n {
                        for (i, &c) in c_before.iter().enumerate() {
                            prop_assert_eq!(m.field().at(j, i).d, c);
                        }
                    }
                }
                (Gen::ResolveIsolated, _) => {
                    // Column 0 = step-2 T: finite node numbers only.
                    for j in 0..n {
                        let t = m.field().at(j, 0).d;
                        prop_assert!(t != INFINITY && (t as usize) < n);
                    }
                }
                (Gen::CopyAndSaveT, _) => {
                    // D_N holds T = column 0's current values.
                    let col0: Vec<u32> = (0..n).map(|j| m.field().at(j, 0).d).collect();
                    let dn = m.layout().extract_dn(m.field());
                    prop_assert_eq!(dn, col0);
                }
                _ => {}
            }
        }
    }

    /// Intermediate labels always coarsen monotonically: after every outer
    /// iteration, nodes in the same class stay together, and the component
    /// count never increases.
    #[test]
    fn iterations_coarsen_monotonically(g in arb_graph(2, 14)) {
        let n = g.n();
        let mut m = Machine::new(&g).unwrap();
        m.init().unwrap();
        let mut previous = m.labels().unwrap();
        for _ in 0..complexity::ceil_log2(n) {
            m.run_iteration().unwrap();
            let current = m.labels().unwrap();
            prop_assert!(current.component_count() <= previous.component_count());
            // Once merged, never separated.
            for u in 0..n {
                for v in (u + 1)..n {
                    if previous.label(u) == previous.label(v) {
                        prop_assert_eq!(current.label(u), current.label(v));
                    }
                }
            }
            previous = current;
        }
        // Final result is the true component structure.
        let expected = union_find_components_dense(&g);
        prop_assert_eq!(previous.as_slice(), expected.as_slice());
    }

    /// The paper's convergence argument: every iteration, the *non-final*
    /// components (proper subsets of a true component — exactly those that
    /// can still hook) merge in clusters of at least two, so their number
    /// at least halves.
    #[test]
    fn component_halving(g in arb_graph(2, 16)) {
        let n = g.n();
        let final_labels = union_find_components_dense(&g);
        let final_count = final_labels.component_count();

        // Number of current components that are proper subsets of their
        // true component.
        let non_final = |labels: &gca_graphs::Labeling| {
            labels
                .components()
                .into_iter()
                .filter(|(_, members)| {
                    let true_size = final_labels
                        .components()
                        .into_iter()
                        .find(|(fl, _)| *fl == final_labels.label(members[0]))
                        .map(|(_, m)| m.len())
                        .unwrap();
                    members.len() < true_size
                })
                .count()
        };

        let mut m = Machine::new(&g).unwrap();
        m.init().unwrap();
        let mut prev_non_final = non_final(&m.labels().unwrap());
        for _ in 0..complexity::ceil_log2(n) {
            m.run_iteration().unwrap();
            let labels = m.labels().unwrap();
            let nf = non_final(&labels);
            prop_assert!(
                nf <= prev_non_final / 2,
                "non-final components {} did not halve from {}",
                nf,
                prev_non_final
            );
            prop_assert!(labels.component_count() >= final_count);
            prev_non_final = nf;
        }
        prop_assert_eq!(m.labels().unwrap().component_count(), final_count);
    }

    /// The low-congestion variant's static phases never exceed δ = 1, for
    /// arbitrary graphs (not just the curated suite).
    #[test]
    fn low_congestion_delta_bound(g in arb_graph(2, 12)) {
        let run = low_congestion::run(&g).unwrap();
        prop_assert!(run.static_max_congestion() <= 1);
        let expected = union_find_components_dense(&g);
        prop_assert_eq!(run.labels.as_slice(), expected.as_slice());
    }

    /// The n-cell variant's rotated scans keep δ ≤ 1 in scan phases and
    /// its generation count follows its closed form.
    #[test]
    fn n_cells_scan_delta_and_count(g in arb_graph(2, 12)) {
        let run = n_cells::run(&g).unwrap();
        prop_assert_eq!(run.generations, n_cells::total_generations(g.n()));
        for m in run.metrics.entries() {
            // Phases 2 and 5 are the scans in the n-cell numbering.
            if m.ctx.phase == 2 || m.ctx.phase == 5 {
                prop_assert!(m.max_congestion <= 1);
            }
        }
    }

    /// Three-way execution-path identity: generic, fused, SWAR and
    /// parallel fused agree on labels, generation counts AND full
    /// `Counts` metric logs on arbitrary graphs up to one word (n ≤ 64
    /// exercises the packed plane's tail-bit handling). Under `Off` the
    /// SWAR driver additionally runs its fused broadcast+filter pair and
    /// uniform-label shortcut, which the labels must not observe.
    #[test]
    fn exec_paths_agree_on_labels_and_metrics(g in arb_graph(2, 64)) {
        let run = |exec: ExecPath, instrumentation: Instrumentation| {
            HirschbergGca::new()
                .with_engine(
                    Engine::sequential().with_instrumentation(instrumentation),
                )
                .exec(exec)
                .run(&g)
                .unwrap()
        };
        let expected = union_find_components_dense(&g);
        let generic = run(ExecPath::Generic, Instrumentation::Counts);
        prop_assert_eq!(generic.labels.as_slice(), expected.as_slice());
        for exec in [
            ExecPath::Fused,
            ExecPath::fused_swar(),
            ExecPath::fused_parallel(2),
        ] {
            let counted = run(exec, Instrumentation::Counts);
            prop_assert_eq!(counted.labels.as_slice(), expected.as_slice());
            prop_assert_eq!(counted.generations, generic.generations);
            prop_assert_eq!(
                counted.metrics.entries(),
                generic.metrics.entries(),
                "metric divergence under {:?}",
                exec
            );
            let off = run(exec, Instrumentation::Off);
            prop_assert_eq!(off.labels.as_slice(), expected.as_slice());
        }
    }

    /// Instrumentation levels do not change results, only reporting.
    #[test]
    fn instrumentation_transparent(g in arb_graph(2, 12)) {
        let off = HirschbergGca::new()
            .with_engine(Engine::sequential().with_instrumentation(Instrumentation::Off))
            .run(&g)
            .unwrap();
        let trace = HirschbergGca::new()
            .with_engine(Engine::sequential().with_instrumentation(Instrumentation::Trace))
            .run(&g)
            .unwrap();
        prop_assert_eq!(off.labels.as_slice(), trace.labels.as_slice());
        prop_assert_eq!(off.generations, trace.generations);
        prop_assert_eq!(off.metrics.generations(), 0);
        prop_assert_eq!(trace.metrics.generations() as u64, trace.generations);
    }
}
