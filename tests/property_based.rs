//! Property-based tests over random graphs: the GCA machines, the PRAM
//! reference and the sequential baselines are exercised against each other
//! and against structural invariants of component labelings.

use gca_graphs::connectivity::union_find_components_dense;
use gca_graphs::{generators, AdjacencyMatrix, Labeling};
use gca_hirschberg::variants::{low_congestion, n_cells};
use gca_hirschberg::{complexity, HirschbergGca};
use gca_pram::hirschberg_ref;
use proptest::prelude::*;

/// Strategy: a random graph as (n, edge list over pairs).
fn arb_graph(max_n: usize) -> impl Strategy<Value = AdjacencyMatrix> {
    (2usize..=max_n).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec((0..n, 0..n), 0..=max_edges.min(60)).prop_map(move |pairs| {
            let mut g = AdjacencyMatrix::new(n);
            for (u, v) in pairs {
                if u != v {
                    g.add_edge(u, v).expect("in range");
                }
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The GCA main machine always equals union-find, label for label.
    #[test]
    fn gca_equals_union_find(g in arb_graph(20)) {
        let expected = union_find_components_dense(&g);
        let run = HirschbergGca::new().run(&g).unwrap();
        prop_assert_eq!(run.labels.as_slice(), expected.as_slice());
    }

    /// All variants and the PRAM reference agree with the main machine.
    #[test]
    fn all_machines_agree(g in arb_graph(14)) {
        let main = HirschbergGca::new().run(&g).unwrap().labels;
        prop_assert_eq!(&n_cells::run(&g).unwrap().labels, &main);
        prop_assert_eq!(&low_congestion::run(&g).unwrap().labels, &main);
        prop_assert_eq!(&hirschberg_ref::connected_components(&g).unwrap().labels, &main);
    }

    /// Labels are canonical: every node's label is the minimum node index
    /// of its component, and labels are fixed points (label(label(v)) ==
    /// label(v)).
    #[test]
    fn labels_are_canonical(g in arb_graph(20)) {
        let run = HirschbergGca::new().run(&g).unwrap();
        prop_assert!(run.labels.is_canonical());
        for v in 0..g.n() {
            let l = run.labels.label(v);
            prop_assert_eq!(run.labels.label(l), l);
            prop_assert!(l <= v);
        }
    }

    /// Adjacent nodes always share a label; the number of distinct labels
    /// equals n minus the rank of the edge set's spanning forest.
    #[test]
    fn adjacent_nodes_share_labels(g in arb_graph(20)) {
        let run = HirschbergGca::new().run(&g).unwrap();
        for (u, v) in g.edges() {
            prop_assert_eq!(run.labels.label(u), run.labels.label(v));
        }
    }

    /// Adding an edge *inside* an existing component never changes the
    /// partition; adding one *between* two components merges exactly them.
    #[test]
    fn edge_addition_monotonicity(g in arb_graph(16), extra in (0usize..16, 0usize..16)) {
        let n = g.n();
        let (u, v) = (extra.0 % n, extra.1 % n);
        prop_assume!(u != v);
        let before = HirschbergGca::new().run(&g).unwrap().labels;
        let mut g2 = g.clone();
        g2.add_edge(u, v).unwrap();
        let after = HirschbergGca::new().run(&g2).unwrap().labels;
        if before.label(u) == before.label(v) {
            prop_assert_eq!(before.as_slice(), after.as_slice());
        } else {
            prop_assert_eq!(after.component_count() + 1, before.component_count());
            prop_assert_eq!(after.label(u), after.label(v));
        }
    }

    /// The generation counter always matches the closed form, regardless
    /// of the input graph.
    #[test]
    fn generation_count_is_input_independent(g in arb_graph(20)) {
        let run = HirschbergGca::new().run(&g).unwrap();
        prop_assert_eq!(run.generations, complexity::total_generations(g.n()));
    }

    /// Congestion bound: no generation's congestion ever exceeds n + 1
    /// (the generation-1 broadcast is the global maximum by Table 1).
    #[test]
    fn congestion_never_exceeds_table1_bound(g in arb_graph(18)) {
        let run = HirschbergGca::new().run(&g).unwrap();
        prop_assert!(run.max_congestion() as usize <= g.n() + 1);
    }

    /// Early exit is purely an optimization: identical labels, no more
    /// generations than the fixed schedule.
    #[test]
    fn early_exit_sound(g in arb_graph(18)) {
        let fixed = HirschbergGca::new().run(&g).unwrap();
        let early = HirschbergGca::new().early_exit(true).run(&g).unwrap();
        prop_assert_eq!(fixed.labels.as_slice(), early.labels.as_slice());
        prop_assert!(early.generations <= fixed.generations);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Planted structures are always recovered exactly.
    #[test]
    fn planted_partitions(n in 4usize..24, k in 1usize..5, seed in 0u64..1000) {
        let k = k.min(n);
        let planted = generators::planted_components(n, k, 0.3, seed);
        let run = HirschbergGca::new().run(&planted.graph).unwrap();
        prop_assert!(run.labels.same_partition(&planted.expected_labels()));
        prop_assert_eq!(run.labels.component_count(), k);
    }

    /// Relabeling invariance: permuting node identities permutes the
    /// partition consistently.
    #[test]
    fn permutation_invariance(seed in 0u64..500) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let n = 12usize;
        let g = generators::gnp(n, 0.25, seed);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xabcdef);
        let mut perm: Vec<usize> = (0..n).collect();
        perm.shuffle(&mut rng);
        let permuted = g.permute(&perm);

        let base = HirschbergGca::new().run(&g).unwrap().labels;
        let perm_run = HirschbergGca::new().run(&permuted).unwrap().labels;

        // Nodes u, v connected in g  <=>  perm[u], perm[v] connected.
        let mapped: Vec<usize> = {
            // Build the partition of the permuted graph pulled back to the
            // original ids, then canonicalize for comparison.
            let mut labels = vec![0usize; n];
            for v in 0..n {
                labels[v] = perm_run.label(perm[v]);
            }
            labels
        };
        let pulled_back = Labeling::new(mapped).unwrap();
        prop_assert!(pulled_back.same_partition(&base));
    }
}
