//! Property-based tests over random graphs: the GCA machines, the PRAM
//! reference and the sequential baselines are exercised against each other
//! and against structural invariants of component labelings.

use gca_engine::{
    Access, Backend, CellField, Domain, DomainPolicy, Engine, FieldShape, GcaRule,
    Instrumentation, Reads, StepCtx,
};
use gca_graphs::connectivity::union_find_components_dense;
use gca_graphs::{generators, AdjacencyMatrix, Labeling};
use gca_hirschberg::variants::{low_congestion, n_cells};
use gca_hirschberg::{complexity, Convergence, ExecPath, FusedParallel, HirschbergGca};
use gca_pram::hirschberg_ref;
use proptest::prelude::*;

/// Strategy: a random graph as (n, edge list over pairs).
fn arb_graph(max_n: usize) -> impl Strategy<Value = AdjacencyMatrix> {
    (2usize..=max_n).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec((0..n, 0..n), 0..=max_edges.min(60)).prop_map(move |pairs| {
            let mut g = AdjacencyMatrix::new(n);
            for (u, v) in pairs {
                if u != v {
                    g.add_edge(u, v).expect("in range");
                }
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The GCA main machine always equals union-find, label for label.
    #[test]
    fn gca_equals_union_find(g in arb_graph(20)) {
        let expected = union_find_components_dense(&g);
        let run = HirschbergGca::new().run(&g).unwrap();
        prop_assert_eq!(run.labels.as_slice(), expected.as_slice());
    }

    /// All variants and the PRAM reference agree with the main machine.
    #[test]
    fn all_machines_agree(g in arb_graph(14)) {
        let main = HirschbergGca::new().run(&g).unwrap().labels;
        prop_assert_eq!(&n_cells::run(&g).unwrap().labels, &main);
        prop_assert_eq!(&low_congestion::run(&g).unwrap().labels, &main);
        prop_assert_eq!(&hirschberg_ref::connected_components(&g).unwrap().labels, &main);
    }

    /// Labels are canonical: every node's label is the minimum node index
    /// of its component, and labels are fixed points (label(label(v)) ==
    /// label(v)).
    #[test]
    fn labels_are_canonical(g in arb_graph(20)) {
        let run = HirschbergGca::new().run(&g).unwrap();
        prop_assert!(run.labels.is_canonical());
        for v in 0..g.n() {
            let l = run.labels.label(v);
            prop_assert_eq!(run.labels.label(l), l);
            prop_assert!(l <= v);
        }
    }

    /// Adjacent nodes always share a label; the number of distinct labels
    /// equals n minus the rank of the edge set's spanning forest.
    #[test]
    fn adjacent_nodes_share_labels(g in arb_graph(20)) {
        let run = HirschbergGca::new().run(&g).unwrap();
        for (u, v) in g.edges() {
            prop_assert_eq!(run.labels.label(u), run.labels.label(v));
        }
    }

    /// Adding an edge *inside* an existing component never changes the
    /// partition; adding one *between* two components merges exactly them.
    #[test]
    fn edge_addition_monotonicity(g in arb_graph(16), extra in (0usize..16, 0usize..16)) {
        let n = g.n();
        let (u, v) = (extra.0 % n, extra.1 % n);
        prop_assume!(u != v);
        let before = HirschbergGca::new().run(&g).unwrap().labels;
        let mut g2 = g.clone();
        g2.add_edge(u, v).unwrap();
        let after = HirschbergGca::new().run(&g2).unwrap().labels;
        if before.label(u) == before.label(v) {
            prop_assert_eq!(before.as_slice(), after.as_slice());
        } else {
            prop_assert_eq!(after.component_count() + 1, before.component_count());
            prop_assert_eq!(after.label(u), after.label(v));
        }
    }

    /// The generation counter always matches the closed form, regardless
    /// of the input graph.
    #[test]
    fn generation_count_is_input_independent(g in arb_graph(20)) {
        let run = HirschbergGca::new().run(&g).unwrap();
        prop_assert_eq!(run.generations, complexity::total_generations(g.n()));
    }

    /// Congestion bound: no generation's congestion ever exceeds n + 1
    /// (the generation-1 broadcast is the global maximum by Table 1).
    #[test]
    fn congestion_never_exceeds_table1_bound(g in arb_graph(18)) {
        let run = HirschbergGca::new().run(&g).unwrap();
        prop_assert!(run.max_congestion() as usize <= g.n() + 1);
    }

    /// Early exit is purely an optimization: identical labels, no more
    /// generations than the fixed schedule.
    #[test]
    fn early_exit_sound(g in arb_graph(18)) {
        let fixed = HirschbergGca::new().run(&g).unwrap();
        let early = HirschbergGca::new().early_exit(true).run(&g).unwrap();
        prop_assert_eq!(fixed.labels.as_slice(), early.labels.as_slice());
        prop_assert!(early.generations <= fixed.generations);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Planted structures are always recovered exactly.
    #[test]
    fn planted_partitions(n in 4usize..24, k in 1usize..5, seed in 0u64..1000) {
        let k = k.min(n);
        let planted = generators::planted_components(n, k, 0.3, seed);
        let run = HirschbergGca::new().run(&planted.graph).unwrap();
        prop_assert!(run.labels.same_partition(&planted.expected_labels()));
        prop_assert_eq!(run.labels.component_count(), k);
    }

    /// Relabeling invariance: permuting node identities permutes the
    /// partition consistently.
    #[test]
    fn permutation_invariance(seed in 0u64..500) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let n = 12usize;
        let g = generators::gnp(n, 0.25, seed);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xabcdef);
        let mut perm: Vec<usize> = (0..n).collect();
        perm.shuffle(&mut rng);
        let permuted = g.permute(&perm);

        let base = HirschbergGca::new().run(&g).unwrap().labels;
        let perm_run = HirschbergGca::new().run(&permuted).unwrap().labels;

        // Nodes u, v connected in g  <=>  perm[u], perm[v] connected.
        let mapped: Vec<usize> = {
            // Build the partition of the permuted graph pulled back to the
            // original ids, then canonicalize for comparison.
            let mut labels = vec![0usize; n];
            for v in 0..n {
                labels[v] = perm_run.label(perm[v]);
            }
            labels
        };
        let pulled_back = Labeling::new(mapped).unwrap();
        prop_assert!(pulled_back.same_partition(&base));
    }
}

// ---------------------------------------------------------------------------
// Engine-knob equivalences: backend × domain policy × instrumentation must
// never change observable behaviour — fields, activity, reads, congestion.
// ---------------------------------------------------------------------------

/// A randomly parameterized rule whose work is confined to a declared
/// [`Domain`]: in-domain cells mix their own state with one or two
/// pseudo-randomly addressed global reads; out-of-domain cells honor the
/// domain contract (identity `evolve`, `Access::None`, inactive).
struct DomainConfinedRule {
    domain: Domain,
    mult: u32,
    stride: usize,
}

impl GcaRule for DomainConfinedRule {
    type State = u32;

    fn access(&self, _ctx: &StepCtx, shape: &FieldShape, index: usize, own: &u32) -> Access {
        if !self.domain.contains(shape, index) {
            return Access::None;
        }
        let len = shape.len();
        let a = (index * 31 + self.stride) % len;
        match (index + *own as usize) % 5 {
            0 => Access::None,
            1 | 2 => Access::Two(a, (index + self.stride) % len),
            _ => Access::One(a),
        }
    }

    fn evolve(
        &self,
        _ctx: &StepCtx,
        shape: &FieldShape,
        index: usize,
        own: &u32,
        reads: Reads<'_, u32>,
    ) -> u32 {
        if !self.domain.contains(shape, index) {
            return *own;
        }
        let a = reads.first().copied().unwrap_or(1);
        let b = reads.second().copied().unwrap_or(3);
        own.wrapping_mul(self.mult)
            .wrapping_add(a ^ b.rotate_left(5))
            .wrapping_add(index as u32)
    }

    fn is_active(&self, _ctx: &StepCtx, shape: &FieldShape, index: usize, own: &u32) -> bool {
        self.domain.contains(shape, index) && own % 3 != 2
    }

    fn domain(&self, _ctx: &StepCtx, _shape: &FieldShape) -> Domain {
        self.domain.clone()
    }

    fn name(&self) -> &str {
        "domain-confined"
    }
}

/// Builds one of the four domain shapes from integer parameters.
fn make_domain(kind: usize, a: usize, b: usize, seed: u64, shape: &FieldShape) -> Domain {
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    match kind {
        0 => Domain::All,
        1 => Domain::Rows(lo % (shape.rows() + 1)..hi % (shape.rows() + 1)),
        2 => Domain::Cols(lo % (shape.cols() + 1)..hi % (shape.cols() + 1)),
        _ => {
            // A deterministic pseudo-random ~1/3 subset of the cells.
            let indices = (0..shape.len())
                .filter(|&i| {
                    let mut z = seed.wrapping_add(i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    z ^= z >> 29;
                    z.is_multiple_of(3)
                })
                .collect();
            Domain::Sparse(indices)
        }
    }
}

/// Every (backend, policy, instrumentation) combination the engine offers.
fn engine_configs() -> Vec<Engine> {
    let mut configs = Vec::new();
    for backend in [Backend::Sequential, Backend::Parallel] {
        for policy in [DomainPolicy::Dense, DomainPolicy::Hinted] {
            for instr in [
                Instrumentation::Off,
                Instrumentation::Counts,
                Instrumentation::Trace,
            ] {
                configs.push(
                    Engine::new()
                        .with_backend(backend)
                        .with_domain_policy(policy)
                        .with_instrumentation(instr),
                );
            }
        }
    }
    configs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Stepping any random domain-confined rule under every
    /// backend/policy/instrumentation combination produces bit-identical
    /// fields, active-cell counts, read totals, changed-cell counts and
    /// congestion histograms; hinted stepping never evaluates more cells
    /// than dense stepping.
    #[test]
    fn engine_knobs_are_observationally_equivalent(
        (rows, cols) in (1usize..7, 1usize..8),
        (kind, a, b) in (0usize..4, 0usize..8, 0usize..8),
        seed in 0u64..1_000,
        steps in 1usize..4,
    ) {
        let shape = FieldShape::new(rows, cols).unwrap();
        let domain = make_domain(kind, a, b, seed, &shape);
        let rule = DomainConfinedRule {
            domain,
            mult: (seed % 13) as u32 + 1,
            stride: (seed % 17) as usize + 1,
        };
        let init = |i: usize| (seed as u32).wrapping_mul(2654435761).wrapping_add(i as u32);

        // Reference: sequential, dense, fully traced.
        let mut ref_engine = Engine::sequential()
            .with_domain_policy(DomainPolicy::Dense)
            .with_instrumentation(Instrumentation::Trace);
        let mut ref_field = CellField::from_fn(shape, init);

        let mut variants: Vec<(Engine, CellField<u32>)> = engine_configs()
            .into_iter()
            .map(|e| (e, CellField::from_fn(shape, init)))
            .collect();

        for step in 0..steps {
            let ref_rep = ref_engine.step(&mut ref_field, &rule, 0, step as u32).unwrap();
            for (engine, field) in &mut variants {
                let rep = engine.step(field, &rule, 0, step as u32).unwrap();
                prop_assert_eq!(field.states(), ref_field.states(),
                    "fields diverge: {:?}", engine);
                prop_assert_eq!(rep.active_cells, ref_rep.active_cells);
                prop_assert_eq!(rep.total_reads, ref_rep.total_reads);
                prop_assert_eq!(rep.changed_cells, ref_rep.changed_cells);
                prop_assert!(rep.evaluated_cells <= ref_rep.evaluated_cells);
                if let Some(hist) = rep.congestion.as_ref() {
                    prop_assert_eq!(Some(hist), ref_rep.congestion.as_ref());
                }
                if let Some(accesses) = rep.accesses.as_ref() {
                    prop_assert_eq!(Some(accesses), ref_rep.accesses.as_ref());
                }
            }
        }
    }

    /// The full Hirschberg run agrees label-for-label, generation-for-
    /// generation, and metric-for-metric across every engine configuration.
    #[test]
    fn hirschberg_engine_knobs_agree(g in arb_graph(12)) {
        let reference = HirschbergGca::new().run(&g).unwrap();
        for engine in engine_configs() {
            let run = HirschbergGca::new().with_engine(engine).run(&g).unwrap();
            prop_assert_eq!(run.labels.as_slice(), reference.labels.as_slice());
            prop_assert_eq!(run.generations, reference.generations);
            if !run.metrics.entries().is_empty() {
                prop_assert_eq!(run.metrics.entries(), reference.metrics.entries());
            }
        }
    }

    /// Convergence detection is purely an optimization: identical labels,
    /// never more generations than the fixed schedule, and the closed-form
    /// bound `1 + log n (3 log n + 8)` always holds.
    #[test]
    fn detect_convergence_sound(g in arb_graph(16)) {
        let fixed = HirschbergGca::new().run(&g).unwrap();
        let detect = HirschbergGca::new()
            .convergence(Convergence::Detect)
            .run(&g)
            .unwrap();
        prop_assert_eq!(detect.labels.as_slice(), fixed.labels.as_slice());
        prop_assert!(detect.generations <= fixed.generations);
        prop_assert!(detect.generations <= complexity::total_generations(g.n()));
        // Detect composed with early exit still agrees.
        let both = HirschbergGca::new()
            .convergence(Convergence::Detect)
            .early_exit(true)
            .run(&g)
            .unwrap();
        prop_assert_eq!(both.labels.as_slice(), fixed.labels.as_slice());
        prop_assert!(both.generations <= detect.generations);
    }
}

/// Strategy: one of the fused-path acceptance families — Gilbert `G(n, p)`,
/// random forest, or a cycle — at `n ∈ {4, 8, 16, 32, 64}`.
fn arb_fused_graph() -> impl Strategy<Value = AdjacencyMatrix> {
    const SIZES: [usize; 5] = [4, 8, 16, 32, 64];
    (0usize..SIZES.len(), 0usize..3, 1u64..1_000_000, 1u32..8).prop_map(
        |(size_idx, family, seed, p_twentieths)| {
            let n = SIZES[size_idx];
            match family {
                0 => generators::gnp(n, f64::from(p_twentieths) / 20.0, seed),
                1 => generators::random_forest(n, (n / 4).max(1), seed),
                _ => generators::ring(n),
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The fused execution path is bit-identical to the generic path: same
    /// labelings and same `Counts` metrics (active cells, total reads,
    /// congestion histograms, generation contexts) on every workload of
    /// [`arb_fused_graph`].
    #[test]
    fn fused_equals_generic(g in arb_fused_graph()) {
        let generic = HirschbergGca::new().run(&g).unwrap();
        let fused = HirschbergGca::new().exec(ExecPath::Fused).run(&g).unwrap();
        prop_assert_eq!(fused.labels.as_slice(), generic.labels.as_slice());
        prop_assert_eq!(fused.generations, generic.generations);
        prop_assert_eq!(fused.metrics.entries(), generic.metrics.entries());
    }

    /// The same equivalence holds under convergence detection: the fused
    /// pointer-jump sequence stops on exactly the same sub-generation, so
    /// generation counts and metrics logs still match entry for entry.
    #[test]
    fn fused_equals_generic_under_detect(g in arb_fused_graph()) {
        let generic = HirschbergGca::new()
            .convergence(Convergence::Detect)
            .run(&g)
            .unwrap();
        let fused = HirschbergGca::new()
            .convergence(Convergence::Detect)
            .exec(ExecPath::Fused)
            .run(&g)
            .unwrap();
        prop_assert_eq!(fused.labels.as_slice(), generic.labels.as_slice());
        prop_assert_eq!(fused.generations, generic.generations);
        prop_assert_eq!(fused.metrics.entries(), generic.metrics.entries());
    }

    /// The row-partitioned parallel fused path is bit-identical to BOTH the
    /// sequential fused path and the generic path — labels, generation
    /// counts and `Counts` metrics entry for entry — for every worker count
    /// in a small sweep. `threshold: Some(0)` forces the partitioned
    /// drivers even on these small fields (the auto-fallback would
    /// otherwise make this test vacuous below the engine tunable).
    #[test]
    fn parallel_fused_equals_fused_and_generic(g in arb_fused_graph()) {
        let generic = HirschbergGca::new().run(&g).unwrap();
        let fused = HirschbergGca::new().exec(ExecPath::Fused).run(&g).unwrap();
        for workers in [2usize, 3, 7] {
            let par = HirschbergGca::new()
                .exec(ExecPath::FusedParallel(FusedParallel { workers, threshold: Some(0) }))
                .run(&g)
                .unwrap();
            prop_assert_eq!(par.labels.as_slice(), generic.labels.as_slice());
            prop_assert_eq!(par.generations, generic.generations);
            prop_assert_eq!(par.metrics.entries(), generic.metrics.entries());
            prop_assert_eq!(par.metrics.entries(), fused.metrics.entries());
        }
    }

    /// Same equivalence under convergence detection: the partitioned
    /// pointer-jump must stop on exactly the same sub-generation.
    #[test]
    fn parallel_fused_equals_generic_under_detect(g in arb_fused_graph()) {
        let generic = HirschbergGca::new()
            .convergence(Convergence::Detect)
            .run(&g)
            .unwrap();
        let par = HirschbergGca::new()
            .convergence(Convergence::Detect)
            .exec(ExecPath::FusedParallel(FusedParallel { workers: 3, threshold: Some(0) }))
            .run(&g)
            .unwrap();
        prop_assert_eq!(par.labels.as_slice(), generic.labels.as_slice());
        prop_assert_eq!(par.generations, generic.generations);
        prop_assert_eq!(par.metrics.entries(), generic.metrics.entries());
    }
}

/// One larger-than-corpus case: at n = 256 the field (n·(n+1) cells)
/// clears the engine's default amortization threshold, so the partitioned
/// drivers engage without forcing, and the auto worker count path
/// (`workers: 0`) is exercised alongside explicit counts.
#[test]
fn parallel_fused_bit_identical_at_n256() {
    let g = generators::gnp(256, 0.3, 2007);
    let fused = HirschbergGca::new().exec(ExecPath::Fused).run(&g).unwrap();
    for workers in [0usize, 2, 3, 7] {
        let par = HirschbergGca::new()
            .exec(ExecPath::FusedParallel(FusedParallel { workers, threshold: None }))
            .run(&g)
            .unwrap();
        assert_eq!(par.labels.as_slice(), fused.labels.as_slice(), "workers={workers}");
        assert_eq!(par.generations, fused.generations, "workers={workers}");
        assert_eq!(par.metrics.entries(), fused.metrics.entries(), "workers={workers}");
    }
}

// ---------------------------------------------------------------------------
// Symbolic-vs-dynamic bridge: the closed forms `gca_analysis::symbolic`
// derives WITHOUT executing the machine must describe what an instrumented
// run actually measures — activity exactly, congestion δ exactly for the
// statically addressed phases and as an upper bound for the data-dependent
// pointer chases, and phase-execution counts entry for entry.
// ---------------------------------------------------------------------------

use gca_analysis::symbolic::{self, PhaseForms, SymbolicModel};
use gca_hirschberg::table1::{measure_first_iteration, measure_full_run};
use gca_hirschberg::Gen;
use std::sync::OnceLock;

/// Derives the symbolic model once (six exact sample fits plus a held-out
/// size) and shares it across every proptest case.
fn symbolic_model() -> &'static SymbolicModel {
    static MODEL: OnceLock<SymbolicModel> = OnceLock::new();
    MODEL.get_or_init(|| symbolic::derive().expect("symbolic derivation succeeds"))
}

fn forms(model: &SymbolicModel, gen: Gen) -> &PhaseForms {
    model
        .phases
        .iter()
        .find(|p| p.gen == gen)
        .expect("the model carries all twelve phases")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For every power of two up to `2^8` and any graph, the measured
    /// sub-generation-0 rows of the first iteration match the symbolic
    /// activity polynomials exactly; measured congestion equals the δ
    /// polynomial for statically addressed phases and never exceeds it
    /// for the data-dependent ones.
    #[test]
    fn symbolic_forms_describe_measured_first_iteration(
        k in 1u32..=8,
        seed in 0u64..1_000,
        p_twentieths in 0u32..=20,
    ) {
        let n = 1usize << k;
        let g = generators::gnp(n, f64::from(p_twentieths) / 20.0, seed);
        let model = symbolic_model();
        let rows = measure_first_iteration(&g).unwrap();
        for row in rows.iter().filter(|r| r.subgeneration == 0) {
            let f = forms(model, row.generation);
            let active = f.activity.eval_u64(n as u64, k).expect("integral activity");
            prop_assert_eq!(
                row.active as u64, active,
                "activity at {:?}, n = {}", row.generation, n
            );
            let delta = f.congestion.eval_u64(n as u64, k).expect("integral δ");
            if matches!(row.generation, Gen::PointerJump | Gen::FinalMin) {
                prop_assert!(
                    u64::from(row.max_congestion) <= delta,
                    "δ bound at {:?}, n = {}: measured {} > symbolic {}",
                    row.generation, n, row.max_congestion, delta
                );
            } else {
                prop_assert_eq!(
                    u64::from(row.max_congestion), delta,
                    "δ at {:?}, n = {}", row.generation, n
                );
            }
        }
    }

    /// Over a full fixed-schedule run, every phase executes exactly as
    /// often as its symbolic execution-count polynomial predicts, and the
    /// metrics log's length is the total-generations closed form.
    #[test]
    fn symbolic_execution_counts_match_full_run(
        k in 1u32..=5,
        seed in 0u64..1_000,
        p_twentieths in 0u32..=20,
    ) {
        let n = 1usize << k;
        let g = generators::gnp(n, f64::from(p_twentieths) / 20.0, seed);
        let model = symbolic_model();
        let rows = measure_full_run(&g).unwrap();
        let total = model
            .total_generations
            .eval_u64(n as u64, k)
            .expect("integral total");
        prop_assert_eq!(rows.len() as u64, total);
        for gen in Gen::ALL {
            let executed = rows.iter().filter(|r| r.generation == gen).count() as u64;
            let predicted = forms(model, gen)
                .executions
                .eval_u64(n as u64, k)
                .expect("integral executions");
            prop_assert_eq!(executed, predicted, "executions of {:?}, n = {}", gen, n);
        }
    }
}
