//! The formula atlas: every machine's closed-form cost in one place, with
//! the ordering relationships the paper's discussion (and our extensions)
//! predict. Each formula is also asserted against executed runs in its own
//! crate; this test pins the *relationships* so a change to any one machine
//! that silently reorders the design space fails loudly.

use gca_emu::hirschberg_program;
use gca_hirschberg::variants::{low_congestion, n_cells, two_handed};
use gca_hirschberg::complexity;
use gca_pram::hirschberg_ref;

fn l(n: usize) -> u64 {
    u64::from(complexity::ceil_log2(n))
}

#[test]
fn formula_atlas() {
    for n in [2usize, 3, 4, 7, 8, 16, 31, 64, 128, 1000] {
        let log = l(n);

        // The paper's machine.
        let main = complexity::total_generations(n);
        assert_eq!(main, 1 + log * (3 * log + 8), "main @ {n}");

        // PRAM reference (Listing 1).
        let pram = hirschberg_ref::reference_steps(n);
        assert_eq!(pram, 1 + log * (3 * log + 6), "pram @ {n}");

        // Variants.
        let two = two_handed::total_generations(n);
        let ncell = n_cells::total_generations(n);
        let lc = low_congestion::total_generations(n);
        let emu = hirschberg_program::emulated_generations(n);
        let tc = gca_algorithms::transitive_closure::total_generations(n);

        // Relationships the design-space discussion predicts:
        // 1. Two hands close the PRAM gap exactly.
        assert_eq!(two, pram, "two-handed = pram @ {n}");
        // 2. The one-handed machine pays exactly 2 broadcasts per iteration.
        assert_eq!(main - two, 2 * log, "broadcast overhead @ {n}");
        // 3. Low congestion costs more generations than the main machine.
        assert!(lc >= main, "low-congestion >= main @ {n}");
        // 4. The n-cell machine is O(n log n): past its crossover with the
        //    (polylog but constant-heavy) low-congestion machine it loses.
        if n >= 32 {
            assert!(ncell > lc, "n-cell > low-congestion @ {n}");
        }
        // 5. Universal emulation costs more than the compiled polylog
        //    machines at every size.
        assert!(emu > main && emu > lc, "emulation most expensive @ {n}");
        // 6. Connected components via transitive closure is O(n log n) and
        //    overtakes the direct O(log² n) mapping past its crossover.
        if n >= 32 {
            assert!(tc > main, "closure CC > direct CC @ {n}");
        }

        // Work accounting: n(n+1) cells × generations.
        assert_eq!(
            complexity::work(n),
            main * (n as u64) * (n as u64 + 1),
            "work @ {n}"
        );
    }
}

#[test]
fn per_iteration_decomposition() {
    for n in [2usize, 8, 64] {
        let log = l(n);
        assert_eq!(
            complexity::generations_per_iteration(n),
            3 * log + 8
        );
        assert_eq!(two_handed::generations_per_iteration(n), 3 * log + 6);
        assert_eq!(
            n_cells::generations_per_iteration(n),
            2 * n as u64 + log + 6
        );
        assert_eq!(
            low_congestion::generations_per_iteration(n),
            10 + 7 * log + l(n + 1)
        );
        // Table 2 rows sum to the per-iteration total (steps 2–6).
        let t2: u64 = complexity::table2(n)[1..]
            .iter()
            .map(|r| r.generations)
            .sum();
        assert_eq!(t2, complexity::generations_per_iteration(n));
    }
}

#[test]
fn supporting_primitive_costs() {
    use gca_algorithms::{bitonic, list_ranking, scan};
    for n in [1usize, 2, 8, 100] {
        let log = l(n);
        assert_eq!(scan::scan_generations(n), log);
        assert_eq!(list_ranking::ranking_generations(n), log);
        let lp = l(n.next_power_of_two());
        assert_eq!(bitonic::sort_generations(n), lp * (lp + 1) / 2);
    }
}
