//! End-to-end pipeline: serialize a graph to the edge-list format, read it
//! back, run the full stack on both copies, compare — the workflow of a
//! user bringing their own inputs.

use gca_graphs::{generators, io};
use gca_hirschberg::HirschbergGca;

#[test]
fn edge_list_round_trip_preserves_results() {
    for seed in 0..5 {
        let original = generators::gnp(20, 0.2, seed);
        let text = io::to_edge_list(&original);
        let parsed = io::from_edge_list(&text).expect("parse back");
        assert_eq!(original, parsed);

        let a = HirschbergGca::new().run(&original).unwrap();
        let b = HirschbergGca::new().run(&parsed).unwrap();
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.generations, b.generations);
    }
}

#[test]
fn hand_written_edge_list_runs() {
    let text = "\
# three components: {0,1,2}, {3,4}, {5}
n 6
0 1
1 2
3 4
";
    let g = io::from_edge_list(text).expect("parse");
    let run = HirschbergGca::new().run(&g).unwrap();
    assert_eq!(run.labels.as_slice(), &[0, 0, 0, 3, 3, 5]);
}

#[test]
fn serialization_is_stable() {
    let g = generators::ring(6);
    let t1 = io::to_edge_list(&g);
    let t2 = io::to_edge_list(&io::from_edge_list(&t1).unwrap());
    assert_eq!(t1, t2);
}
