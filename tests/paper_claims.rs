//! The paper's quantitative claims, asserted end-to-end. Each test names
//! the paper artifact it checks; EXPERIMENTS.md indexes these.

use gca_engine::{Engine, Instrumentation};
use gca_graphs::generators;
use gca_hirschberg::{complexity, table1, Gen, HirschbergGca};
use gca_hw_model::{estimate_variant, paper_reference, CostParams, Variant, EP2C70};
use gca_pram::{hirschberg_ref, AccessPolicy, PramError};

/// Section 3: total generations `1 + log n (3 log n + 8)`.
#[test]
fn claim_total_generation_formula() {
    for n in [2usize, 3, 4, 6, 8, 13, 16, 32, 40] {
        let g = generators::gnp(n, 0.4, n as u64);
        let run = HirschbergGca::new().run(&g).unwrap();
        let l = u64::from(complexity::ceil_log2(n));
        assert_eq!(run.generations, 1 + l * (3 * l + 8), "n = {n}");
    }
}

/// Table 2: per-step generation counts.
#[test]
fn claim_table2_structure() {
    for n in [4usize, 16, 64] {
        let rows = complexity::table2(n);
        let l = u64::from(complexity::ceil_log2(n));
        assert_eq!(rows[0].generations, 1);
        assert_eq!(rows[1].generations, 1 + l + 1 + 1);
        assert_eq!(rows[2].generations, 1 + l + 1 + 1);
        assert_eq!(rows[3].generations, 1);
        assert_eq!(rows[4].generations, l);
        assert_eq!(rows[5].generations, 1);
    }
}

/// Table 1: the statically-addressed rows, measured at a power-of-two n.
#[test]
fn claim_table1_static_rows() {
    let n = 16usize;
    let g = generators::gnp(n, 0.5, 1);
    let rows = table1::measure_first_iteration(&g).unwrap();
    let find = |gen: Gen, sub: u32| {
        rows.iter()
            .find(|r| r.generation == gen && r.subgeneration == sub)
            .unwrap()
    };

    // Generation 0: n(n+1) active, no reads.
    assert_eq!(find(Gen::Init, 0).active, n * (n + 1));
    assert_eq!(find(Gen::Init, 0).cells_read, 0);

    // Generation 1: n cells read with congestion n+1.
    let g1 = find(Gen::BroadcastC, 0);
    assert_eq!(g1.active, n * (n + 1));
    assert_eq!(g1.groups.get(&((n as u32) + 1)), Some(&n));

    // Generation 2: n² active, D_N read with congestion n.
    let g2 = find(Gen::FilterNeighbors, 0);
    assert_eq!(g2.active, n * n);
    assert_eq!(g2.max_congestion as usize, n);

    // Generation 3 (first sub-generation): n²/2 active, congestion 1.
    let g3 = find(Gen::MinReduce, 0);
    assert_eq!(g3.active, n * n / 2);
    assert_eq!(g3.max_congestion, 1);

    // Generation 4: n active, congestion 1.
    let g4 = find(Gen::ResolveIsolated, 0);
    assert_eq!(g4.active, n);
    assert_eq!(g4.max_congestion, 1);

    // Generations 10/11: n active, congestion bounded by n.
    for gen in [Gen::PointerJump, Gen::FinalMin] {
        let r = find(gen, 0);
        assert_eq!(r.active, n);
        assert!(r.max_congestion as usize <= n);
    }
}

/// Table 1's worst case for the data-dependent generations (δ = n) is
/// realized by the star graph.
#[test]
fn claim_pointer_jump_worst_case() {
    let n = 16usize;
    let rows = table1::measure_full_run(&generators::star(n)).unwrap();
    let max = rows
        .iter()
        .filter(|r| r.generation == Gen::PointerJump)
        .map(|r| r.max_congestion)
        .max()
        .unwrap();
    assert_eq!(max as usize, n);
}

/// Section 1/Abstract: the GCA is a CROW machine — the algorithm runs
/// under CROW and CREW but not under EREW.
#[test]
fn claim_crow_sufficiency() {
    let g = generators::gnp(12, 0.4, 9);
    assert!(hirschberg_ref::connected_components_with_policy(&g, AccessPolicy::Crow).is_ok());
    assert!(hirschberg_ref::connected_components_with_policy(&g, AccessPolicy::Crew).is_ok());
    let err =
        hirschberg_ref::connected_components_with_policy(&g, AccessPolicy::Erew).unwrap_err();
    assert!(matches!(err, PramError::ReadConflict { .. }));
}

/// Section 4: the published synthesis point is reproduced by the
/// calibrated model and fits the EP2C70 at ~34% utilization.
#[test]
fn claim_synthesis_point() {
    let params = CostParams::calibrated();
    let est = estimate_variant(16, Variant::Main, &params);
    let paper = paper_reference();
    assert_eq!(est.cells, 272);
    assert!((est.logic_elements as f64 / paper.logic_elements as f64 - 1.0).abs() < 0.01);
    assert!((est.register_bits as f64 / paper.register_bits as f64 - 1.0).abs() < 0.01);
    assert!((est.fmax_mhz - 71.0).abs() < 1.0);
    assert!(EP2C70.fits(&est));
    let util = EP2C70.utilization(&est);
    assert!(util > 0.3 && util < 0.4, "utilization {util}");
}

/// Section 4: tree/replication distribution brings the static congestion
/// down to 1 (at a generation cost), on every workload family.
#[test]
fn claim_replication_congestion_down_to_one() {
    use gca_hirschberg::variants::low_congestion;
    for n in [8usize, 16, 13] {
        for graph in [
            generators::gnp(n, 0.5, 3),
            generators::star(n),
            generators::complete(n),
        ] {
            let run = low_congestion::run(&graph).unwrap();
            assert!(
                run.static_max_congestion() <= 1,
                "static congestion {} at n = {n}",
                run.static_max_congestion()
            );
            assert!(run.generations > complexity::total_generations(n));
        }
    }
}

/// Section 1: Brent's theorem — p physical cells simulate the field with
/// identical results and `⌈N/p⌉`-fold modelled slowdown.
#[test]
fn claim_brent_simulation() {
    use gca_engine::brent::{step_virtualized, BrentSchedule};
    use gca_hirschberg::{HirschbergRule, Layout};

    let n = 8usize;
    let g = generators::gnp(n, 0.5, 4);
    let layout = Layout::new(n).unwrap();
    let rule = HirschbergRule::new(n);

    // Run generation 0 then generation 1 directly…
    let mut direct = layout.build_field(&g).unwrap();
    let mut engine = Engine::sequential().with_instrumentation(Instrumentation::Off);
    engine.step(&mut direct, &rule, Gen::Init.number(), 0).unwrap();
    engine
        .step(&mut direct, &rule, Gen::BroadcastC.number(), 0)
        .unwrap();

    // …and virtualized on p = 7 physical cells.
    let mut virt = layout.build_field(&g).unwrap();
    let sched = BrentSchedule::new(layout.cells(), 7);
    let r0 = step_virtualized(&mut virt, &rule, &sched, 0, Gen::Init.number(), 0).unwrap();
    let r1 = step_virtualized(&mut virt, &rule, &sched, 1, Gen::BroadcastC.number(), 0).unwrap();
    assert_eq!(direct.states(), virt.states());
    assert_eq!(r0.rounds, layout.cells().div_ceil(7));
    assert_eq!(r1.rounds, layout.cells().div_ceil(7));
}

/// Section 1: universal hashing spreads a hot contiguous region across
/// memory modules (congestion falls from "all reads on one module" to a
/// small multiple of the balanced load).
#[test]
fn claim_universal_hashing_spreads_hot_spots() {
    use gca_engine::hashing::{module_congestion, BlockMapping, HashedMapping};
    use gca_engine::Access;

    // Generation 2's reads: every square cell (j, i) reads D_N[j] — the n
    // hot cells are the *contiguous* bottom row starting at n², which a
    // contiguous block mapping piles onto a single module.
    let n = 32usize;
    let accesses: Vec<Access> = (0..n * n).map(|i| Access::One(n * n + i / n)).collect();
    let modules = 16usize;

    let block = BlockMapping::new(n * (n + 1), modules);
    let block_max = *module_congestion(&block, &accesses).iter().max().unwrap();

    let mut hashed_maxes = Vec::new();
    for seed in 0..5 {
        let hashed = HashedMapping::new(modules, seed);
        hashed_maxes.push(*module_congestion(&hashed, &accesses).iter().max().unwrap());
    }
    let hashed_typ = hashed_maxes.iter().copied().min().unwrap();

    // All n·(n+1) reads target the first n·n/… region; with the block
    // mapping they pile onto few modules, hashing spreads them.
    assert!(
        hashed_typ * 2 <= block_max,
        "hashed {hashed_typ} vs block {block_max}"
    );
}

/// Section 1 k-handed discussion, quantified: the two-handed variant's
/// generation count equals the PRAM reference's step count exactly — the
/// one-handed machine's +2 generations per iteration are pure broadcast
/// overhead.
#[test]
fn claim_two_hands_close_the_pram_gap() {
    use gca_hirschberg::variants::two_handed;
    for n in [2usize, 4, 8, 16, 33, 64] {
        assert_eq!(
            two_handed::total_generations(n),
            hirschberg_ref::reference_steps(n),
            "n = {n}"
        );
    }
    let g = generators::gnp(12, 0.3, 4);
    let th = two_handed::run(&g).unwrap();
    let pram = hirschberg_ref::connected_components(&g).unwrap();
    assert_eq!(th.labels, pram.labels);
    assert_eq!(th.generations, pram.time);
}

/// The area–time analysis in the hardware model uses its own copies of the
/// variant generation formulas; keep them in lock-step with the algorithm
/// crates that own them.
#[test]
fn claim_hw_analysis_formulas_in_sync() {
    use gca_hirschberg::variants::{low_congestion, n_cells};
    use gca_hw_model::analysis::area_time;
    let params = CostParams::calibrated();
    for n in [2usize, 4, 7, 16, 33, 64] {
        assert_eq!(
            area_time(Variant::Main, n, &params).generations,
            complexity::total_generations(n),
            "main, n = {n}"
        );
        assert_eq!(
            area_time(Variant::NCells, n, &params).generations,
            n_cells::total_generations(n),
            "n-cells, n = {n}"
        );
        assert_eq!(
            area_time(Variant::LowCongestion, n, &params).generations,
            low_congestion::total_generations(n),
            "low-congestion, n = {n}"
        );
    }
}

/// Abstract/Section 3: "GCA and PRAM optimality criteria differ" — the GCA
/// run is not PRAM-work-optimal (work ≫ n² for dense graphs), yet its
/// hardware cost is dominated by memory, which the model quantifies.
#[test]
fn claim_optimality_criteria_differ() {
    let n = 32usize;
    let g = generators::gnp(n, 0.5, 6);
    let engine = Engine::sequential().with_instrumentation(Instrumentation::Counts);
    let run = HirschbergGca::new().with_engine(engine).run(&g).unwrap();

    // PRAM view: work = active-cell-steps ≫ sequential Θ(n²).
    let work = run.metrics.total_active();
    assert!(work > (n * n) as u64 * 4, "work {work}");

    // GCA view: the register bits (memory) of the field dominate…
    let params = CostParams::calibrated();
    let report = estimate_variant(n, Variant::Main, &params);
    // …in the sense that cost scales with the n² cell count, while time
    // stays polylogarithmic.
    assert!(report.register_bits as usize >= n * n);
    assert!(run.generations <= (complexity::ceil_log2(n) as u64 + 1).pow(2) * 3 + 50);
}
