//! Failure injection: the simulators must *detect* contract violations,
//! not silently tolerate them — bad pointers in GCA rules, access-policy
//! violations on the PRAM, malformed inputs at the graph layer.

use gca_engine::{
    Access, CellField, Engine, FieldShape, GcaError, GcaRule, Reads, StepCtx,
};
use gca_graphs::{io, GraphBuilder, GraphError};
use gca_pram::{AccessPolicy, Pram, PramError};

/// A rule whose pointer walks off the field after a few generations.
struct WalkOff;

impl GcaRule for WalkOff {
    type State = u32;

    fn access(&self, ctx: &StepCtx, shape: &FieldShape, index: usize, _own: &u32) -> Access {
        Access::One(index + shape.len() / 2 + ctx.generation as usize)
    }

    fn evolve(
        &self,
        _ctx: &StepCtx,
        _shape: &FieldShape,
        _index: usize,
        own: &u32,
        reads: Reads<'_, u32>,
    ) -> u32 {
        reads.first().copied().unwrap_or(*own)
    }
}

#[test]
fn engine_reports_out_of_range_pointer_with_context() {
    let shape = FieldShape::new(1, 8).unwrap();
    let mut field = CellField::new(shape, 0u32);
    let mut engine = Engine::sequential();
    // Generation 0: cell 4 reads 4 + 4 + 0 = 8 — out of range already.
    let err = engine.step(&mut field, &WalkOff, 0, 0).unwrap_err();
    match err {
        GcaError::PointerOutOfRange { cell, target, len, generation } => {
            assert_eq!(cell, 4);
            assert_eq!(target, 8);
            assert_eq!(len, 8);
            assert_eq!(generation, 0);
        }
        other => panic!("unexpected error {other:?}"),
    }
}

#[test]
fn engine_error_is_identical_across_backends() {
    let shape = FieldShape::new(1, 8).unwrap();
    let mut f1 = CellField::new(shape, 0u32);
    let mut f2 = CellField::new(shape, 0u32);
    let e1 = Engine::sequential().step(&mut f1, &WalkOff, 0, 0).unwrap_err();
    let e2 = Engine::parallel().step(&mut f2, &WalkOff, 0, 0).unwrap_err();
    // The parallel backend may surface any one of the violating cells, but
    // it must be a pointer violation over the same field.
    assert!(matches!(e1, GcaError::PointerOutOfRange { len: 8, .. }));
    assert!(matches!(e2, GcaError::PointerOutOfRange { len: 8, .. }));
}

#[test]
fn pram_detects_erew_read_conflicts() {
    let mut p = Pram::new(AccessPolicy::Erew, 4);
    let err = p
        .step(3, |_i, ctx| ctx.read(2).map(|_| ()))
        .unwrap_err();
    assert_eq!(err, PramError::ReadConflict { addr: 2, readers: 3 });
}

#[test]
fn pram_detects_crew_write_conflicts_and_rolls_back() {
    let mut p = Pram::new(AccessPolicy::Crew, 4);
    p.load(1, 99);
    let err = p.step(2, |i, ctx| ctx.write(1, i as u64)).unwrap_err();
    assert!(matches!(err, PramError::WriteConflict { addr: 1, .. }));
    assert_eq!(p.peek(1), 99, "failed step must not mutate memory");
}

#[test]
fn pram_detects_owner_violations() {
    let mut p = Pram::new(AccessPolicy::Crow, 3).with_owners(vec![0, 1, 2]);
    // Processor 0 writes cell 2 (owned by processor 2).
    let err = p
        .step(1, |_i, ctx| ctx.write(2, 5))
        .unwrap_err();
    assert_eq!(
        err,
        PramError::OwnerViolation { addr: 2, proc: 0, owner: 2 }
    );
}

#[test]
fn pram_detects_common_crcw_disagreement() {
    let mut p = Pram::new(AccessPolicy::CrcwCommon, 2);
    let err = p
        .step(2, |i, ctx| ctx.write(0, 10 + i as u64))
        .unwrap_err();
    assert!(matches!(err, PramError::CommonWriteMismatch { addr: 0, .. }));
}

#[test]
fn pram_rejects_out_of_range_addresses() {
    let mut p = Pram::new(AccessPolicy::Crew, 2);
    let err = p.step(1, |_i, ctx| ctx.read(7).map(|_| ())).unwrap_err();
    assert!(matches!(
        err,
        PramError::AddressOutOfRange { addr: 7, size: 2, proc: 0 }
    ));
}

#[test]
fn graph_layer_rejects_malformed_inputs() {
    assert!(matches!(
        GraphBuilder::new(3).edge(1, 1).build().unwrap_err(),
        GraphError::SelfLoop { node: 1 }
    ));
    assert!(matches!(
        GraphBuilder::new(3).edge(0, 9).build().unwrap_err(),
        GraphError::NodeOutOfRange { node: 9, n: 3 }
    ));
    assert!(io::from_edge_list("garbage").is_err());
    assert!(io::from_edge_list("n 2\n0 1 junk\n").is_err());
}

#[test]
fn error_messages_are_actionable() {
    // Every error names the entities involved; spot-check the formats used
    // in logs.
    let e = GcaError::PointerOutOfRange { cell: 1, target: 9, len: 4, generation: 3 };
    let s = e.to_string();
    assert!(s.contains("cell 1") && s.contains('9') && s.contains("generation 3"));

    let e = PramError::OwnerViolation { addr: 2, proc: 0, owner: 1 };
    let s = e.to_string();
    assert!(s.contains("processor 0") && s.contains("address 2"));
}
