//! Failure injection: the simulators must *detect* contract violations,
//! not silently tolerate them — bad pointers in GCA rules, access-policy
//! violations on the PRAM, malformed inputs at the graph layer.

use gca_engine::{
    Access, CellField, Domain, DomainViolationKind, Engine, FieldShape, GcaError, GcaRule,
    Instrumentation, Reads, StepCtx,
};
use gca_graphs::{generators, io, GraphBuilder, GraphError};
use gca_hirschberg::{ExecPath, FusedParallel, Gen, Machine};
use gca_pram::{AccessPolicy, Pram, PramError};
use std::sync::atomic::{AtomicU32, Ordering};

/// A rule whose pointer walks off the field after a few generations.
struct WalkOff;

impl GcaRule for WalkOff {
    type State = u32;

    fn access(&self, ctx: &StepCtx, shape: &FieldShape, index: usize, _own: &u32) -> Access {
        Access::One(index + shape.len() / 2 + ctx.generation as usize)
    }

    fn evolve(
        &self,
        _ctx: &StepCtx,
        _shape: &FieldShape,
        _index: usize,
        own: &u32,
        reads: Reads<'_, u32>,
    ) -> u32 {
        reads.first().copied().unwrap_or(*own)
    }
}

#[test]
fn engine_reports_out_of_range_pointer_with_context() {
    let shape = FieldShape::new(1, 8).unwrap();
    let mut field = CellField::new(shape, 0u32);
    let mut engine = Engine::sequential();
    // Generation 0: cell 4 reads 4 + 4 + 0 = 8 — out of range already.
    let err = engine.step(&mut field, &WalkOff, 0, 0).unwrap_err();
    match err {
        GcaError::PointerOutOfRange { cell, target, len, generation } => {
            assert_eq!(cell, 4);
            assert_eq!(target, 8);
            assert_eq!(len, 8);
            assert_eq!(generation, 0);
        }
        other => panic!("unexpected error {other:?}"),
    }
}

#[test]
fn engine_error_is_identical_across_backends() {
    let shape = FieldShape::new(1, 8).unwrap();
    let mut f1 = CellField::new(shape, 0u32);
    let mut f2 = CellField::new(shape, 0u32);
    let e1 = Engine::sequential().step(&mut f1, &WalkOff, 0, 0).unwrap_err();
    let e2 = Engine::parallel().step(&mut f2, &WalkOff, 0, 0).unwrap_err();
    // The parallel backend may surface any one of the violating cells, but
    // it must be a pointer violation over the same field.
    assert!(matches!(e1, GcaError::PointerOutOfRange { len: 8, .. }));
    assert!(matches!(e2, GcaError::PointerOutOfRange { len: 8, .. }));
}

#[test]
fn pram_detects_erew_read_conflicts() {
    let mut p = Pram::new(AccessPolicy::Erew, 4);
    let err = p
        .step(3, |_i, ctx| ctx.read(2).map(|_| ()))
        .unwrap_err();
    assert_eq!(err, PramError::ReadConflict { addr: 2, readers: 3 });
}

#[test]
fn pram_detects_crew_write_conflicts_and_rolls_back() {
    let mut p = Pram::new(AccessPolicy::Crew, 4);
    p.load(1, 99);
    let err = p.step(2, |i, ctx| ctx.write(1, i as u64)).unwrap_err();
    assert!(matches!(err, PramError::WriteConflict { addr: 1, .. }));
    assert_eq!(p.peek(1), 99, "failed step must not mutate memory");
}

#[test]
fn pram_detects_owner_violations() {
    let mut p = Pram::new(AccessPolicy::Crow, 3).with_owners(vec![0, 1, 2]);
    // Processor 0 writes cell 2 (owned by processor 2).
    let err = p
        .step(1, |_i, ctx| ctx.write(2, 5))
        .unwrap_err();
    assert_eq!(
        err,
        PramError::OwnerViolation { addr: 2, proc: 0, owner: 2 }
    );
}

#[test]
fn pram_detects_common_crcw_disagreement() {
    let mut p = Pram::new(AccessPolicy::CrcwCommon, 2);
    let err = p
        .step(2, |i, ctx| ctx.write(0, 10 + i as u64))
        .unwrap_err();
    assert!(matches!(err, PramError::CommonWriteMismatch { addr: 0, .. }));
}

#[test]
fn pram_rejects_out_of_range_addresses() {
    let mut p = Pram::new(AccessPolicy::Crew, 2);
    let err = p.step(1, |_i, ctx| ctx.read(7).map(|_| ())).unwrap_err();
    assert!(matches!(
        err,
        PramError::AddressOutOfRange { addr: 7, size: 2, proc: 0 }
    ));
}

#[test]
fn graph_layer_rejects_malformed_inputs() {
    assert!(matches!(
        GraphBuilder::new(3).edge(1, 1).build().unwrap_err(),
        GraphError::SelfLoop { node: 1 }
    ));
    assert!(matches!(
        GraphBuilder::new(3).edge(0, 9).build().unwrap_err(),
        GraphError::NodeOutOfRange { node: 9, n: 3 }
    ));
    assert!(io::from_edge_list("garbage").is_err());
    assert!(io::from_edge_list("n 2\n0 1 junk\n").is_err());
}

/// A rule that claims only row 0 does anything, but whose cell 6 (row 1)
/// writes a new state anyway — a stray write outside the declared domain.
struct StrayWrite;

impl GcaRule for StrayWrite {
    type State = u32;

    fn access(&self, _ctx: &StepCtx, _shape: &FieldShape, _index: usize, _own: &u32) -> Access {
        Access::None
    }

    fn evolve(
        &self,
        _ctx: &StepCtx,
        _shape: &FieldShape,
        index: usize,
        own: &u32,
        _reads: Reads<'_, u32>,
    ) -> u32 {
        if index == 6 {
            own + 1
        } else {
            *own
        }
    }

    fn is_active(&self, _ctx: &StepCtx, _shape: &FieldShape, index: usize, _own: &u32) -> bool {
        index < 4
    }

    fn domain(&self, _ctx: &StepCtx, _shape: &FieldShape) -> Domain {
        Domain::Rows(0..1)
    }

    fn name(&self) -> &str {
        "stray-write"
    }
}

#[test]
fn sanitizer_reports_stray_write_with_cell_and_generation() {
    let shape = FieldShape::new(2, 4).unwrap();
    let mut field = CellField::new(shape, 0u32);
    let before: Vec<u32> = field.states().to_vec();
    let mut engine = Engine::sequential().with_instrumentation(Instrumentation::Validate);
    let err = engine.step(&mut field, &StrayWrite, 4, 0).unwrap_err();
    assert_eq!(
        err,
        GcaError::DomainViolation {
            rule: "stray-write".into(),
            cell: 6,
            generation: 0,
            phase: 4,
            kind: DomainViolationKind::Write,
        }
    );
    // A rejected generation must not commit.
    assert_eq!(field.states(), &before[..]);
}

/// A rule that maintains its own mirror of the field and reads the
/// *current* generation from it: evolve(i) publishes its new state to the
/// mirror, then cell i+1 reads that freshly written value — exactly the
/// torn read the double-buffered snapshot contract forbids.
struct CurrentGenRead {
    mirror: Vec<AtomicU32>,
}

impl GcaRule for CurrentGenRead {
    type State = u32;

    fn access(&self, _ctx: &StepCtx, _shape: &FieldShape, _index: usize, _own: &u32) -> Access {
        Access::None
    }

    fn evolve(
        &self,
        _ctx: &StepCtx,
        _shape: &FieldShape,
        index: usize,
        own: &u32,
        _reads: Reads<'_, u32>,
    ) -> u32 {
        // "Read" the left neighbor through the mirror: in evaluation order
        // the mirror already carries this generation's traffic, not the
        // snapshot. The publish accumulates (like a real write port), so
        // the value observed depends on how often the neighbor has fired.
        let new = match index.checked_sub(1) {
            Some(left) => self.mirror[left].load(Ordering::Relaxed) + 1,
            None => own + 1,
        };
        self.mirror[index].fetch_add(new, Ordering::Relaxed);
        new
    }

    fn name(&self) -> &str {
        "current-gen-read"
    }
}

#[test]
fn sanitizer_reports_current_generation_read_with_cell_and_generation() {
    let shape = FieldShape::new(1, 4).unwrap();
    let mut field = CellField::new(shape, 0u32);
    let rule = CurrentGenRead {
        mirror: (0..4).map(|_| AtomicU32::new(0)).collect(),
    };
    let mut engine = Engine::sequential().with_instrumentation(Instrumentation::Validate);
    let err = engine.step(&mut field, &rule, 2, 1).unwrap_err();
    match err {
        GcaError::TornRead { rule, cell, generation, phase } => {
            assert_eq!(rule, "current-gen-read");
            // Cell 0 is pure (reads only `own`); the first torn cell is 1.
            assert_eq!(cell, 1);
            assert_eq!(generation, 0);
            assert_eq!(phase, 2);
        }
        other => panic!("expected TornRead, got {other:?}"),
    }
    assert_eq!(field.states(), &[0, 0, 0, 0]);
}

/// A rule whose domain hint lies by omission: out-of-domain cells keep
/// their state (no stray write) but cell 5 still issues a global read —
/// a cheat hinted stepping would silently reward with a wrong histogram.
struct HintLiar;

impl GcaRule for HintLiar {
    type State = u32;

    fn access(&self, _ctx: &StepCtx, _shape: &FieldShape, index: usize, _own: &u32) -> Access {
        if index == 5 {
            Access::One(0)
        } else {
            Access::None
        }
    }

    fn evolve(
        &self,
        _ctx: &StepCtx,
        _shape: &FieldShape,
        _index: usize,
        own: &u32,
        _reads: Reads<'_, u32>,
    ) -> u32 {
        *own
    }

    fn is_active(&self, _ctx: &StepCtx, _shape: &FieldShape, index: usize, _own: &u32) -> bool {
        index < 4
    }

    fn domain(&self, _ctx: &StepCtx, _shape: &FieldShape) -> Domain {
        Domain::Rows(0..1)
    }

    fn name(&self) -> &str {
        "hint-liar"
    }
}

#[test]
fn sanitizer_reports_out_of_domain_read() {
    // Cell 5 (row 1) reads cell 0 while hinted out of domain.
    let shape = FieldShape::new(2, 4).unwrap();
    let mut field = CellField::new(shape, 0u32);
    let mut engine = Engine::sequential().with_instrumentation(Instrumentation::Validate);
    let err = engine.step(&mut field, &HintLiar, 0, 0).unwrap_err();
    assert_eq!(
        err,
        GcaError::DomainViolation {
            rule: "hint-liar".into(),
            cell: 5,
            generation: 0,
            phase: 0,
            kind: DomainViolationKind::Read,
        }
    );
}

/// A rule honest about writes and reads whose only lie is activity
/// accounting outside its domain.
struct ActiveLiar;

impl GcaRule for ActiveLiar {
    type State = u32;

    fn access(&self, _ctx: &StepCtx, _shape: &FieldShape, _index: usize, _own: &u32) -> Access {
        Access::None
    }

    fn evolve(
        &self,
        _ctx: &StepCtx,
        _shape: &FieldShape,
        _index: usize,
        own: &u32,
        _reads: Reads<'_, u32>,
    ) -> u32 {
        *own
    }

    fn is_active(&self, _ctx: &StepCtx, _shape: &FieldShape, index: usize, _own: &u32) -> bool {
        index == 7
    }

    fn domain(&self, _ctx: &StepCtx, _shape: &FieldShape) -> Domain {
        Domain::Rows(0..1)
    }

    fn name(&self) -> &str {
        "active-liar"
    }
}

#[test]
fn sanitizer_reports_active_lie() {
    let shape = FieldShape::new(2, 4).unwrap();
    let mut field = CellField::new(shape, 0u32);
    let mut engine = Engine::sequential().with_instrumentation(Instrumentation::Validate);
    let err = engine.step(&mut field, &ActiveLiar, 9, 0).unwrap_err();
    assert_eq!(
        err,
        GcaError::DomainViolation {
            rule: "active-liar".into(),
            cell: 7,
            generation: 0,
            phase: 9,
            kind: DomainViolationKind::Active,
        }
    );
}

#[test]
fn fused_replay_catches_seeded_kernel_mutation() {
    // A correct fused run passes the differential replay...
    let g = generators::gnp(10, 0.4, 21);
    let mut m = Machine::with_engine(
        &g,
        Engine::sequential().with_instrumentation(Instrumentation::Validate),
    )
    .unwrap()
    .with_exec(ExecPath::Fused);
    m.init().unwrap();
    m.run_iteration().unwrap();

    // ...and a single corrupted cell in a fused generation is pinpointed.
    let mut m = Machine::with_engine(
        &g,
        Engine::sequential().with_instrumentation(Instrumentation::Validate),
    )
    .unwrap()
    .with_exec(ExecPath::Fused);
    m.init().unwrap();
    let target = 2;
    m.seed_fused_fault(target);
    let err = m.run_iteration().unwrap_err();
    match err {
        GcaError::KernelDivergence { cell, generation, phase } => {
            assert_eq!(cell, target);
            assert_eq!(generation, 1, "fault lands on the first post-init generation");
            assert_eq!(phase, Gen::BroadcastC.number());
        }
        other => panic!("expected KernelDivergence, got {other:?}"),
    }
}

#[test]
fn validator_catches_overlapping_parallel_partition() {
    // Safe Rust plus `par_chunks_mut`'s disjoint borrows make a genuinely
    // overlapping write partition unrepresentable — the borrow checker
    // rejects two workers aliasing a row. So the injector seeds the
    // *observable effect* of an overlap instead: one duplicated
    // congestion-histogram contribution on the first parallel counting
    // broadcast, exactly the residue a row double-counted by two workers
    // would leave. The differential replay must pinpoint it.
    let g = generators::gnp(10, 0.4, 21);
    let mut m = Machine::with_engine(
        &g,
        Engine::sequential().with_instrumentation(Instrumentation::Validate),
    )
    .unwrap()
    .with_exec(ExecPath::FusedParallel(FusedParallel {
        workers: 2,
        threshold: Some(0),
    }));
    m.init().unwrap();
    m.seed_partition_fault();
    let err = m.run_iteration().unwrap_err();
    match err {
        GcaError::KernelDivergence { cell, generation, phase } => {
            assert_eq!(cell, 0, "the duplicated read lands on cell 0's histogram slot");
            assert_eq!(generation, 1, "fault fires on the first post-init generation");
            assert_eq!(phase, Gen::BroadcastC.number());
        }
        other => panic!("expected KernelDivergence, got {other:?}"),
    }

    // Without the seeded fault the same parallel configuration replays
    // cleanly — the detector is sensitive, not trigger-happy.
    let mut m = Machine::with_engine(
        &g,
        Engine::sequential().with_instrumentation(Instrumentation::Validate),
    )
    .unwrap()
    .with_exec(ExecPath::FusedParallel(FusedParallel {
        workers: 2,
        threshold: Some(0),
    }));
    m.init().unwrap();
    m.run_iteration().unwrap();
}

#[test]
fn error_messages_are_actionable() {
    // Every error names the entities involved; spot-check the formats used
    // in logs.
    let e = GcaError::PointerOutOfRange { cell: 1, target: 9, len: 4, generation: 3 };
    let s = e.to_string();
    assert!(s.contains("cell 1") && s.contains('9') && s.contains("generation 3"));

    let e = PramError::OwnerViolation { addr: 2, proc: 0, owner: 1 };
    let s = e.to_string();
    assert!(s.contains("processor 0") && s.contains("address 2"));
}

// --- Static-analysis layers (gca-analysis + gca-lint) -----------------------
//
// The same principle as above, one level up: the verification layers
// themselves must *detect* seeded violations, not vacuously pass.

#[test]
fn symbolic_layer_detects_a_perturbed_coefficient() {
    use gca_analysis::symbolic::{self, Monomial, Quantity, Rat, SymbolicError};

    let mut model = symbolic::derive().expect("derivation succeeds");
    // The paper's total is 1 + log n·(3 log n + 8); bump the "3".
    let sq_log = Monomial { n_pow: 0, log_pow: 2 };
    model.total_generations.set_coefficient(sq_log, Rat::integer(4));
    let err = symbolic::verify(&model, 12).expect_err("perturbation must be caught");
    match err {
        SymbolicError::CoefficientMismatch { quantity, monomial, derived, expected, .. } => {
            assert_eq!(quantity, Quantity::TotalGenerations);
            assert_eq!(monomial, sq_log);
            assert_eq!(derived, Rat::integer(4));
            assert_eq!(expected, Rat::integer(3));
        }
        other => panic!("expected CoefficientMismatch, got {other:?}"),
    }
}

#[test]
fn modelcheck_layer_detects_each_seeded_fault_class() {
    use gca_analysis::modelcheck::{self, Fault, ModelCheckViolation};

    let label = modelcheck::check_all_seeded(2, Some(Fault::WrongLabel))
        .expect_err("label fault must surface");
    assert!(matches!(label.violation, ModelCheckViolation::Labels { .. }), "{label}");

    let gens = modelcheck::check_all_seeded(2, Some(Fault::WrongGenerationCount))
        .expect_err("generation fault must surface");
    assert!(
        matches!(gens.violation, ModelCheckViolation::Generations { .. }),
        "{gens}"
    );

    let detect = modelcheck::check_all_seeded(2, Some(Fault::DetectMismatch))
        .expect_err("detect fault must surface");
    assert!(
        matches!(detect.violation, ModelCheckViolation::DetectLabels { .. }),
        "{detect}"
    );
}

#[test]
fn lint_layer_detects_a_seeded_violation_of_each_rule() {
    use gca_lint::{lint_source, FileClass, RuleId};

    let class = FileClass {
        library: true,
        hot_path: true,
        word_home: false,
        kernel: true,
    };
    let seeded = [
        (RuleId::NoUnwrap, "fn f() { x.unwrap(); }"),
        (RuleId::TruncatingCast, "fn f(x: u64) -> u32 { x as u32 }"),
        (
            RuleId::RuleFieldAccess,
            "impl GcaRule for R { fn g(&self, f: &F) { f.states_mut(); } }",
        ),
        (RuleId::WordWidth, "fn f(i: usize) -> usize { i / 64 }"),
        (RuleId::WordWidth, "fn f(lane: u32) -> u64 { 1u64 << lane }"),
        (
            RuleId::RowRangePurity,
            "fn bad_rows(seg: &mut [u32], base_row: usize, n: usize) -> usize {\n\
                 seg[base_row * n] = 0; 0\n\
             }",
        ),
    ];
    for (rule, src) in seeded {
        let (violations, _) = lint_source("seeded.rs", src, class);
        assert!(
            violations.iter().any(|v| v.rule == rule),
            "rule {rule} missed its seeded violation in {src:?}: {violations:?}"
        );
    }
}

#[test]
fn lint_config_rejects_unknown_rules() {
    use gca_lint::{ConfigError, LintConfig};

    let err = LintConfig::parse("[allow.no-such-rule]\npaths = []\n")
        .expect_err("typo in lint.toml must not silently allow nothing");
    assert!(matches!(err, ConfigError::UnknownRule { .. }), "{err}");
}
