//! Cross-implementation equivalence: every machine in the workspace — the
//! GCA main machine (sequential and parallel backends, fixed and
//! early-exit schedules), the n-cell, low-congestion and two-handed
//! variants, the transitive-closure machine, and the PRAM reference — must
//! produce the exact canonical labeling of the sequential baselines, over
//! the whole workload generator zoo. The baseline itself is first checked
//! by the oracle-free verifier.

use gca_algorithms::transitive_closure;
use gca_engine::Engine;
use gca_graphs::connectivity::{bfs_components, dfs_components, union_find_components_dense};
use gca_graphs::verify::verify_components;
use gca_graphs::{generators, AdjacencyMatrix};
use gca_hirschberg::variants::{low_congestion, n_cells, two_handed};
use gca_hirschberg::HirschbergGca;
use gca_pram::hirschberg_ref;

fn check_all(graph: &AdjacencyMatrix, context: &str) {
    let expected = union_find_components_dense(graph);

    let list = graph.to_adjacency_list();
    // The "oracle" itself is verified oracle-free first.
    verify_components(&list, &expected)
        .unwrap_or_else(|e| panic!("union-find failed verification on {context}: {e}"));
    assert_eq!(bfs_components(&list), expected, "BFS deviates: {context}");
    assert_eq!(dfs_components(&list), expected, "DFS deviates: {context}");

    let gca = HirschbergGca::new().run(graph).expect("gca run");
    assert_eq!(gca.labels, expected, "GCA main deviates: {context}");

    let gca_par = HirschbergGca::new()
        .with_engine(Engine::parallel())
        .run(graph)
        .expect("gca parallel run");
    assert_eq!(gca_par.labels, expected, "GCA parallel deviates: {context}");

    let gca_early = HirschbergGca::new()
        .early_exit(true)
        .run(graph)
        .expect("gca early-exit run");
    assert_eq!(gca_early.labels, expected, "GCA early-exit deviates: {context}");

    let ncell = n_cells::run(graph).expect("n-cell run");
    assert_eq!(ncell.labels, expected, "n-cell deviates: {context}");

    let lc = low_congestion::run(graph).expect("low-congestion run");
    assert_eq!(lc.labels, expected, "low-congestion deviates: {context}");

    let th = two_handed::run(graph).expect("two-handed run");
    assert_eq!(th.labels, expected, "two-handed deviates: {context}");

    let pram = hirschberg_ref::connected_components(graph).expect("pram run");
    assert_eq!(pram.labels, expected, "PRAM reference deviates: {context}");

    let tc = transitive_closure::connected_components(graph).expect("closure run");
    assert_eq!(tc, expected, "closure machine deviates: {context}");
}

#[test]
fn structured_families() {
    for n in [2usize, 3, 4, 5, 7, 8, 9, 16, 17] {
        check_all(&generators::empty(n), &format!("empty({n})"));
        check_all(&generators::complete(n), &format!("complete({n})"));
        check_all(&generators::path(n), &format!("path({n})"));
        check_all(&generators::ring(n), &format!("ring({n})"));
        check_all(&generators::star(n), &format!("star({n})"));
    }
}

#[test]
fn grids_and_rings() {
    check_all(&generators::grid(3, 5), "grid(3,5)");
    check_all(&generators::grid(4, 4), "grid(4,4)");
    check_all(&generators::bridged_rings(3, 4), "bridged_rings(3,4)");
    check_all(&generators::clique_islands(3, 4), "clique_islands(3,4)");
}

#[test]
fn random_density_sweep() {
    for (i, p) in [0.02, 0.08, 0.2, 0.5, 0.9].iter().enumerate() {
        for seed in 0..3 {
            let g = generators::gnp(18, *p, 100 * i as u64 + seed);
            check_all(&g, &format!("gnp(18, {p}, seed {seed})"));
        }
    }
}

#[test]
fn random_forests() {
    for k in [1usize, 2, 5, 10] {
        for seed in 0..3 {
            let g = generators::random_forest(20, k, seed);
            check_all(&g, &format!("forest(20, {k}, seed {seed})"));
        }
    }
}

#[test]
fn planted_partitions_recovered() {
    for seed in 0..5 {
        let planted = generators::planted_components(26, 4, 0.4, seed);
        let expected = planted.expected_labels();
        let gca = HirschbergGca::new().run(&planted.graph).expect("run");
        assert_eq!(gca.labels, expected, "seed {seed}");
        check_all(&planted.graph, &format!("planted seed {seed}"));
    }
}

#[test]
fn trivial_sizes() {
    check_all(&generators::empty(0), "empty(0)");
    check_all(&generators::empty(1), "empty(1)");
    let two = gca_graphs::GraphBuilder::new(2).edge(0, 1).build().unwrap();
    check_all(&two, "K2");
}

#[test]
fn single_giant_component() {
    let g = generators::random_tree(33, 5);
    let gca = HirschbergGca::new().run(&g).expect("run");
    assert_eq!(gca.labels.component_count(), 1);
    assert!(gca.labels.as_slice().iter().all(|&l| l == 0));
    check_all(&g, "random_tree(33)");
}
