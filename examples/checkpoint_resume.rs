//! Scenario: checkpointing a long GCA run.
//!
//! Field snapshots capture the complete machine state between iterations;
//! they serialize to JSON, so a run can be stopped, shipped elsewhere, and
//! resumed bit-exactly — the workflow for long simulated campaigns.
//!
//! Run with: `cargo run --example checkpoint_resume`

use hirschberg_gca_repro::engine::snapshot::FieldSnapshot;
use hirschberg_gca_repro::graphs::generators;
use hirschberg_gca_repro::hirschberg::{complexity, HCell, HirschbergGca, Machine};

fn main() {
    let n = 32;
    let graph = generators::gnp(n, 0.15, 20_260_705);
    let total_iterations = complexity::outer_iterations(n);
    println!(
        "graph: {} nodes, {} edges; schedule: {} outer iterations",
        graph.n(),
        graph.edge_count(),
        total_iterations
    );

    // Phase 1: run the first half of the iterations, then checkpoint.
    let half = total_iterations / 2;
    let mut machine = Machine::new(&graph).expect("machine");
    machine.init().expect("init");
    for _ in 0..half {
        machine.run_iteration().expect("iteration");
    }
    let snapshot = machine.snapshot();
    let json = serde_json::to_string(&snapshot).expect("serialize");
    println!(
        "checkpoint after {half} iterations: {} cells, {} bytes of JSON, \
         {} components so far",
        snapshot.len(),
        json.len(),
        machine.labels().expect("labels").component_count()
    );
    drop(machine); // the first machine is gone — only the JSON survives

    // Phase 2: somewhere else, later — restore and finish the run.
    let restored: FieldSnapshot<HCell> = serde_json::from_str(&json).expect("parse");
    let mut resumed = Machine::new(&graph).expect("machine");
    resumed.restore(&restored).expect("restore");
    for _ in half..total_iterations {
        resumed.run_iteration().expect("iteration");
    }

    // The resumed run must agree with an uninterrupted one exactly.
    let reference = HirschbergGca::new().run(&graph).expect("reference");
    let labels = resumed.labels().expect("labels");
    assert_eq!(labels, reference.labels);
    println!(
        "resumed run finished: {} components, identical to the uninterrupted run",
        labels.component_count()
    );
}
