//! Scenario: community detection in a synthetic social network.
//!
//! Friend groups are disconnected clusters of an acquaintance graph;
//! finding them is exactly connected-components. This example plants a
//! known community structure, recovers it with all four machines in the
//! workspace (GCA main, GCA n-cell, GCA low-congestion, PRAM reference),
//! and reports the cost profile of each — the experiment a systems group
//! would run before committing one of the designs to hardware.
//!
//! Run with: `cargo run --example social_network`

use hirschberg_gca_repro::graphs::generators;
use hirschberg_gca_repro::hirschberg::variants::{low_congestion, n_cells};
use hirschberg_gca_repro::hirschberg::HirschbergGca;
use hirschberg_gca_repro::pram::hirschberg_ref;

fn main() {
    let people = 48;
    let communities = 6;
    let planted = generators::planted_components(people, communities, 0.35, 20_260_705);
    let graph = &planted.graph;
    println!(
        "social network: {} people, {} friendships, {} planted communities",
        graph.n(),
        graph.edge_count(),
        communities
    );

    let expected = planted.expected_labels();

    // 1. The paper's n²-cell GCA.
    let main = HirschbergGca::new().run(graph).expect("GCA failed");
    assert!(main.labels.same_partition(&expected));
    println!(
        "GCA (n^2 cells):      {} generations, worst delta {}",
        main.generations,
        main.max_congestion()
    );

    // 2. The n-cell variant (fewer cells, more generations).
    let ncell = n_cells::run(graph).expect("n-cell failed");
    assert!(ncell.labels.same_partition(&expected));
    println!(
        "GCA (n cells):        {} generations, worst delta {}",
        ncell.generations,
        ncell.metrics.max_congestion()
    );

    // 3. The low-congestion variant (tree reads, extended cells).
    let lc = low_congestion::run(graph).expect("low-congestion failed");
    assert!(lc.labels.same_partition(&expected));
    println!(
        "GCA (low congestion): {} generations, static delta {}",
        lc.generations,
        lc.static_max_congestion()
    );

    // 4. The PRAM reference (Listing 1, CROW).
    let pram = hirschberg_ref::connected_components(graph).expect("PRAM failed");
    assert!(pram.labels.same_partition(&expected));
    println!(
        "PRAM reference:       {} steps, work {}, worst delta {}",
        pram.time, pram.work, pram.max_congestion
    );

    // Every machine found the same communities.
    println!();
    println!("largest community: {} people", main.labels.max_component_size());
    for (label, members) in main.labels.components() {
        println!("community {label}: {} members {:?}", members.len(), members);
    }
}
