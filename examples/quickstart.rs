//! Quickstart: connected components on a Global Cellular Automaton.
//!
//! Builds a small undirected graph, runs the paper's 12-generation GCA
//! algorithm, and cross-checks the result against a sequential baseline.
//! Also demonstrates the GCA operation principle of Figure 1: every cell
//! computes a pointer from its own state, reads the addressed cell, and
//! rewrites only itself — all cells synchronously.
//!
//! Run with: `cargo run --example quickstart`

use hirschberg_gca_repro::graphs::connectivity::union_find_components_dense;
use hirschberg_gca_repro::graphs::GraphBuilder;
use hirschberg_gca_repro::hirschberg::{complexity, HirschbergGca};

fn main() {
    // Two components: a triangle {0, 1, 2} and an edge {3, 4}; node 5 is
    // isolated.
    let graph = GraphBuilder::new(6)
        .cycle(&[0, 1, 2])
        .edge(3, 4)
        .build()
        .expect("valid graph");

    println!("input: {} nodes, {} edges", graph.n(), graph.edge_count());

    // Run the GCA algorithm (n(n+1) cells, O(log^2 n) generations).
    let run = HirschbergGca::new().run(&graph).expect("GCA run failed");

    println!("component labels (min node index per component):");
    for (node, label) in run.labels.as_slice().iter().enumerate() {
        println!("  node {node} -> component {label}");
    }
    println!("components: {}", run.labels.component_count());
    println!(
        "generations: {} (formula 1 + log n (3 log n + 8) = {})",
        run.generations,
        complexity::total_generations(graph.n())
    );
    println!("worst congestion delta: {}", run.max_congestion());

    // The sequential ground truth must agree exactly.
    let expected = union_find_components_dense(&graph);
    assert_eq!(run.labels, expected, "GCA must match the baseline");
    println!("matches sequential union-find: yes");
}
