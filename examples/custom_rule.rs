//! Scenario: writing your own GCA algorithm on the engine.
//!
//! The engine is not tied to Hirschberg's algorithm — any synchronous,
//! globally-reading, locally-writing computation is a GCA rule. This
//! example implements two classics from the paper's list of GCA-suitable
//! applications ("hypercube algorithms, numerical algorithms"):
//!
//! * **parallel prefix sums** by recursive doubling (`⌈log₂ n⌉`
//!   generations), and
//! * **list ranking** by pointer jumping — the same primitive as the
//!   algorithm's generation 10, on a linked list instead of a component
//!   forest.
//!
//! Run with: `cargo run --example custom_rule`

use hirschberg_gca_repro::engine::{
    Access, CellField, Engine, FieldShape, GcaRule, Reads, StepCtx,
};

/// Prefix-sum cell: the running sum.
#[derive(Clone, Copy, Debug, PartialEq)]
struct SumCell {
    value: u64,
}

/// Recursive-doubling prefix sums: in sub-generation `s`, every cell
/// `i >= 2^s` adds the value of cell `i - 2^s`.
struct PrefixSum;

impl GcaRule for PrefixSum {
    type State = SumCell;

    fn access(&self, ctx: &StepCtx, _shape: &FieldShape, index: usize, _own: &SumCell) -> Access {
        let stride = 1usize << ctx.subgeneration;
        if index >= stride {
            Access::One(index - stride)
        } else {
            Access::None
        }
    }

    fn evolve(
        &self,
        _ctx: &StepCtx,
        _shape: &FieldShape,
        _index: usize,
        own: &SumCell,
        reads: Reads<'_, SumCell>,
    ) -> SumCell {
        match reads.first() {
            Some(left) => SumCell {
                value: own.value + left.value,
            },
            None => *own,
        }
    }

    fn name(&self) -> &str {
        "prefix-sum"
    }
}

/// List-ranking cell: successor pointer and rank-so-far.
#[derive(Clone, Copy, Debug, PartialEq)]
struct RankCell {
    /// Next element in the list (self-pointer at the tail).
    next: usize,
    /// Distance to the tail accumulated so far.
    rank: u64,
}

/// Pointer jumping: `rank += rank(next); next = next(next)`.
struct ListRank;

impl GcaRule for ListRank {
    type State = RankCell;

    fn access(&self, _ctx: &StepCtx, _shape: &FieldShape, index: usize, own: &RankCell) -> Access {
        if own.next == index {
            Access::None // tail
        } else {
            Access::One(own.next)
        }
    }

    fn evolve(
        &self,
        _ctx: &StepCtx,
        _shape: &FieldShape,
        _index: usize,
        own: &RankCell,
        reads: Reads<'_, RankCell>,
    ) -> RankCell {
        match reads.first() {
            Some(succ) => RankCell {
                next: succ.next,
                rank: own.rank + succ.rank,
            },
            None => *own,
        }
    }

    fn name(&self) -> &str {
        "list-ranking"
    }
}

fn log2_ceil(n: usize) -> u32 {
    if n <= 1 {
        0
    } else {
        usize::BITS - (n - 1).leading_zeros()
    }
}

fn main() {
    // --- Prefix sums over 10 values -------------------------------------
    let values = [3u64, 1, 4, 1, 5, 9, 2, 6, 5, 3];
    let shape = FieldShape::new(1, values.len()).expect("shape");
    let mut field = CellField::from_states(
        shape,
        values.iter().map(|&v| SumCell { value: v }).collect(),
    )
    .expect("field");
    let mut engine = Engine::sequential();
    for s in 0..log2_ceil(values.len()) {
        engine.step(&mut field, &PrefixSum, 0, s).expect("step");
    }
    let prefix: Vec<u64> = field.states().iter().map(|c| c.value).collect();
    println!("input:        {values:?}");
    println!("prefix sums:  {prefix:?}  ({} generations)", engine.generation());
    // Verify against the sequential scan.
    let mut acc = 0;
    for (i, &v) in values.iter().enumerate() {
        acc += v;
        assert_eq!(prefix[i], acc);
    }

    // --- List ranking over a scrambled list ------------------------------
    // The list visits cells in the order 2 -> 0 -> 3 -> 1 -> 4 (tail).
    let successors = [3usize, 4, 0, 1, 4];
    let n = successors.len();
    let shape = FieldShape::new(1, n).expect("shape");
    let mut field = CellField::from_states(
        shape,
        successors
            .iter()
            .enumerate()
            .map(|(i, &next)| RankCell {
                next,
                rank: u64::from(next != i),
            })
            .collect(),
    )
    .expect("field");
    let mut engine = Engine::sequential();
    for s in 0..log2_ceil(n) {
        engine.step(&mut field, &ListRank, 1, s).expect("step");
    }
    let ranks: Vec<u64> = field.states().iter().map(|c| c.rank).collect();
    println!();
    println!("list successors: {successors:?}");
    println!("distance to tail: {ranks:?}  ({} generations)", engine.generation());
    // The list visits 2 -> 0 -> 3 -> 1 -> 4, so the hop counts to the tail
    // are 4, 3, 2, 1, 0 along the list — i.e. per cell index:
    assert_eq!(ranks, vec![3, 1, 4, 2, 0]);
}
