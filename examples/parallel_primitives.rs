//! Scenario: the wider GCA algorithm library (the paper's future work).
//!
//! Beyond connected components, the same engine hosts the other classic
//! PRAM primitives — this example runs each of them through the
//! `gca-algorithms` crate: bitonic sorting, prefix scans, list ranking,
//! transitive closure, and a classical cellular automaton embedded in the
//! GCA (Game of Life).
//!
//! Run with: `cargo run --example parallel_primitives`

use hirschberg_gca_repro::algorithms::{bitonic, cellular, list_ranking, scan, transitive_closure};
use hirschberg_gca_repro::graphs::generators;

fn main() {
    // --- Bitonic sort: congestion-1 compare-exchange waves ---------------
    let keys = [170u64, 45, 75, 90, 2, 802, 24, 66, 17];
    let sorted = bitonic::sort(&keys).expect("sort failed");
    println!("bitonic sort ({} generations for {} keys):", bitonic::sort_generations(keys.len()), keys.len());
    println!("  {keys:?}\n  -> {sorted:?}");
    assert!(bitonic::is_sorted(&sorted));

    // --- Prefix scans over different monoids ------------------------------
    let values = [3u64, 1, 4, 1, 5, 9, 2, 6];
    let sums = scan::inclusive_scan(&values, &scan::SumMonoid).expect("scan failed");
    let maxes = scan::inclusive_scan(&values, &scan::MaxMonoid).expect("scan failed");
    println!("\nprefix scans ({} generations for {} values):", scan::scan_generations(values.len()), values.len());
    println!("  input: {values:?}");
    println!("  +:     {sums:?}");
    println!("  max:   {maxes:?}");

    // --- List ranking by pointer jumping ----------------------------------
    let successors = [3usize, 4, 0, 1, 4]; // the list 2 -> 0 -> 3 -> 1 -> 4
    let ranks = list_ranking::rank_list(&successors).expect("ranking failed");
    println!("\nlist ranking ({} generations):", list_ranking::ranking_generations(successors.len()));
    println!("  successors: {successors:?}");
    println!("  hops to tail: {ranks:?}");

    // --- Transitive closure (Hirschberg's companion problem) --------------
    let graph = generators::path(6);
    let tc = transitive_closure::run(&graph).expect("closure failed");
    println!(
        "\ntransitive closure of a 6-path ({} generations, congestion <= {}):",
        tc.generations, tc.max_congestion
    );
    println!(
        "  node 0 reaches node 5: {} (pairs: {})",
        tc.closure.reaches(0, 5),
        tc.closure.pair_count()
    );
    println!("  component labels via closure: {:?}", tc.labels.as_slice());

    // --- A classical CA inside the GCA ------------------------------------
    let mut life = cellular::Life::from_ascii(&[
        ".....",
        "..#..",
        "..#..",
        "..#..",
        ".....",
    ])
    .expect("board");
    life.step().expect("life step");
    println!("\nGame of Life, one CA step = {} GCA generations:", cellular::GENERATIONS_PER_STEP);
    for row in life.to_ascii() {
        println!("  {row}");
    }
    assert_eq!(life.population(), 3);
}
