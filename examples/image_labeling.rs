//! Scenario: connected-component labeling of a binary image.
//!
//! Image segmentation is the classic application of connected components:
//! foreground pixels that touch (4-neighborhood) belong to the same blob.
//! The pixels become graph nodes, adjacency becomes edges, and the paper's
//! GCA labels every blob with its smallest pixel index — the kind of
//! massively parallel, regular workload the GCA-on-FPGA platform targets.
//!
//! Run with: `cargo run --example image_labeling`

use hirschberg_gca_repro::graphs::{AdjacencyMatrix, Labeling};
use hirschberg_gca_repro::hirschberg::HirschbergGca;

const IMAGE: &[&str] = &[
    "..##....####",
    "..##......#.",
    "..........#.",
    ".#####....#.",
    ".#...#......",
    ".#####...##.",
    ".........##.",
    "###.........",
    "#.#....#....",
    "###....###..",
];

/// Builds the pixel graph: one node per pixel (row-major), edges between
/// 4-adjacent foreground pixels. Background pixels stay isolated nodes and
/// are filtered out of the labeling afterwards.
#[allow(clippy::needless_range_loop)]
fn pixel_graph(image: &[&str]) -> (AdjacencyMatrix, usize, usize) {
    let rows = image.len();
    let cols = image[0].len();
    let mut g = AdjacencyMatrix::new(rows * cols);
    let fg = |r: usize, c: usize| image[r].as_bytes()[c] == b'#';
    for r in 0..rows {
        assert_eq!(image[r].len(), cols, "ragged image row {r}");
        for c in 0..cols {
            if !fg(r, c) {
                continue;
            }
            let v = r * cols + c;
            if c + 1 < cols && fg(r, c + 1) {
                g.add_edge(v, v + 1).expect("in range");
            }
            if r + 1 < rows && fg(r + 1, c) {
                g.add_edge(v, v + cols).expect("in range");
            }
        }
    }
    (g, rows, cols)
}

fn render(image: &[&str], labels: &Labeling, cols: usize) -> String {
    // Compact blob ids: map each component label to a letter.
    let mut next = 0u8;
    let mut ids = std::collections::HashMap::new();
    let mut out = String::new();
    for (r, line) in image.iter().enumerate() {
        for (c, ch) in line.bytes().enumerate() {
            if ch == b'#' {
                let label = labels.label(r * cols + c);
                let id = *ids.entry(label).or_insert_with(|| {
                    let v = next;
                    next += 1;
                    v
                });
                out.push((b'A' + id) as char);
            } else {
                out.push('.');
            }
        }
        out.push('\n');
    }
    out
}

fn main() {
    let (graph, rows, cols) = pixel_graph(IMAGE);
    println!(
        "image: {rows}x{cols} pixels -> {} nodes, {} edges; GCA field: {} cells",
        graph.n(),
        graph.edge_count(),
        graph.n() * (graph.n() + 1)
    );

    let run = HirschbergGca::new().run(&graph).expect("GCA failed");

    // Count only foreground blobs (components containing a '#').
    let foreground: std::collections::HashSet<usize> = IMAGE
        .iter()
        .enumerate()
        .flat_map(|(r, line)| {
            line.bytes()
                .enumerate()
                .filter(|&(_, ch)| ch == b'#')
                .map(move |(c, _)| r * cols + c)
        })
        .collect();
    let blob_labels: std::collections::HashSet<usize> = foreground
        .iter()
        .map(|&v| run.labels.label(v))
        .collect();

    println!("blobs found: {}", blob_labels.len());
    println!("generations: {}", run.generations);
    println!();
    println!("labeled image (one letter per blob):");
    print!("{}", render(IMAGE, &run.labels, cols));

    // Sanity: the ring blob (rows 3-5) must be a single component.
    let ring_a = 3 * cols + 1;
    let ring_b = 5 * cols + 5;
    assert_eq!(run.labels.label(ring_a), run.labels.label(ring_b));
}
