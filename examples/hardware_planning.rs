//! Scenario: sizing a GCA design for an FPGA budget.
//!
//! Before committing a design to hardware, a designer wants to know: which
//! variant fits my device at which problem size, and what clock can I
//! expect? This example walks the calibrated Section-4 cost model through
//! that decision, reproducing the paper's published synthesis point along
//! the way.
//!
//! Run with: `cargo run --example hardware_planning`

use hirschberg_gca_repro::hirschberg::complexity;
use hirschberg_gca_repro::hw::{
    estimate_variant, paper_reference, CostParams, Device, Variant, EP2C70,
};

fn main() {
    let params = CostParams::calibrated();

    // 1. Reproduce the paper's data point.
    let paper = paper_reference();
    let model = estimate_variant(16, Variant::Main, &params);
    println!("published point (n = 16, {}):", EP2C70.name);
    println!(
        "  paper : {} cells, {} LEs, {} register bits, {:.0} MHz",
        paper.cells, paper.logic_elements, paper.register_bits, paper.fmax_mhz
    );
    println!(
        "  model : {} cells, {} LEs, {} register bits, {:.0} MHz",
        model.cells, model.logic_elements, model.register_bits, model.fmax_mhz
    );
    println!();

    // 2. How far does each variant scale on the paper's device?
    for variant in [Variant::Main, Variant::NCells, Variant::LowCongestion] {
        let max_n = EP2C70.max_n(variant, &params);
        let at_max = estimate_variant(max_n, variant, &params);
        println!(
            "{variant:?}: max n = {max_n} on the EP2C70 ({} LEs, {:.0}% full, ~{:.0} MHz)",
            at_max.logic_elements,
            100.0 * EP2C70.utilization(&at_max),
            at_max.fmax_mhz
        );
    }
    println!();

    // 3. Estimate solve latency at the largest fitting size: generations ×
    //    clock period.
    let n = EP2C70.max_n(Variant::Main, &params);
    let report = estimate_variant(n, Variant::Main, &params);
    let generations = complexity::total_generations(n);
    let us = generations as f64 / report.fmax_mhz; // MHz → generations/µs
    println!(
        "main design at n = {n}: {generations} generations @ {:.0} MHz -> ~{us:.2} us per solve",
        report.fmax_mhz
    );

    // 4. What would a bigger device buy? A hypothetical 10× part.
    let big = Device {
        name: "hypothetical 10x device",
        logic_elements: EP2C70.logic_elements * 10,
        register_bits: EP2C70.register_bits * 10,
    };
    for variant in [Variant::Main, Variant::NCells] {
        println!(
            "{}: max n with {variant:?} = {}",
            big.name,
            big.max_n(variant, &params)
        );
    }
    println!();
    println!("(n^2 cells mean a 10x device only ~tripples the feasible n — the");
    println!("cost-dominance of the cell field is the paper's central trade-off.)");
}
