//! Minimal, dependency-free work-alike of the `criterion` benchmarking API
//! this workspace uses: `Criterion`, benchmark groups, `Bencher::iter`,
//! `BenchmarkId`, `Throughput`, and the `criterion_group!`/`criterion_main!`
//! macros.
//!
//! The container this repository builds in has no crates.io registry, so the
//! workspace vendors tiny implementations of its external dependencies (see
//! `DESIGN.md`). Measurement is deliberately simple: after a short warm-up,
//! each benchmark runs `sample_size` samples inside the configured
//! measurement window and reports the median ns/iteration to stdout. There
//! are no HTML reports and no statistical regression analysis — the numbers
//! are for trend tracking, not publication.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Expected per-iteration workload, printed alongside timings.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just the parameter (for single-function groups).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Timing configuration plus the runner state.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(1200),
        }
    }
}

impl Criterion {
    /// Samples per benchmark (builder style).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Warm-up wall clock per benchmark (builder style).
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Measurement wall clock budget per benchmark (builder style).
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, mut f: impl FnMut(&mut Bencher)) {
        let cfg = self.clone();
        run_benchmark(&cfg, None, &id.into().id, None, &mut f);
    }
}

/// A group of benchmarks sharing a name prefix and configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = Some(n);
        self
    }

    /// Declares the per-iteration workload for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut cfg = self.criterion.clone();
        if let Some(n) = self.sample_size {
            cfg.sample_size = n;
        }
        run_benchmark(&cfg, Some(&self.name), &id.into().id, self.throughput, &mut f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (upstream finalizes reports here; a no-op shim).
    pub fn finish(self) {}
}

/// Hands the routine-under-test to the measurement loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, called `self.iters` times back to back.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` only, re-running `setup` before every call.
    pub fn iter_with_setup<S, O>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> O,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_benchmark(
    cfg: &Criterion,
    group: Option<&str>,
    id: &str,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let full_name = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };

    // Warm-up: run single iterations until the warm-up window closes, and
    // estimate the per-iteration cost from them.
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    let mut warm_elapsed = Duration::ZERO;
    while warm_start.elapsed() < cfg.warm_up_time || warm_iters == 0 {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        warm_elapsed += b.elapsed;
        warm_iters += b.iters;
        if warm_iters >= 1000 {
            break;
        }
    }
    let est_per_iter = warm_elapsed
        .checked_div(warm_iters as u32)
        .unwrap_or(Duration::from_nanos(1))
        .max(Duration::from_nanos(1));

    // Size each sample so all samples together roughly fill the
    // measurement window, with at least one iteration per sample.
    let budget_per_sample = cfg.measurement_time / cfg.sample_size as u32;
    let iters_per_sample = (budget_per_sample.as_nanos() / est_per_iter.as_nanos().max(1))
        .clamp(1, 1_000_000) as u64;

    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(cfg.sample_size);
    let hard_deadline = Instant::now() + cfg.measurement_time * 4;
    for _ in 0..cfg.sample_size {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter_ns.push(b.elapsed.as_nanos() as f64 / iters_per_sample as f64);
        if Instant::now() > hard_deadline {
            break;
        }
    }
    per_iter_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = per_iter_ns[per_iter_ns.len() / 2];

    let mut line = format!("{full_name:<56} {:>14}/iter", format_ns(median));
    if let Some(tp) = throughput {
        let per_sec = |count: u64| count as f64 * 1e9 / median.max(1.0);
        match tp {
            Throughput::Elements(n) => {
                line.push_str(&format!("  {:>12.3e} elem/s", per_sec(n)));
            }
            Throughput::Bytes(n) => {
                line.push_str(&format!("  {:>12.3e} B/s", per_sec(n)));
            }
        }
    }
    println!("{line}");
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function, in either upstream form:
/// `criterion_group!(benches, f1, f2)` or
/// `criterion_group!{name = benches; config = ...; targets = f1, f2}`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_criterion() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
    }

    #[test]
    fn bench_function_runs_routine() {
        let mut c = fast_criterion();
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn groups_and_inputs() {
        let mut c = fast_criterion();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function(BenchmarkId::from_parameter(9), |b| {
            b.iter_with_setup(|| vec![1u8; 16], |v| v.len())
        });
        group.finish();
    }

    mod group_macro {
        use super::super::*;

        fn target(c: &mut Criterion) {
            c.bench_function("macro_target", |b| b.iter(|| 1 + 1));
        }

        criterion_group! {
            name = benches;
            config = Criterion::default()
                .sample_size(2)
                .warm_up_time(Duration::from_millis(1))
                .measurement_time(Duration::from_millis(4));
            targets = target
        }

        criterion_group!(simple, target);

        #[test]
        fn both_macro_forms_expand() {
            benches();
            simple();
        }
    }
}
