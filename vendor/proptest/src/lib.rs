//! Minimal, dependency-free work-alike of the `proptest` API surface this
//! workspace uses: the [`proptest!`] macro, [`Strategy`](strategy::Strategy)
//! with `prop_map`/`prop_flat_map`/`boxed`, range and tuple strategies,
//! [`collection::vec`](fn@collection::vec), [`any`](arbitrary::any), `Just`, [`prop_oneof!`],
//! and the `prop_assert*` / [`prop_assume!`] macros.
//!
//! The container this repository builds in has no crates.io registry, so the
//! workspace vendors tiny implementations of its external dependencies (see
//! `DESIGN.md`). Differences from upstream: cases are generated from a
//! deterministic per-test RNG (seeded from the test's module path), and
//! there is **no shrinking** — a failing case panics with the plain
//! assertion message.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Test configuration and the deterministic case RNG.

    /// Subset of upstream's `ProptestConfig`: just the case count.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each test runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single case did not produce a verdict.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!` and does not count.
        Reject,
    }

    /// Deterministic RNG driving case generation (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// An RNG seeded from the test's name, so every test has a stable,
        /// independent stream across runs.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `0..bound` (`bound` must be positive).
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating random values of one type.
    ///
    /// Unlike upstream there is no value tree / shrinking: a strategy is
    /// just a pure generator over a [`TestRng`].
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Applies `f` to every generated value.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates with a strategy derived from this one's value.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy (used by [`prop_oneof!`](crate::prop_oneof)).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice between boxed alternatives (see [`prop_oneof!`](crate::prop_oneof)).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `options`; panics when empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    mod ranges {
        use super::Strategy;
        use crate::test_runner::TestRng;

        /// Scalars samplable from `lo..hi` / `lo..=hi` ranges.
        pub trait RangeValue: Copy {
            /// Uniform sample from the half-open range `lo..hi` (non-empty).
            fn sample_exclusive(lo: Self, hi: Self, rng: &mut TestRng) -> Self;

            /// Uniform sample from the closed range `lo..=hi` (non-empty).
            fn sample_inclusive(lo: Self, hi: Self, rng: &mut TestRng) -> Self;
        }

        macro_rules! impl_range_value_uint {
            ($($t:ty),*) => {$(
                impl RangeValue for $t {
                    fn sample_exclusive(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                        let span = (hi as u128) - (lo as u128);
                        lo + (rng.next_u64() as u128 % span) as $t
                    }

                    fn sample_inclusive(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                        let span = (hi as u128) - (lo as u128) + 1;
                        lo + (rng.next_u64() as u128 % span) as $t
                    }
                }
            )*};
        }
        impl_range_value_uint!(u8, u16, u32, u64, usize);

        macro_rules! impl_range_value_int {
            ($($t:ty),*) => {$(
                impl RangeValue for $t {
                    fn sample_exclusive(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                        let span = ((hi as i128) - (lo as i128)) as u128;
                        (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                    }

                    fn sample_inclusive(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                        let span = ((hi as i128) - (lo as i128) + 1) as u128;
                        (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                    }
                }
            )*};
        }
        impl_range_value_int!(i8, i16, i32, i64, isize);

        impl RangeValue for f64 {
            /// Uniform by magnitude, not by bit pattern (upstream samples
            /// more cleverly; callers here only need coverage of the span).
            fn sample_exclusive(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                lo + rng.unit_f64() * (hi - lo)
            }

            fn sample_inclusive(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                Self::sample_exclusive(lo, hi, rng)
            }
        }

        impl<T: RangeValue + PartialOrd> Strategy for std::ops::Range<T> {
            type Value = T;

            fn generate(&self, rng: &mut TestRng) -> T {
                assert!(self.start < self.end, "empty range strategy");
                T::sample_exclusive(self.start, self.end, rng)
            }
        }

        impl<T: RangeValue + PartialOrd> Strategy for std::ops::RangeInclusive<T> {
            type Value = T;

            fn generate(&self, rng: &mut TestRng) -> T {
                assert!(self.start() <= self.end(), "empty range strategy");
                T::sample_inclusive(*self.start(), *self.end(), rng)
            }
        }
    }

    pub use ranges::RangeValue;

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, G);
}

pub mod arbitrary {
    //! The [`Arbitrary`] trait and [`any`].

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy over a type's whole domain (see [`any`]).
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// `any::<T>()` — the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An inclusive size window for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s with element strategy `S` (see [`vec`](vec())).
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Defines property tests: `proptest! { #[test] fn f(x in strat) { ... } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let __strategy = ($($strat,)+);
            for __case in 0..__config.cases {
                #[allow(unused_mut)]
                let ($($pat,)+) =
                    $crate::strategy::Strategy::generate(&__strategy, &mut __rng);
                #[allow(clippy::redundant_closure_call)]
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        { $body };
                        ::std::result::Result::Ok(())
                    })();
                match __outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "msg {}", arg)`.
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// `prop_assert_eq!(a, b)` with optional message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// `prop_assert_ne!(a, b)` with optional message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// Skips the current case when `cond` is false (the case is not counted
/// as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

pub mod prelude {
    //! The glob-import surface: traits, types, and macros.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::collection;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_test("ranges");
        for _ in 0..500 {
            let v = Strategy::generate(&(3usize..9), &mut rng);
            assert!((3..9).contains(&v));
            let w = Strategy::generate(&(0u64..=0), &mut rng);
            assert_eq!(w, 0);
            let f = Strategy::generate(&(0.0f64..1.0), &mut rng);
            assert!((0.0..1.0).contains(&f));
            let s = Strategy::generate(&(-4i64..4), &mut rng);
            assert!((-4..4).contains(&s));
        }
    }

    #[test]
    fn vec_and_tuple_strategies() {
        let mut rng = crate::test_runner::TestRng::for_test("vecs");
        let strat = collection::vec((0usize..5, 0usize..5), 2..=6);
        for _ in 0..100 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!((2..=6).contains(&v.len()));
            assert!(v.iter().all(|&(a, b)| a < 5 && b < 5));
        }
    }

    #[test]
    fn map_flat_map_oneof() {
        let mut rng = crate::test_runner::TestRng::for_test("combinators");
        let strat = (1usize..4)
            .prop_flat_map(|n| collection::vec(0usize..n, n..=n))
            .prop_map(|v| v.len());
        for _ in 0..50 {
            let len = Strategy::generate(&strat, &mut rng);
            assert!((1..4).contains(&len));
        }
        let choice = prop_oneof![Just(1u8), Just(2u8), (5u8..=7).prop_map(|x| x)];
        for _ in 0..50 {
            let c = Strategy::generate(&choice, &mut rng);
            assert!(c == 1 || c == 2 || (5..=7).contains(&c));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro pipeline end to end, including assume/reject.
        #[test]
        fn macro_roundtrip(x in 0u64..100, (a, b) in (0usize..10, 0usize..10)) {
            prop_assume!(x != 13);
            prop_assert!(x < 100);
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(x, 13);
        }
    }

    proptest! {
        /// Default config variant of the macro.
        #[test]
        fn macro_default_config(v in collection::vec(any::<u64>(), 0..4)) {
            prop_assert!(v.len() < 4);
        }
    }
}
