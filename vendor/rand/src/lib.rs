//! Minimal, dependency-free work-alike of the small `rand` API surface this
//! workspace uses: `StdRng`/`SmallRng`, `SeedableRng::seed_from_u64`,
//! `Rng::{gen_range, gen_bool, gen}`, and `seq::SliceRandom::shuffle`.
//!
//! The container this repository builds in has no crates.io registry, so the
//! workspace vendors tiny implementations of its external dependencies (see
//! `DESIGN.md`). Streams are deterministic per seed — which is all the tests
//! and generators rely on — but are **not** bit-compatible with upstream
//! `rand 0.8`.

/// Random number generator core: a 64-bit output stream.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

mod sealed {
    /// Types `gen_range` can sample uniformly from a half-open range.
    pub trait SampleUniform: Copy + PartialOrd {
        fn sample_range(lo: Self, hi: Self, bits: u64) -> Self;
    }

    macro_rules! impl_sample_uint {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                #[inline]
                fn sample_range(lo: Self, hi: Self, bits: u64) -> Self {
                    debug_assert!(lo < hi);
                    let span = (hi as u128) - (lo as u128);
                    lo + (bits as u128 % span) as $t
                }
            }
        )*};
    }
    impl_sample_uint!(u8, u16, u32, u64, usize);

    macro_rules! impl_sample_int {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                #[inline]
                fn sample_range(lo: Self, hi: Self, bits: u64) -> Self {
                    debug_assert!(lo < hi);
                    let span = (hi as i128 - lo as i128) as u128;
                    (lo as i128 + (bits as u128 % span) as i128) as $t
                }
            }
        )*};
    }
    impl_sample_int!(i8, i16, i32, i64, isize);

    impl SampleUniform for f64 {
        #[inline]
        fn sample_range(lo: Self, hi: Self, bits: u64) -> Self {
            let unit = (bits >> 11) as f64 / (1u64 << 53) as f64;
            lo + unit * (hi - lo)
        }
    }
}

use sealed::SampleUniform;

/// Convenience sampling methods, mirroring the `rand::Rng` extension trait.
pub trait Rng: RngCore {
    /// Uniform sample from `range.start..range.end` (start inclusive,
    /// end exclusive). Panics when the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        assert!(range.start < range.end, "gen_range called with empty range");
        T::sample_range(range.start, range.end, self.next_u64())
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

/// SplitMix64 step: a solid, tiny 64-bit mixer (public-domain algorithm).
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators (`StdRng`, `SmallRng`).
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // Pre-mix once so seed 0 does not start from the weak state 0.
            let mut s = state;
            let _ = splitmix64(&mut s);
            StdRng { state: s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }

    /// Alias of [`StdRng`]; upstream's `SmallRng` is only a speed variant.
    pub type SmallRng = StdRng;
}

/// Sequence helpers (`SliceRandom`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling for slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// `rand::thread_rng` work-alike: deterministic per process, seeded once.
pub fn thread_rng() -> rngs::StdRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0x5EED);
    <rngs::StdRng as SeedableRng>::seed_from_u64(nanos)
}

/// Prelude-style re-exports at the crate root, as `rand` provides.
pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::SeedableRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes_and_rate() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "astronomically unlikely");
    }
}
