//! Minimal, dependency-free work-alike of the `rayon` API surface this
//! workspace uses: [`join`], [`current_num_threads`], and eager parallel
//! slice iterators (`par_chunks_mut`, `par_iter_mut`, …).
//!
//! The container this repository builds in has no crates.io registry, so the
//! workspace vendors tiny implementations of its external dependencies (see
//! `DESIGN.md`). Unlike upstream rayon there is **no persistent work-stealing
//! pool**: parallelism comes from scoped OS threads (`std::thread::scope`),
//! which keeps the crate `unsafe`-free. Callers therefore amortize spawn cost
//! by chunking work coarsely — exactly what `gca-engine` does.

#![forbid(unsafe_code)]

/// Number of hardware threads available to the process.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs both closures, potentially in parallel, and returns both results.
///
/// `oper_a` runs on a freshly spawned scoped thread while `oper_b` runs on
/// the calling thread. Panics propagate to the caller, like upstream.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB,
    RA: Send,
{
    std::thread::scope(|scope| {
        let handle = scope.spawn(oper_a);
        let rb = oper_b();
        let ra = match handle.join() {
            Ok(ra) => ra,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        (ra, rb)
    })
}

/// Runs one closure per item, distributing items across up to
/// [`current_num_threads`] scoped threads. Items are pre-partitioned into
/// contiguous runs, one run per thread (no stealing).
fn run_parallel<T, F>(items: Vec<T>, f: &F)
where
    T: Send,
    F: Fn(T) + Sync,
{
    let threads = current_num_threads().min(items.len()).max(1);
    if threads <= 1 {
        for item in items {
            f(item);
        }
        return;
    }
    let per = items.len().div_ceil(threads);
    let mut items = items;
    std::thread::scope(|scope| {
        while !items.is_empty() {
            let take = per.min(items.len());
            let run: Vec<T> = items.drain(..take).collect();
            scope.spawn(move || {
                for item in run {
                    f(item);
                }
            });
        }
    });
}

pub mod iter {
    //! Eager stand-ins for rayon's parallel iterator combinators.

    use std::sync::Mutex;

    /// A parallel iterator over owned items (already materialized).
    pub struct ParIter<T> {
        pub(crate) items: Vec<T>,
    }

    impl<T: Send> ParIter<T> {
        /// Pairs every item with its position.
        pub fn enumerate(self) -> ParIter<(usize, T)> {
            ParIter {
                items: self.items.into_iter().enumerate().collect(),
            }
        }

        /// Pairs items positionally with another parallel iterator,
        /// truncating to the shorter side (upstream
        /// `IndexedParallelIterator::zip`).
        pub fn zip<U: Send>(self, other: ParIter<U>) -> ParIter<(T, U)> {
            ParIter {
                items: self.items.into_iter().zip(other.items).collect(),
            }
        }

        /// Runs `f` on every item across threads.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn(T) + Sync,
        {
            super::run_parallel(self.items, &f);
        }

        /// Runs `f` on every item; returns the first error produced (by item
        /// order). Unlike upstream there is no mid-flight cancellation — all
        /// items still run.
        pub fn try_for_each<F, E>(self, f: F) -> Result<(), E>
        where
            F: Fn(T) -> Result<(), E> + Sync,
            E: Send,
        {
            let failures: Mutex<Vec<(usize, E)>> = Mutex::new(Vec::new());
            let indexed: Vec<(usize, T)> = self.items.into_iter().enumerate().collect();
            super::run_parallel(indexed, &|(i, item)| {
                if let Err(e) = f(item) {
                    failures.lock().unwrap().push((i, e));
                }
            });
            let mut failures = failures.into_inner().unwrap();
            failures.sort_by_key(|(i, _)| *i);
            match failures.into_iter().next() {
                None => Ok(()),
                Some((_, e)) => Err(e),
            }
        }
    }
}

pub mod slice {
    //! Parallel views over slices.

    use super::iter::ParIter;

    /// `&mut [T]` extension: parallel mutable iteration.
    pub trait ParallelSliceMut<T: Send> {
        /// Parallel iterator over mutable element references.
        fn par_iter_mut(&mut self) -> ParIter<&mut T>;

        /// Parallel iterator over non-overlapping mutable chunks of
        /// `chunk_size` elements (last chunk may be shorter).
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_iter_mut(&mut self) -> ParIter<&mut T> {
            ParIter {
                items: self.iter_mut().collect(),
            }
        }

        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
            assert!(chunk_size > 0, "chunk size must be positive");
            ParIter {
                items: self.chunks_mut(chunk_size).collect(),
            }
        }
    }

    /// `&[T]` extension: parallel shared iteration.
    pub trait ParallelSlice<T: Sync> {
        /// Parallel iterator over shared element references.
        fn par_iter(&self) -> ParIter<&T>;

        /// Parallel iterator over non-overlapping chunks.
        fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]>;
    }

    impl<T: Sync> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> ParIter<&T> {
            ParIter {
                items: self.iter().collect(),
            }
        }

        fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]> {
            assert!(chunk_size > 0, "chunk size must be positive");
            ParIter {
                items: self.chunks(chunk_size).collect(),
            }
        }
    }
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::slice::{ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn join_nests() {
        fn sum(v: &[u64]) -> u64 {
            if v.len() < 4 {
                return v.iter().sum();
            }
            let (lo, hi) = v.split_at(v.len() / 2);
            let (a, b) = join(|| sum(lo), || sum(hi));
            a + b
        }
        let v: Vec<u64> = (0..100).collect();
        assert_eq!(sum(&v), 4950);
    }

    #[test]
    fn par_iter_mut_visits_every_element() {
        let mut v = vec![0u32; 1000];
        v.par_iter_mut().enumerate().for_each(|(i, x)| *x = i as u32);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u32));
    }

    #[test]
    fn par_chunks_mut_partitions() {
        let mut v = vec![0u32; 103];
        v.par_chunks_mut(10).enumerate().for_each(|(ci, chunk)| {
            for x in chunk.iter_mut() {
                *x = ci as u32;
            }
        });
        assert_eq!(v[0], 0);
        assert_eq!(v[99], 9);
        assert_eq!(v[102], 10);
    }

    #[test]
    fn zip_pairs_chunks_with_accumulators() {
        let mut data = vec![1u64; 100];
        let mut sums = vec![0u64; 4];
        data.par_chunks_mut(25)
            .zip(sums.par_iter_mut())
            .for_each(|(chunk, sum)| *sum = chunk.iter().sum());
        assert_eq!(sums, vec![25, 25, 25, 25]);
    }

    #[test]
    fn try_for_each_reports_first_error_by_index() {
        let v = [1u32, 2, 3, 4, 5];
        let r = v
            .par_iter()
            .enumerate()
            .try_for_each(|(i, &x)| if x % 2 == 0 { Err(i) } else { Ok(()) });
        assert_eq!(r, Err(1));
        let ok = v.par_iter().try_for_each(|_| Ok::<(), ()>(()));
        assert!(ok.is_ok());
    }

    #[test]
    fn current_num_threads_positive() {
        assert!(current_num_threads() >= 1);
    }
}
