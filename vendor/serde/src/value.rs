//! The JSON data model: [`Value`] and [`Number`].

use std::fmt;
use std::ops::{Index, IndexMut};

/// A JSON number.
///
/// Like upstream `serde_json`, integers and floats are distinct: `1` and
/// `1.0` compare unequal. Non-negative integers normalize to the unsigned
/// representation so `0i32` and `0u64` serialize identically.
#[derive(Clone, Copy, Debug)]
pub struct Number(Repr);

#[derive(Clone, Copy, Debug)]
enum Repr {
    PosInt(u64),
    /// Always strictly negative.
    NegInt(i64),
    Float(f64),
}

impl Number {
    /// A number from an unsigned integer.
    pub fn from_u64(v: u64) -> Self {
        Number(Repr::PosInt(v))
    }

    /// A number from a signed integer (normalizes non-negatives).
    pub fn from_i64(v: i64) -> Self {
        if v >= 0 {
            Number(Repr::PosInt(v as u64))
        } else {
            Number(Repr::NegInt(v))
        }
    }

    /// A number from a float. Non-finite values have no JSON representation
    /// and render as `null`.
    pub fn from_f64(v: f64) -> Self {
        Number(Repr::Float(v))
    }

    /// As `u64` if the number is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self.0 {
            Repr::PosInt(v) => Some(v),
            _ => None,
        }
    }

    /// As `i64` if the number is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self.0 {
            Repr::PosInt(v) => i64::try_from(v).ok(),
            Repr::NegInt(v) => Some(v),
            Repr::Float(_) => None,
        }
    }

    /// As `f64` (lossy for huge integers).
    pub fn as_f64(&self) -> Option<f64> {
        match self.0 {
            Repr::PosInt(v) => Some(v as f64),
            Repr::NegInt(v) => Some(v as f64),
            Repr::Float(v) => Some(v),
        }
    }

    /// `true` when the number is a float (not an integer).
    pub fn is_f64(&self) -> bool {
        matches!(self.0, Repr::Float(_))
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.0, other.0) {
            (Repr::PosInt(a), Repr::PosInt(b)) => a == b,
            (Repr::NegInt(a), Repr::NegInt(b)) => a == b,
            (Repr::Float(a), Repr::Float(b)) => a == b,
            _ => false,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            Repr::PosInt(v) => write!(f, "{v}"),
            Repr::NegInt(v) => write!(f, "{v}"),
            Repr::Float(v) if !v.is_finite() => f.write_str("null"),
            // Keep a trailing ".0" on whole floats so float-ness survives a
            // round trip, as upstream's ryu formatting does.
            Repr::Float(v) if v == v.trunc() && v.abs() < 1e15 => write!(f, "{v:.1}"),
            Repr::Float(v) => write!(f, "{v}"),
        }
    }
}

/// A JSON document tree (`serde_json::Value` work-alike).
///
/// Objects preserve insertion order; object equality is key-set based and
/// therefore order-insensitive.
#[derive(Clone, Debug)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object as ordered `(key, value)` pairs with unique keys.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// As `u64` if this is a non-negative integer number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// As `i64` if this is an integer number in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// As `f64` if this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// As `&str` if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// As `bool` if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// As a slice of elements if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// `true` iff this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object lookup; `None` on missing key or non-object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Inserts or replaces `key` (object or `null` receivers only).
    pub fn insert(&mut self, key: &str, value: Value) {
        if self.is_null() {
            *self = Value::Object(Vec::new());
        }
        match self {
            Value::Object(entries) => {
                if let Some(slot) = entries.iter_mut().find(|(k, _)| k == key) {
                    slot.1 = value;
                } else {
                    entries.push((key.to_string(), value));
                }
            }
            other => panic!("cannot insert key '{key}' into non-object JSON value {other}"),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Number(a), Value::Number(b)) => a == b,
            (Value::String(a), Value::String(b)) => a == b,
            (Value::Array(a), Value::Array(b)) => a == b,
            (Value::Object(a), Value::Object(b)) => {
                a.len() == b.len()
                    && a.iter().all(|(k, v)| {
                        b.iter().find(|(bk, _)| bk == k).map(|(_, bv)| bv) == Some(v)
                    })
            }
            _ => false,
        }
    }
}

// Ergonomic comparisons against plain literals, as upstream provides.
macro_rules! eq_num {
    ($($t:ty => $conv:ident),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                Value::Number(Number::$conv(*other as _)) == *self
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}
eq_num!(u8 => from_u64, u16 => from_u64, u32 => from_u64, u64 => from_u64, usize => from_u64,
        i8 => from_i64, i16 => from_i64, i32 => from_i64, i64 => from_i64, isize => from_i64,
        f64 => from_f64);

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl Index<&str> for Value {
    type Output = Value;

    /// `&value[key]`: member access, `&Value::Null` on missing key or
    /// non-object receiver (upstream behavior).
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl IndexMut<&str> for Value {
    /// `value[key] = ...`: inserts the key if absent; a `null` receiver
    /// becomes an object first (upstream behavior). Panics on other types.
    fn index_mut(&mut self, key: &str) -> &mut Value {
        if self.is_null() {
            *self = Value::Object(Vec::new());
        }
        match self {
            Value::Object(entries) => {
                if !entries.iter().any(|(k, _)| k == key) {
                    entries.push((key.to_string(), Value::Null));
                }
                entries
                    .iter_mut()
                    .find(|(k, _)| k == key)
                    .map(|(_, v)| v)
                    .expect("key just ensured")
            }
            other => panic!("cannot index non-object JSON value {other} with key '{key}'"),
        }
    }
}

impl Index<usize> for Value {
    type Output = Value;

    /// `&value[i]`: array element, `&Value::Null` out of bounds or when the
    /// receiver is not an array.
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Value {
    /// Compact rendering (no whitespace).
    pub fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&n.to_string()),
            Value::String(s) => escape_into(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Value::Object(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    /// Pretty rendering with two-space indentation (upstream's default).
    pub fn write_pretty(&self, out: &mut String, indent: usize) {
        const STEP: usize = 2;
        match self {
            Value::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&" ".repeat(indent + STEP));
                    item.write_pretty(out, indent + STEP);
                }
                out.push('\n');
                out.push_str(&" ".repeat(indent));
                out.push(']');
            }
            Value::Object(entries) if !entries.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&" ".repeat(indent + STEP));
                    escape_into(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + STEP);
                }
                out.push('\n');
                out.push_str(&" ".repeat(indent));
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }
}

impl fmt::Display for Value {
    /// Displays as compact JSON (upstream behavior).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write_compact(&mut s);
        f.write_str(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn number_equality_distinguishes_int_and_float() {
        assert_eq!(Number::from_i64(3), Number::from_u64(3));
        assert_ne!(Number::from_u64(1), Number::from_f64(1.0));
        assert_eq!(Number::from_f64(0.5), Number::from_f64(0.5));
    }

    #[test]
    fn object_equality_ignores_key_order() {
        let a = Value::Object(vec![
            ("x".into(), Value::Bool(true)),
            ("y".into(), Value::Null),
        ]);
        let b = Value::Object(vec![
            ("y".into(), Value::Null),
            ("x".into(), Value::Bool(true)),
        ]);
        assert_eq!(a, b);
    }

    #[test]
    fn indexing_missing_key_yields_null() {
        let v = Value::Object(vec![("a".into(), Value::Bool(false))]);
        assert!(v["missing"].is_null());
        assert_eq!(v["a"], false);
    }

    #[test]
    fn index_mut_inserts() {
        let mut v = Value::Object(Vec::new());
        v["k"] = Value::String("s".into());
        assert_eq!(v["k"], "s");
        let mut n = Value::Null;
        n["auto"] = Value::Bool(true);
        assert_eq!(n["auto"], true);
    }

    #[test]
    fn literal_comparisons() {
        let v = Value::Number(Number::from_u64(6));
        assert_eq!(v, 6);
        assert_eq!(v, 6u64);
        assert_ne!(v, 7);
    }

    #[test]
    fn whole_floats_keep_a_decimal_point() {
        assert_eq!(Number::from_f64(71.0).to_string(), "71.0");
        assert_eq!(Number::from_f64(0.25).to_string(), "0.25");
        assert_eq!(Number::from_u64(71).to_string(), "71");
    }
}
