//! Minimal, dependency-free work-alike of the `serde`/`serde_json` data
//! model this workspace uses.
//!
//! The container this repository builds in has no crates.io registry, so the
//! workspace vendors tiny implementations of its external dependencies (see
//! `DESIGN.md`). Differences from upstream serde:
//!
//! * There are **no proc-macro derives.** Types implement [`Serialize`] /
//!   [`Deserialize`] by hand, usually via the [`impl_serialize_struct!`],
//!   [`impl_deserialize_struct!`] and [`impl_serialize_unit_enum!`] helper
//!   macros.
//! * Serialization goes through one in-memory [`Value`] tree (what upstream
//!   calls `serde_json::Value`; the `serde_json` shim re-exports it). There
//!   is no streaming serializer — every document this workspace emits is
//!   small.

#![forbid(unsafe_code)]

mod value;

pub use value::{Number, Value};

/// Deserialization error: a human-readable message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

impl DeError {
    /// Shorthand constructor.
    pub fn msg(m: impl Into<String>) -> Self {
        DeError(m.into())
    }
}

/// Conversion into the JSON [`Value`] data model.
pub trait Serialize {
    /// This value as a JSON tree.
    fn to_json_value(&self) -> Value;
}

/// Conversion from the JSON [`Value`] data model.
pub trait Deserialize: Sized {
    /// Parses `Self` out of a JSON tree.
    fn from_json_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------------

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(Number::from_u64(*self as u64))
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(Number::from_i64(*self as i64))
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_json_value(&self) -> Value {
        Value::Number(Number::from_f64(*self))
    }
}

impl Serialize for f32 {
    fn to_json_value(&self) -> Value {
        Value::Number(Number::from_f64(f64::from(*self)))
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        self.as_slice().to_json_value()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        self.as_slice().to_json_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_json_value(),
        }
    }
}

impl<K: std::fmt::Display, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_json_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_json_value()))
                .collect(),
        )
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types
// ---------------------------------------------------------------------------

impl Deserialize for Value {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Deserialize for bool {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool()
            .ok_or_else(|| DeError::msg(format!("expected boolean, got {v}")))
    }
}

macro_rules! de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, DeError> {
                let raw = v
                    .as_u64()
                    .ok_or_else(|| DeError::msg(format!("expected unsigned integer, got {v}")))?;
                <$t>::try_from(raw)
                    .map_err(|_| DeError::msg(format!("integer {raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
de_uint!(u8, u16, u32, u64, usize);

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, DeError> {
                let raw = v
                    .as_i64()
                    .ok_or_else(|| DeError::msg(format!("expected integer, got {v}")))?;
                <$t>::try_from(raw)
                    .map_err(|_| DeError::msg(format!("integer {raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .ok_or_else(|| DeError::msg(format!("expected number, got {v}")))
    }
}

impl Deserialize for String {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::msg(format!("expected string, got {v}")))
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_json_value).collect(),
            other => Err(DeError::msg(format!("expected array, got {other}"))),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_json_value(other).map(Some),
        }
    }
}

/// Looks up `name` in an object value and deserializes it — the building
/// block of [`impl_deserialize_struct!`].
pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, DeError> {
    match v {
        Value::Object(entries) => match entries.iter().find(|(k, _)| k == name) {
            Some((_, fv)) => T::from_json_value(fv)
                .map_err(|e| DeError::msg(format!("field '{name}': {e}"))),
            None => T::from_json_value(&Value::Null)
                .map_err(|_| DeError::msg(format!("missing field '{name}'"))),
        },
        other => Err(DeError::msg(format!("expected object, got {other}"))),
    }
}

/// Implements [`Serialize`] for a plain struct by listing its fields:
/// `serde::impl_serialize_struct!(Point { x, y });`
#[macro_export]
macro_rules! impl_serialize_struct {
    ($ty:ty { $($fieldname:ident),+ $(,)? }) => {
        impl $crate::Serialize for $ty {
            fn to_json_value(&self) -> $crate::Value {
                $crate::Value::Object(vec![
                    $((
                        stringify!($fieldname).to_string(),
                        $crate::Serialize::to_json_value(&self.$fieldname),
                    )),+
                ])
            }
        }
    };
}

/// Implements [`Deserialize`] for a plain struct by listing its fields.
#[macro_export]
macro_rules! impl_deserialize_struct {
    ($ty:ty { $($fieldname:ident),+ $(,)? }) => {
        impl $crate::Deserialize for $ty {
            fn from_json_value(v: &$crate::Value) -> Result<Self, $crate::DeError> {
                Ok(Self {
                    $($fieldname: $crate::field(v, stringify!($fieldname))?),+
                })
            }
        }
    };
}

/// Implements [`Serialize`] for a field-less enum as its variant name —
/// the same externally-tagged encoding upstream serde derives.
#[macro_export]
macro_rules! impl_serialize_unit_enum {
    ($ty:ident { $($variant:ident),+ $(,)? }) => {
        impl $crate::Serialize for $ty {
            fn to_json_value(&self) -> $crate::Value {
                match self {
                    $($ty::$variant => {
                        $crate::Value::String(stringify!($variant).to_string())
                    }),+
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip_through_value() {
        assert_eq!(u32::from_json_value(&42u32.to_json_value()), Ok(42));
        assert_eq!(i64::from_json_value(&(-7i64).to_json_value()), Ok(-7));
        assert_eq!(bool::from_json_value(&true.to_json_value()), Ok(true));
        assert_eq!(
            String::from_json_value(&"hi".to_json_value()),
            Ok("hi".to_string())
        );
        let v: Vec<u16> = Deserialize::from_json_value(&vec![1u16, 2, 3].to_json_value()).unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn out_of_range_integers_rejected() {
        assert!(u8::from_json_value(&300u32.to_json_value()).is_err());
        assert!(u32::from_json_value(&(-1i32).to_json_value()).is_err());
    }

    #[test]
    fn struct_macros_round_trip() {
        #[derive(Debug, PartialEq)]
        struct P {
            x: u32,
            flag: bool,
        }
        crate::impl_serialize_struct!(P { x, flag });
        crate::impl_deserialize_struct!(P { x, flag });
        let p = P { x: 9, flag: true };
        let v = p.to_json_value();
        assert_eq!(P::from_json_value(&v), Ok(P { x: 9, flag: true }));
    }

    #[test]
    fn unit_enum_serializes_as_name() {
        #[derive(Debug)]
        enum E {
            Alpha,
            Beta,
        }
        crate::impl_serialize_unit_enum!(E { Alpha, Beta });
        assert_eq!(E::Alpha.to_json_value(), Value::String("Alpha".into()));
        assert_eq!(E::Beta.to_json_value(), Value::String("Beta".into()));
    }
}
