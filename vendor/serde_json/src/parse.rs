//! A small recursive-descent JSON parser producing [`Value`] trees.

use crate::Error;
use serde::{Number, Value};

pub(crate) fn parse(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON document"));
    }
    Ok(v)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(self.err(&format!("invalid literal, expected '{kw}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.err("document nests too deeply"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.keyword("null", Value::Null),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character '{}'", c as char))),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries: Vec<(String, Value)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            match entries.iter_mut().find(|(k, _)| *k == key) {
                Some(slot) => slot.1 = value, // last duplicate wins, as upstream
                None => entries.push((key, value)),
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                Some(_) => return Err(self.err("unescaped control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self) -> Result<char, Error> {
        let c = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        Ok(match c {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{08}',
            b'f' => '\u{0c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let first = self.hex4()?;
                // Combine surrogate pairs; lone surrogates become U+FFFD.
                if (0xD800..0xDC00).contains(&first) {
                    if self.bytes[self.pos..].starts_with(b"\\u") {
                        let save = self.pos;
                        self.pos += 2;
                        let second = self.hex4()?;
                        if (0xDC00..0xE000).contains(&second) {
                            let cp =
                                0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                            return Ok(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                        }
                        self.pos = save;
                    }
                    '\u{FFFD}'
                } else {
                    char::from_u32(first).unwrap_or('\u{FFFD}')
                }
            }
            other => {
                return Err(self.err(&format!("invalid escape character '{}'", other as char)))
            }
        })
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(hex).map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ASCII digits are UTF-8");
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::from_u64(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::from_i64(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::from_f64(f)))
            .map_err(|_| Error(format!("invalid number '{text}' at byte {start}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("42").unwrap(), Value::Number(Number::from_u64(42)));
        assert_eq!(parse("-3").unwrap(), Value::Number(Number::from_i64(-3)));
        assert_eq!(parse("2.5").unwrap(), Value::Number(Number::from_f64(2.5)));
        assert_eq!(parse("1e2").unwrap(), Value::Number(Number::from_f64(100.0)));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Value::String("a\nb".into()));
    }

    #[test]
    fn containers() {
        let v = parse(r#"{"a": [1, 2], "b": {"c": false}}"#).unwrap();
        assert_eq!(v["a"][1], 2);
        assert_eq!(v["b"]["c"], false);
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(parse("\"\\u0041\"").unwrap(), Value::String("A".into()));
        assert_eq!(
            parse("\"\\uD83D\\uDE00\"").unwrap(),
            Value::String("😀".into())
        );
        assert_eq!(
            parse("\"\\uD83D\"").unwrap(),
            Value::String("\u{FFFD}".into())
        );
    }

    #[test]
    fn errors() {
        assert!(parse("").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"unterminated").is_err());
    }
}
