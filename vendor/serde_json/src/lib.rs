//! Minimal, dependency-free work-alike of the `serde_json` API surface this
//! workspace uses: [`Value`], [`json!`], [`to_value`], [`to_string`],
//! [`to_string_pretty`], [`from_str`], [`from_slice`].
//!
//! The container this repository builds in has no crates.io registry, so the
//! workspace vendors tiny implementations of its external dependencies (see
//! `DESIGN.md`). The data model ([`Value`]) lives in the vendored `serde`
//! crate and is re-exported here under its upstream name.

#![forbid(unsafe_code)]

mod parse;

pub use serde::{Number, Value};

use serde::{Deserialize, Serialize};

/// Serialization/deserialization error: a human-readable message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_json_value())
}

/// Serializes to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json_value().to_string())
}

/// Serializes to pretty JSON text (two-space indentation).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let v = value.to_json_value();
    let mut out = String::new();
    v.write_pretty(&mut out, 0);
    Ok(out)
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse::parse(s)?;
    Ok(T::from_json_value(&v)?)
}

/// Parses JSON bytes (must be UTF-8) into any deserializable type.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Builds a [`Value`] from a JSON-shaped literal, interpolating Rust
/// expressions in value position: `json!({"n": n, "rows": rows})`.
#[macro_export]
macro_rules! json {
    // -- helper rules (internal) --------------------------------------------
    (@arr $a:ident;) => {};
    (@arr $a:ident; null $(, $($rest:tt)*)?) => {
        $a.push($crate::Value::Null);
        $($crate::json!(@arr $a; $($rest)*);)?
    };
    (@arr $a:ident; [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $a.push($crate::json!([ $($inner)* ]));
        $($crate::json!(@arr $a; $($rest)*);)?
    };
    (@arr $a:ident; { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $a.push($crate::json!({ $($inner)* }));
        $($crate::json!(@arr $a; $($rest)*);)?
    };
    (@arr $a:ident; $e:expr $(, $($rest:tt)*)?) => {
        $a.push($crate::json!($e));
        $($crate::json!(@arr $a; $($rest)*);)?
    };
    (@obj $o:ident;) => {};
    (@obj $o:ident; $k:literal : null $(, $($rest:tt)*)?) => {
        $o.push(($k.to_string(), $crate::Value::Null));
        $($crate::json!(@obj $o; $($rest)*);)?
    };
    (@obj $o:ident; $k:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $o.push(($k.to_string(), $crate::json!([ $($inner)* ])));
        $($crate::json!(@obj $o; $($rest)*);)?
    };
    (@obj $o:ident; $k:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $o.push(($k.to_string(), $crate::json!({ $($inner)* })));
        $($crate::json!(@obj $o; $($rest)*);)?
    };
    (@obj $o:ident; $k:literal : $v:expr $(, $($rest:tt)*)?) => {
        $o.push(($k.to_string(), $crate::json!($v)));
        $($crate::json!(@obj $o; $($rest)*);)?
    };
    // -- entry points -------------------------------------------------------
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([ $($tt:tt)* ]) => {{
        // `iter::empty().collect()` rather than `Vec::new()` so expansions
        // with elements do not trip clippy's `vec_init_then_push` (the lint
        // attaches to the caller's block, out of reach of a local `allow`).
        #[allow(unused_mut)]
        let mut __arr: ::std::vec::Vec<$crate::Value> = ::std::iter::empty().collect();
        $crate::json!(@arr __arr; $($tt)*);
        $crate::Value::Array(__arr)
    }};
    ({ $($tt:tt)* }) => {{
        #[allow(unused_mut)]
        let mut __obj: ::std::vec::Vec<(::std::string::String, $crate::Value)> =
            ::std::iter::empty().collect();
        $crate::json!(@obj __obj; $($tt)*);
        $crate::Value::Object(__obj)
    }};
    ($e:expr) => {
        $crate::to_value(&$e).expect("json! value is serializable")
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_scalars() {
        assert_eq!(json!(null), Value::Null);
        assert_eq!(json!(true), Value::Bool(true));
        assert_eq!(json!(3u32), Value::Number(Number::from_u64(3)));
        assert_eq!(json!("hi"), Value::String("hi".into()));
    }

    #[test]
    fn json_macro_nested() {
        let n = 4usize;
        let v = json!({
            "workload": { "n": n, "p": 0.5, "tags": ["a", "b"] },
            "rows": [1, 2, 3],
            "empty_obj": {},
            "empty_arr": [],
            "label": format!("n = {}", n),
        });
        assert_eq!(v["workload"]["n"], 4);
        assert_eq!(v["workload"]["p"], 0.5);
        assert_eq!(v["workload"]["tags"][1], "b");
        assert_eq!(v["rows"], json!([1, 2, 3]));
        assert_eq!(v["label"], "n = 4");
        assert_eq!(v["empty_arr"], Value::Array(vec![]));
    }

    #[test]
    fn compact_and_pretty_round_trip() {
        let v = json!({"a": [1, {"b": null}], "s": "q\"uote\n"});
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn pretty_layout() {
        let v = json!({"k": [1]});
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"k\": [\n    1\n  ]\n}");
    }

    #[test]
    fn typed_from_str() {
        let v: Vec<u32> = from_str("[1, 2, 3]").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        let f: f64 = from_str("2.5").unwrap();
        assert_eq!(f, 2.5);
        assert!(from_str::<u32>("\"nope\"").is_err());
    }

    #[test]
    fn from_slice_requires_utf8() {
        assert!(from_slice::<Value>(b"{\"a\": 1}").is_ok());
        assert!(from_slice::<Value>(&[0xff, 0xfe]).is_err());
    }
}
